"""Negotiation of responsibility and competence.

Paper section 4 asks for "mechanisms for negotiating the responsibility
for activities" and "mechanisms for negotiating the division of
competence within activities".  A :class:`Negotiation` is a small
propose/counter/accept/reject state machine between an initiator and a
responder; the :class:`NegotiationService` runs many of them and applies
the outcome to the activity (responsibility) or to a competence division
table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.activity.model import ActivityRegistry
from repro.util.errors import NegotiationError
from repro.util.ids import IdFactory


class NegotiationState(Enum):
    """Lifecycle of one negotiation."""

    PROPOSED = "proposed"
    COUNTERED = "countered"
    ACCEPTED = "accepted"
    REJECTED = "rejected"
    WITHDRAWN = "withdrawn"


class NegotiationKind(Enum):
    """What is being negotiated."""

    RESPONSIBILITY = "responsibility"
    COMPETENCE = "competence"


@dataclass
class Negotiation:
    """One running negotiation.

    ``subject`` is the activity id; ``terms`` carries what is proposed —
    for responsibility: ``{"responsible": person_id}``; for competence:
    ``{"division": {person_id: [tasks...]}}``.
    """

    negotiation_id: str
    kind: NegotiationKind
    subject: str
    initiator: str
    responder: str
    terms: dict[str, Any]
    state: NegotiationState = NegotiationState.PROPOSED
    rounds: int = 0
    transcript: list[tuple[str, str, dict[str, Any]]] = field(default_factory=list)

    def _require_open(self) -> None:
        if self.state not in (NegotiationState.PROPOSED, NegotiationState.COUNTERED):
            raise NegotiationError(
                f"negotiation {self.negotiation_id} is closed ({self.state.value})"
            )

    def _current_responder(self) -> str:
        """Whoever did not make the latest offer responds next."""
        if not self.transcript:
            return self.responder
        last_actor = self.transcript[-1][0]
        return self.initiator if last_actor == self.responder else self.responder

    def counter(self, actor: str, terms: dict[str, Any]) -> None:
        """The current responder proposes different terms."""
        self._require_open()
        if actor != self._current_responder():
            raise NegotiationError(f"it is not {actor!r}'s turn to respond")
        self.terms = dict(terms)
        self.state = NegotiationState.COUNTERED
        self.rounds += 1
        self.transcript.append((actor, "counter", dict(terms)))

    def accept(self, actor: str) -> None:
        """The current responder accepts the terms on the table."""
        self._require_open()
        if actor != self._current_responder():
            raise NegotiationError(f"it is not {actor!r}'s turn to respond")
        self.state = NegotiationState.ACCEPTED
        self.transcript.append((actor, "accept", dict(self.terms)))

    def reject(self, actor: str) -> None:
        """The current responder rejects and closes the negotiation."""
        self._require_open()
        if actor != self._current_responder():
            raise NegotiationError(f"it is not {actor!r}'s turn to respond")
        self.state = NegotiationState.REJECTED
        self.transcript.append((actor, "reject", {}))

    def withdraw(self, actor: str) -> None:
        """The initiator withdraws the proposal."""
        self._require_open()
        if actor != self.initiator:
            raise NegotiationError("only the initiator may withdraw")
        self.state = NegotiationState.WITHDRAWN
        self.transcript.append((actor, "withdraw", {}))


class NegotiationService:
    """Creates negotiations and applies accepted outcomes."""

    def __init__(self, registry: ActivityRegistry) -> None:
        self._registry = registry
        self._negotiations: dict[str, Negotiation] = {}
        self._ids = IdFactory()
        #: activity id -> responsible person (accepted outcomes)
        self.responsibilities: dict[str, str] = {}
        #: activity id -> division of competence {person: [tasks]}
        self.competence: dict[str, dict[str, list[str]]] = {}

    def propose_responsibility(
        self, activity_id: str, initiator: str, responder: str, responsible: str
    ) -> Negotiation:
        """Open a responsibility negotiation."""
        self._registry.get(activity_id)  # must exist
        negotiation = Negotiation(
            negotiation_id=self._ids.next("neg"),
            kind=NegotiationKind.RESPONSIBILITY,
            subject=activity_id,
            initiator=initiator,
            responder=responder,
            terms={"responsible": responsible},
        )
        negotiation.transcript.append((initiator, "propose", dict(negotiation.terms)))
        self._negotiations[negotiation.negotiation_id] = negotiation
        return negotiation

    def propose_competence(
        self,
        activity_id: str,
        initiator: str,
        responder: str,
        division: dict[str, list[str]],
    ) -> Negotiation:
        """Open a division-of-competence negotiation."""
        self._registry.get(activity_id)
        negotiation = Negotiation(
            negotiation_id=self._ids.next("neg"),
            kind=NegotiationKind.COMPETENCE,
            subject=activity_id,
            initiator=initiator,
            responder=responder,
            terms={"division": {k: list(v) for k, v in division.items()}},
        )
        negotiation.transcript.append((initiator, "propose", dict(negotiation.terms)))
        self._negotiations[negotiation.negotiation_id] = negotiation
        return negotiation

    def get(self, negotiation_id: str) -> Negotiation:
        """Look up a negotiation."""
        try:
            return self._negotiations[negotiation_id]
        except KeyError:
            raise NegotiationError(f"unknown negotiation {negotiation_id!r}") from None

    def settle(self, negotiation_id: str) -> None:
        """Apply an ACCEPTED negotiation's terms to the shared tables."""
        negotiation = self.get(negotiation_id)
        if negotiation.state is not NegotiationState.ACCEPTED:
            raise NegotiationError(
                f"negotiation {negotiation_id} is not accepted ({negotiation.state.value})"
            )
        if negotiation.kind is NegotiationKind.RESPONSIBILITY:
            self.responsibilities[negotiation.subject] = negotiation.terms["responsible"]
        else:
            self.competence[negotiation.subject] = {
                person: list(tasks)
                for person, tasks in negotiation.terms["division"].items()
            }

    def responsible_for(self, activity_id: str) -> str | None:
        """The negotiated responsible person, when settled."""
        return self.responsibilities.get(activity_id)

    def open_negotiations(self) -> list[Negotiation]:
        """All negotiations still awaiting a response."""
        return [
            n
            for n in self._negotiations.values()
            if n.state in (NegotiationState.PROPOSED, NegotiationState.COUNTERED)
        ]
