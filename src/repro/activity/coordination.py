"""Coordination of activities: shared-resource access and joint steps.

Paper section 4 lists "sharing resources between activities" and
"coordination of activities" among the required activity services.  The
:class:`ResourceCoordinator` grants bounded-capacity resource claims with
deterministic FIFO queuing; the :class:`Barrier` synchronises a set of
activities at a joint point (e.g. all sub-reports finished before the
review meeting starts).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.org.model import Resource
from repro.util.errors import ModelError, UnknownObjectError

GrantCallback = Callable[[str], None]


@dataclass
class _Claim:
    activity_id: str
    on_grant: GrantCallback | None = None


class ResourceCoordinator:
    """Grants resource capacity to activities, queueing the overflow.

    "Activities may use common resources" (paper section 3): each resource
    has a capacity; an activity's claim is granted immediately while
    capacity remains, otherwise it queues FIFO and is granted when a
    holder releases.
    """

    def __init__(self) -> None:
        self._resources: dict[str, Resource] = {}
        self._holders: dict[str, list[str]] = {}
        self._queues: dict[str, deque[_Claim]] = {}
        self.grants = 0
        self.queued = 0

    def register(self, resource: Resource) -> None:
        """Make a resource coordinatable."""
        if resource.resource_id in self._resources:
            raise ModelError(f"resource {resource.resource_id!r} already registered")
        self._resources[resource.resource_id] = resource
        self._holders[resource.resource_id] = []
        self._queues[resource.resource_id] = deque()

    def _check(self, resource_id: str) -> Resource:
        try:
            return self._resources[resource_id]
        except KeyError:
            raise UnknownObjectError(f"unknown resource {resource_id!r}") from None

    def claim(
        self, resource_id: str, activity_id: str, on_grant: GrantCallback | None = None
    ) -> bool:
        """Claim one unit of the resource for an activity.

        Returns True when granted immediately; False when queued (the
        callback fires on the eventual grant).  Double claims by the same
        activity are rejected.
        """
        resource = self._check(resource_id)
        holders = self._holders[resource_id]
        if activity_id in holders:
            raise ModelError(f"activity {activity_id!r} already holds {resource_id!r}")
        if any(c.activity_id == activity_id for c in self._queues[resource_id]):
            raise ModelError(f"activity {activity_id!r} is already queued for {resource_id!r}")
        if len(holders) < resource.capacity:
            holders.append(activity_id)
            self.grants += 1
            if on_grant is not None:
                on_grant(resource_id)
            return True
        self._queues[resource_id].append(_Claim(activity_id, on_grant))
        self.queued += 1
        return False

    def release(self, resource_id: str, activity_id: str) -> None:
        """Release a held unit; the head of the queue (if any) is granted."""
        self._check(resource_id)
        holders = self._holders[resource_id]
        if activity_id not in holders:
            raise ModelError(f"activity {activity_id!r} does not hold {resource_id!r}")
        holders.remove(activity_id)
        queue = self._queues[resource_id]
        if queue:
            claim = queue.popleft()
            holders.append(claim.activity_id)
            self.grants += 1
            if claim.on_grant is not None:
                claim.on_grant(resource_id)

    def holders_of(self, resource_id: str) -> list[str]:
        """Activities currently holding the resource."""
        self._check(resource_id)
        return list(self._holders[resource_id])

    def queue_length(self, resource_id: str) -> int:
        """Number of activities waiting for the resource."""
        self._check(resource_id)
        return len(self._queues[resource_id])

    def queued_for(self, resource_id: str) -> list[str]:
        """Activities waiting for the resource, in grant order."""
        self._check(resource_id)
        return [claim.activity_id for claim in self._queues[resource_id]]

    def withdraw_claim(self, resource_id: str, activity_id: str) -> bool:
        """Remove a queued (not yet granted) claim; True when found."""
        self._check(resource_id)
        queue = self._queues[resource_id]
        for claim in list(queue):
            if claim.activity_id == activity_id:
                queue.remove(claim)
                return True
        return False


@dataclass
class Barrier:
    """A joint synchronisation point across activities.

    Created with the set of parties that must arrive; fires its callbacks
    exactly once when the last one arrives.
    """

    parties: frozenset[str]
    _arrived: set[str] = field(default_factory=set)
    _callbacks: list[Callable[[], None]] = field(default_factory=list)
    fired: bool = False

    def __post_init__(self) -> None:
        if not self.parties:
            raise ModelError("a barrier needs at least one party")

    def on_complete(self, callback: Callable[[], None]) -> None:
        """Register a callback for when every party has arrived."""
        self._callbacks.append(callback)

    def arrive(self, party: str) -> bool:
        """Mark a party as arrived; returns True when the barrier fires."""
        if party not in self.parties:
            raise ModelError(f"{party!r} is not a party to this barrier")
        if self.fired:
            return False
        self._arrived.add(party)
        if self._arrived == set(self.parties):
            self.fired = True
            for callback in self._callbacks:
                callback()
            return True
        return False

    def waiting_for(self) -> list[str]:
        """Parties that have not arrived yet."""
        return sorted(set(self.parties) - self._arrived)
