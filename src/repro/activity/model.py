"""Activities: the unit of cooperative work.

Paper section 3 gives the running example — managing a large engineering
project is "an on-going programme of sub-activities such as team progress
meetings, the joint production of reports, monitoring and interviews as
well as more ad-hoc, informal communication".  An :class:`Activity` has a
goal, a lifecycle, members playing activity roles, optional deadline, and
belongs to a project.  Section 4's activity services (membership,
scheduling, negotiation, coordination) are built on top in the sibling
modules.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any

from repro.util.errors import ConfigurationError, ModelError, UnknownObjectError


class ActivityStatus(Enum):
    """Lifecycle of an activity."""

    PENDING = "pending"
    ACTIVE = "active"
    SUSPENDED = "suspended"
    COMPLETED = "completed"
    CANCELLED = "cancelled"


#: legal lifecycle transitions
_TRANSITIONS: dict[ActivityStatus, set[ActivityStatus]] = {
    ActivityStatus.PENDING: {ActivityStatus.ACTIVE, ActivityStatus.CANCELLED},
    ActivityStatus.ACTIVE: {
        ActivityStatus.SUSPENDED,
        ActivityStatus.COMPLETED,
        ActivityStatus.CANCELLED,
    },
    ActivityStatus.SUSPENDED: {ActivityStatus.ACTIVE, ActivityStatus.CANCELLED},
    ActivityStatus.COMPLETED: set(),
    ActivityStatus.CANCELLED: set(),
}


@dataclass(frozen=True)
class Membership:
    """One person's participation in an activity under an activity role."""

    person_id: str
    activity_role: str


class Activity:
    """One cooperative activity with membership and lifecycle."""

    def __init__(
        self,
        activity_id: str,
        name: str,
        project: str = "",
        goal: str = "",
        deadline: float | None = None,
        mode: str = "asynchronous",
    ) -> None:
        if not activity_id or not name:
            raise ConfigurationError("activity needs an id and a name")
        if mode not in ("synchronous", "asynchronous", "mixed"):
            raise ConfigurationError(f"unknown activity mode {mode!r}")
        self.activity_id = activity_id
        self.name = name
        self.project = project
        self.goal = goal
        self.deadline = deadline
        self.mode = mode
        self.status = ActivityStatus.PENDING
        self._members: dict[str, Membership] = {}
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.progress: float = 0.0
        self.history: list[tuple[float, str]] = []

    # -- membership -----------------------------------------------------------
    def join(self, person_id: str, activity_role: str = "participant") -> Membership:
        """Add a member (re-joining updates the role)."""
        membership = Membership(person_id, activity_role)
        self._members[person_id] = membership
        return membership

    def leave(self, person_id: str) -> None:
        """Remove a member."""
        if person_id not in self._members:
            raise UnknownObjectError(f"{person_id!r} is not a member of {self.activity_id}")
        del self._members[person_id]

    def members(self) -> list[Membership]:
        """All memberships."""
        return list(self._members.values())

    def member_ids(self) -> list[str]:
        """Ids of all members, sorted."""
        return sorted(self._members)

    def is_member(self, person_id: str) -> bool:
        """True when the person participates."""
        return person_id in self._members

    def role_of(self, person_id: str) -> str:
        """The activity role a member plays."""
        try:
            return self._members[person_id].activity_role
        except KeyError:
            raise UnknownObjectError(
                f"{person_id!r} is not a member of {self.activity_id}"
            ) from None

    def members_with_role(self, activity_role: str) -> list[str]:
        """Person ids playing an activity role, sorted."""
        return sorted(
            m.person_id for m in self._members.values() if m.activity_role == activity_role
        )

    # -- lifecycle ---------------------------------------------------------------
    def _transition(self, target: ActivityStatus, time: float) -> None:
        if target not in _TRANSITIONS[self.status]:
            raise ModelError(
                f"activity {self.activity_id}: illegal transition "
                f"{self.status.value} -> {target.value}"
            )
        self.status = target
        self.history.append((time, target.value))

    def start(self, time: float = 0.0) -> None:
        """PENDING -> ACTIVE."""
        self._transition(ActivityStatus.ACTIVE, time)
        self.started_at = time

    def suspend(self, time: float = 0.0) -> None:
        """ACTIVE -> SUSPENDED."""
        self._transition(ActivityStatus.SUSPENDED, time)

    def resume(self, time: float = 0.0) -> None:
        """SUSPENDED -> ACTIVE."""
        self._transition(ActivityStatus.ACTIVE, time)

    def complete(self, time: float = 0.0) -> None:
        """ACTIVE -> COMPLETED."""
        self._transition(ActivityStatus.COMPLETED, time)
        self.finished_at = time
        self.progress = 1.0

    def cancel(self, time: float = 0.0) -> None:
        """Any non-final state -> CANCELLED."""
        self._transition(ActivityStatus.CANCELLED, time)
        self.finished_at = time

    def report_progress(self, fraction: float, time: float = 0.0) -> None:
        """Record progress in [0, 1]; only meaningful while active."""
        if not 0.0 <= fraction <= 1.0:
            raise ModelError("progress must be in [0, 1]")
        if self.status is not ActivityStatus.ACTIVE:
            raise ModelError(f"activity {self.activity_id} is not active")
        self.progress = fraction
        self.history.append((time, f"progress:{fraction:.2f}"))

    def is_overdue(self, now: float) -> bool:
        """True when a deadline exists, has passed, and work is unfinished."""
        if self.deadline is None:
            return False
        if self.status in (ActivityStatus.COMPLETED, ActivityStatus.CANCELLED):
            return False
        return now > self.deadline

    def describe(self) -> dict[str, Any]:
        """A plain-dict summary (used by monitors and the environment)."""
        return {
            "activity_id": self.activity_id,
            "name": self.name,
            "project": self.project,
            "status": self.status.value,
            "mode": self.mode,
            "members": self.member_ids(),
            "progress": self.progress,
            "deadline": self.deadline,
        }


class ActivityRegistry:
    """All activities known to one environment."""

    def __init__(self) -> None:
        self._activities: dict[str, Activity] = {}

    def create(self, activity: Activity) -> Activity:
        """Register a new activity."""
        if activity.activity_id in self._activities:
            raise ConfigurationError(f"activity {activity.activity_id!r} already exists")
        self._activities[activity.activity_id] = activity
        return activity

    def get(self, activity_id: str) -> Activity:
        """Look up an activity."""
        try:
            return self._activities[activity_id]
        except KeyError:
            raise UnknownObjectError(f"unknown activity {activity_id!r}") from None

    def all(self) -> list[Activity]:
        """All activities, in creation order."""
        return list(self._activities.values())

    def by_status(self, status: ActivityStatus) -> list[Activity]:
        """Activities currently in *status*."""
        return [a for a in self._activities.values() if a.status is status]

    def by_project(self, project: str) -> list[Activity]:
        """Activities belonging to *project*."""
        return [a for a in self._activities.values() if a.project == project]

    def involving(self, person_id: str) -> list[Activity]:
        """Activities the person is a member of ('each person may be
        involved in many activities' — paper section 3)."""
        return [a for a in self._activities.values() if a.is_member(person_id)]
