"""Transport protocols layered over the raw datagram network.

Three facilities, each used by a different part of the stack:

* :class:`ReliableChannel` — acknowledged, retransmitting, FIFO delivery
  between two fixed endpoints.  Used by the X.400 MTAs, which must not lose
  inter-MTA transfers even on lossy links.
* :class:`RequestReply` — correlated request/response exchange with
  timeouts.  Used by the ODP binding machinery (client stubs) and the
  directory DUA/DSA protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.sim.engine import Engine, EventHandle
from repro.sim.network import Network, Packet
from repro.util.errors import ConfigurationError
from repro.util.ids import IdFactory


@dataclass(slots=True)
class _OutstandingSend:
    seq: int
    payload: Any
    size_bytes: int
    attempts: int = 0
    timer: EventHandle | None = None


class ReliableChannel:
    """Reliable FIFO delivery from one node to one peer node.

    A sliding-window-of-one protocol: each payload gets a sequence number;
    the receiver acks; unacked payloads are retransmitted after
    *retransmit_s* up to *max_attempts* times.  Duplicate suppression and
    reordering are handled with the sequence number.  On final failure the
    ``on_failure`` callback fires — errors never pass silently.
    """

    def __init__(
        self,
        network: Network,
        local: str,
        peer: str,
        port: str,
        on_receive: Callable[[Any], None],
        retransmit_s: float = 0.5,
        max_attempts: int = 8,
        on_failure: Callable[[Any], None] | None = None,
    ) -> None:
        if max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        self._network = network
        self._engine: Engine = network.engine
        self._local = local
        self._peer = peer
        self._port = port
        self._on_receive = on_receive
        self._on_failure = on_failure
        self._retransmit_s = retransmit_s
        self._max_attempts = max_attempts
        self._next_seq = 1
        self._expected_seq = 1
        self._outstanding: dict[int, _OutstandingSend] = {}
        self._reorder_buffer: dict[int, Any] = {}
        self.delivered = 0
        self.retransmissions = 0
        self.failures = 0
        # Sender side lives on *local* (acks come back here); receiver side
        # lives on *peer* (data arrives there).
        network.node(local).bind(self._ack_port(), self._handle_ack)
        network.node(peer).bind(self._data_port(), self._handle_data)

    def _data_port(self) -> str:
        return f"{self._port}.data"

    def _ack_port(self) -> str:
        return f"{self._port}.ack"

    def send(self, payload: Any, size_bytes: int = 128) -> int:
        """Queue *payload* for reliable delivery; return its sequence number."""
        seq = self._next_seq
        self._next_seq += 1
        entry = _OutstandingSend(seq=seq, payload=payload, size_bytes=size_bytes)
        self._outstanding[seq] = entry
        self._transmit(entry)
        return seq

    def _transmit(self, entry: _OutstandingSend) -> None:
        entry.attempts += 1
        if entry.attempts > 1:
            self.retransmissions += 1
        self._network.send(
            self._local,
            self._peer,
            f"{self._port}.data",
            {"seq": entry.seq, "payload": entry.payload},
            size_bytes=entry.size_bytes,
        )
        entry.timer = self._engine.schedule(
            self._retransmit_s, lambda: self._on_timeout(entry.seq), label=f"rtx:{entry.seq}"
        )

    def _on_timeout(self, seq: int) -> None:
        entry = self._outstanding.get(seq)
        if entry is None:
            return
        if entry.attempts >= self._max_attempts:
            del self._outstanding[seq]
            self.failures += 1
            if self._on_failure is not None:
                self._on_failure(entry.payload)
            return
        self._transmit(entry)

    def _handle_ack(self, packet: Packet) -> None:
        seq = packet.payload["seq"]
        entry = self._outstanding.pop(seq, None)
        if entry is not None and entry.timer is not None:
            entry.timer.cancel()

    def _handle_data(self, packet: Packet) -> None:
        seq = packet.payload["seq"]
        payload = packet.payload["payload"]
        # Always (re-)ack so lost acks get repaired.  The ack originates at
        # the receiver (peer) and travels back to the sender (local).
        self._network.send(self._peer, packet.source, f"{self._port}.ack", {"seq": seq}, size_bytes=16)
        if seq < self._expected_seq:
            return  # duplicate
        self._reorder_buffer[seq] = payload
        while self._expected_seq in self._reorder_buffer:
            ready = self._reorder_buffer.pop(self._expected_seq)
            self._expected_seq += 1
            self.delivered += 1
            self._on_receive(ready)


def connect_pair(
    network: Network,
    a: str,
    b: str,
    port: str,
    on_receive_a: Callable[[Any], None],
    on_receive_b: Callable[[Any], None],
    **kwargs: Any,
) -> tuple[ReliableChannel, ReliableChannel]:
    """Create a bidirectional reliable connection between nodes *a* and *b*.

    Returns the (a->b, b->a) channel pair.  Distinct sub-ports keep the two
    directions from colliding on the same node.
    """
    forward = ReliableChannel(network, a, b, f"{port}.fwd", on_receive_a, **kwargs)
    backward = ReliableChannel(network, b, a, f"{port}.bwd", on_receive_b, **kwargs)
    return forward, backward


@dataclass(slots=True)
class _PendingRequest:
    request_id: str
    on_reply: Callable[[Any], None]
    on_timeout: Callable[[], None] | None
    timer: EventHandle | None = None


class DeferredReply:
    """Returned by a :class:`RequestReply` handler that answers later.

    A handler that must itself wait on asynchronous work (e.g. a gateway
    forwarding a relay to a third domain) returns a ``DeferredReply``
    instead of a reply body; the transport holds the request open and
    sends the reply packet when :meth:`resolve` (or :meth:`fail`) fires.
    Only the first completion wins — later calls are ignored.
    """

    def __init__(self) -> None:
        self._send: Callable[[str, Any], None] | None = None
        self._result: tuple[str, Any] | None = None
        self._done = False

    def resolve(self, body: Any) -> None:
        """Complete the request successfully with *body*."""
        self._finish("body", body)

    def fail(self, error: str) -> None:
        """Complete the request with an error (caller sees ``{"error": ...}``)."""
        self._finish("error", error)

    def _finish(self, kind: str, value: Any) -> None:
        if self._done:
            return
        self._done = True
        if self._send is not None:
            self._send(kind, value)
        else:
            self._result = (kind, value)

    def _wire(self, send: Callable[[str, Any], None]) -> None:
        """Transport hookup; replays a completion that beat the wiring."""
        self._send = send
        if self._result is not None:
            send(*self._result)


class RequestReply:
    """Correlated request/reply messaging for RPC-style interactions.

    A server registers operations with :meth:`serve`; clients call
    :meth:`request`.  Replies are matched by request id.  A per-request
    timeout fires ``on_timeout`` if no reply arrives (e.g. server crashed or
    a partition intervened).
    """

    def __init__(self, network: Network, local: str, port: str = "rpc") -> None:
        self._network = network
        self._engine = network.engine
        self._local = local
        self._port = port
        self._ids = IdFactory(width=6)
        self._pending: dict[str, _PendingRequest] = {}
        self._operations: dict[str, Callable[[Any], Any]] = {}
        self.requests_sent = 0
        self.replies_received = 0
        self.timeouts = 0
        node = network.node(local)
        node.bind(f"{port}.req", self._handle_request)
        node.bind(f"{port}.rep", self._handle_reply)

    def serve(self, operation: str, handler: Callable[[Any], Any]) -> None:
        """Expose *operation*; the handler maps request body -> reply body."""
        if operation in self._operations:
            raise ConfigurationError(f"operation {operation!r} already served on {self._local}")
        self._operations[operation] = handler

    def request(
        self,
        server: str,
        operation: str,
        body: Any,
        on_reply: Callable[[Any], None],
        timeout_s: float = 5.0,
        on_timeout: Callable[[], None] | None = None,
        size_bytes: int = 128,
        server_port: str | None = None,
    ) -> str:
        """Send a request; *on_reply* fires with the reply body.

        *server_port* addresses a server endpoint whose port name differs
        from this client's (defaults to the shared port).
        """
        request_id = self._ids.next("req")
        pending = _PendingRequest(request_id, on_reply, on_timeout)
        self._pending[request_id] = pending
        self.requests_sent += 1
        target_port = server_port if server_port is not None else self._port
        self._network.send(
            self._local,
            server,
            f"{target_port}.req",
            {
                "id": request_id,
                "op": operation,
                "body": body,
                "reply_to": self._local,
                "reply_port": f"{self._port}.rep",
            },
            size_bytes=size_bytes,
        )
        pending.timer = self._engine.schedule(
            timeout_s, lambda: self._on_request_timeout(request_id), label=f"rpc-timeout:{request_id}"
        )
        return request_id

    def _on_request_timeout(self, request_id: str) -> None:
        pending = self._pending.pop(request_id, None)
        if pending is None:
            return
        self.timeouts += 1
        if pending.on_timeout is not None:
            pending.on_timeout()

    def _handle_request(self, packet: Packet) -> None:
        message = packet.payload
        reply_port = message.get("reply_port", f"{self._port}.rep")

        def send_reply(kind: str, value: Any) -> None:
            self._network.send(
                self._local,
                message["reply_to"],
                reply_port,
                {"id": message["id"], kind: value},
                size_bytes=128,
            )

        handler = self._operations.get(message["op"])
        if handler is None:
            send_reply("error", f"unknown operation {message['op']!r}")
            return
        try:
            result = handler(message["body"])
        except Exception as exc:  # deliberate: errors travel back to caller
            send_reply("error", f"{type(exc).__name__}: {exc}")
            return
        if isinstance(result, DeferredReply):
            result._wire(send_reply)
            return
        send_reply("body", result)

    def _handle_reply(self, packet: Packet) -> None:
        message = packet.payload
        pending = self._pending.pop(message["id"], None)
        if pending is None:
            return  # late reply after timeout
        if pending.timer is not None:
            pending.timer.cancel()
        self.replies_received += 1
        pending.on_reply(message.get("body") if "error" not in message else {"error": message["error"]})
