"""Simulated network: nodes, links, latency models, loss and partitions.

The network charges each packet a delay of ``propagation + size/bandwidth``
(plus optional jitter), drops packets with a per-link loss probability, and
refuses delivery across partition boundaries or to crashed nodes.  All
randomness comes from the network's seeded RNG stream, so runs replay
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.sim.engine import Engine
from repro.sim.rng import SeededRng
from repro.sim.trace import MetricsRegistry
from repro.util.errors import ConfigurationError, NetworkError

PacketHandler = Callable[["Packet"], None]


@dataclass(frozen=True)
class LinkSpec:
    """Characteristics of a (directed) link between two nodes.

    latency_s
        One-way propagation delay in seconds.
    bandwidth_bps
        Bytes per second used to charge serialization delay.
    loss
        Probability in [0, 1] that a packet silently disappears.
    jitter_s
        Uniform jitter added to latency, in [0, jitter_s].
    """

    latency_s: float = 0.01
    bandwidth_bps: float = 1_000_000.0
    loss: float = 0.0
    jitter_s: float = 0.0

    def transmission_delay(self, size_bytes: int, rng: SeededRng) -> float:
        """Total delay for a packet of *size_bytes* over this link."""
        delay = self.latency_s + size_bytes / self.bandwidth_bps
        if self.jitter_s > 0:
            delay += rng.uniform(0.0, self.jitter_s)
        return delay


#: A link spec that models a co-located (same room / same LAN) connection.
LAN_LINK = LinkSpec(latency_s=0.0005, bandwidth_bps=10_000_000.0)

#: A link spec modelling a 1992-era wide-area connection between sites.
WAN_LINK = LinkSpec(latency_s=0.08, bandwidth_bps=64_000.0, jitter_s=0.02)


@dataclass
class Packet:
    """One datagram moving through the simulated network."""

    source: str
    destination: str
    port: str
    payload: Any
    size_bytes: int
    sent_at: float = 0.0
    delivered_at: float = 0.0


class Node:
    """A simulated host: named, crashable, with per-port packet handlers."""

    def __init__(self, name: str, site: str = "default") -> None:
        if not name:
            raise ConfigurationError("node name must be non-empty")
        self.name = name
        self.site = site
        self._up = True
        self._handlers: dict[str, PacketHandler] = {}
        self._received = 0

    @property
    def is_up(self) -> bool:
        """True while the node has not crashed."""
        return self._up

    @property
    def received_count(self) -> int:
        """Packets successfully delivered to this node."""
        return self._received

    def crash(self) -> None:
        """Take the node down; packets to/from it are dropped."""
        self._up = False

    def recover(self) -> None:
        """Bring the node back up (handlers survive the crash)."""
        self._up = True

    def bind(self, port: str, handler: PacketHandler) -> None:
        """Register *handler* for packets addressed to *port*."""
        if port in self._handlers:
            raise ConfigurationError(f"port {port!r} already bound on {self.name}")
        self._handlers[port] = handler

    def unbind(self, port: str) -> None:
        """Remove the handler for *port* if present."""
        self._handlers.pop(port, None)

    def bound_ports(self) -> list[str]:
        """Ports with a registered handler, sorted."""
        return sorted(self._handlers)

    def deliver(self, packet: Packet) -> bool:
        """Dispatch a packet to its port handler; False when unbound/down."""
        if not self._up:
            return False
        handler = self._handlers.get(packet.port)
        if handler is None:
            return False
        self._received += 1
        handler(packet)
        return True


class Network:
    """The simulated internetwork connecting all nodes.

    Nodes at the same *site* default to :data:`LAN_LINK`; nodes at different
    sites default to :data:`WAN_LINK`.  Specific node pairs can be overridden
    with :meth:`set_link`.  Partitions are modelled as a node->group mapping;
    delivery only succeeds within a group.
    """

    def __init__(
        self,
        engine: Engine,
        rng: SeededRng | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.engine = engine
        self.rng = rng if rng is not None else SeededRng(0)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._nodes: dict[str, Node] = {}
        self._links: dict[tuple[str, str], LinkSpec] = {}
        self._partition: dict[str, int] = {}

    # -- topology ---------------------------------------------------------
    def add_node(self, name: str, site: str = "default") -> Node:
        """Create and register a node; names must be unique."""
        if name in self._nodes:
            raise ConfigurationError(f"node {name!r} already exists")
        node = Node(name, site=site)
        self._nodes[name] = node
        return node

    def node(self, name: str) -> Node:
        """Look up a node by name."""
        try:
            return self._nodes[name]
        except KeyError:
            raise NetworkError(f"unknown node {name!r}") from None

    def has_node(self, name: str) -> bool:
        """True when a node with *name* is registered."""
        return name in self._nodes

    def nodes(self) -> list[Node]:
        """All registered nodes, in insertion order."""
        return list(self._nodes.values())

    def set_link(self, source: str, destination: str, spec: LinkSpec, symmetric: bool = True) -> None:
        """Override the link spec between two nodes."""
        self.node(source)
        self.node(destination)
        self._links[(source, destination)] = spec
        if symmetric:
            self._links[(destination, source)] = spec

    def link_between(self, source: str, destination: str) -> LinkSpec:
        """The effective link spec between two nodes."""
        explicit = self._links.get((source, destination))
        if explicit is not None:
            return explicit
        if self.node(source).site == self.node(destination).site:
            return LAN_LINK
        return WAN_LINK

    # -- partitions -------------------------------------------------------
    def partition(self, groups: list[list[str]]) -> None:
        """Split the network into the given groups of node names.

        Nodes not named in any group remain in an implicit group 0 together
        with nothing else listed — i.e. they can only reach other unlisted
        nodes.
        """
        self._partition = {}
        for index, group in enumerate(groups, start=1):
            for name in group:
                self.node(name)
                self._partition[name] = index

    def heal(self) -> None:
        """Remove all partitions."""
        self._partition = {}

    def reachable(self, source: str, destination: str) -> bool:
        """True when no partition separates the two nodes."""
        if not self._partition:
            return True
        return self._partition.get(source, 0) == self._partition.get(destination, 0)

    # -- transmission -----------------------------------------------------
    def send(
        self,
        source: str,
        destination: str,
        port: str,
        payload: Any,
        size_bytes: int = 128,
    ) -> Packet:
        """Send a datagram; delivery (or loss) happens asynchronously.

        Returns the in-flight packet.  Loss, partition and crash drops are
        silent at the sender — exactly like a real datagram network — but
        are counted in the network metrics.
        """
        src = self.node(source)
        dst = self.node(destination)
        packet = Packet(
            source=source,
            destination=destination,
            port=port,
            payload=payload,
            size_bytes=size_bytes,
            sent_at=self.engine.now,
        )
        self.metrics.increment("net.sent")
        if not src.is_up:
            self.metrics.increment("net.dropped.source_down")
            return packet
        link = self.link_between(source, destination)
        if link.loss > 0 and self.rng.chance(link.loss):
            self.metrics.increment("net.dropped.loss")
            return packet
        delay = link.transmission_delay(size_bytes, self.rng)

        def arrive() -> None:
            if not self.reachable(source, destination):
                self.metrics.increment("net.dropped.partition")
                return
            if not dst.is_up:
                self.metrics.increment("net.dropped.destination_down")
                return
            packet.delivered_at = self.engine.now
            if dst.deliver(packet):
                self.metrics.increment("net.delivered")
                self.metrics.record("net.latency", packet.delivered_at - packet.sent_at)
            else:
                self.metrics.increment("net.dropped.no_handler")

        self.engine.schedule(delay, arrive, label=f"net:{source}->{destination}:{port}")
        return packet

    def broadcast(
        self,
        source: str,
        port: str,
        payload: Any,
        size_bytes: int = 128,
    ) -> int:
        """Send to every other node; return the number of sends attempted."""
        count = 0
        for name in self._nodes:
            if name == source:
                continue
            self.send(source, name, port, payload, size_bytes=size_bytes)
            count += 1
        return count
