"""Deterministic discrete-event simulator standing in for a real testbed.

See DESIGN.md section 4: the paper reports no measurements and assumes
1992-era multi-site networks; this package provides a reproducible
simulation substrate (engine, network, transport, failures, metrics) on
which the whole CSCW/ODP stack runs.
"""

from repro.sim.engine import Engine, EventHandle, PeriodicTask
from repro.sim.failures import FailureInjector, PlannedOutage
from repro.sim.network import LAN_LINK, WAN_LINK, LinkSpec, Network, Node, Packet
from repro.sim.rng import SeededRng
from repro.sim.trace import MetricsRegistry, SeriesStats, TimelineEntry
from repro.sim.transport import ReliableChannel, RequestReply, connect_pair
from repro.sim.world import World

__all__ = [
    "Engine",
    "EventHandle",
    "PeriodicTask",
    "FailureInjector",
    "PlannedOutage",
    "LAN_LINK",
    "WAN_LINK",
    "LinkSpec",
    "Network",
    "Node",
    "Packet",
    "SeededRng",
    "MetricsRegistry",
    "SeriesStats",
    "TimelineEntry",
    "ReliableChannel",
    "RequestReply",
    "connect_pair",
    "World",
]
