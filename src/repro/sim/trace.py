"""Metrics collection for simulation runs.

Benchmarks and experiments (EXPERIMENTS.md) report counters, simple
statistics and timelines gathered through a :class:`MetricsRegistry`.  Pure
stdlib; no numpy dependency so the core library stays dependency-free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any


@dataclass
class SeriesStats:
    """Summary statistics over a recorded series of floats."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    stddev: float

    @staticmethod
    def of(values: list[float]) -> "SeriesStats":
        """Compute stats over *values*; raises on an empty list."""
        if not values:
            raise ValueError("cannot summarise an empty series")
        ordered = sorted(values)
        n = len(ordered)
        mean = sum(ordered) / n
        variance = sum((v - mean) ** 2 for v in ordered) / n
        return SeriesStats(
            count=n,
            mean=mean,
            minimum=ordered[0],
            maximum=ordered[-1],
            p50=_percentile(ordered, 0.50),
            p95=_percentile(ordered, 0.95),
            stddev=math.sqrt(variance),
        )


def _percentile(ordered: list[float], fraction: float) -> float:
    """Nearest-rank percentile over a pre-sorted list."""
    if not ordered:
        raise ValueError("empty series")
    rank = max(0, min(len(ordered) - 1, math.ceil(fraction * len(ordered)) - 1))
    return ordered[rank]


@dataclass
class TimelineEntry:
    """One timestamped observation in a named timeline."""

    time: float
    label: str
    detail: dict[str, Any] = field(default_factory=dict)


class MetricsRegistry:
    """Counters, series and timelines for one simulation run."""

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._series: dict[str, list[float]] = {}
        self._timeline: list[TimelineEntry] = []

    # -- counters ---------------------------------------------------------
    def increment(self, name: str, amount: int = 1) -> int:
        """Add *amount* to counter *name*; return the new value."""
        value = self._counters.get(name, 0) + amount
        self._counters[name] = value
        return value

    def counter(self, name: str) -> int:
        """Current value of counter *name* (0 when never incremented)."""
        return self._counters.get(name, 0)

    def counters(self) -> dict[str, int]:
        """Snapshot of all counters."""
        return dict(self._counters)

    # -- series -----------------------------------------------------------
    def record(self, name: str, value: float) -> None:
        """Append *value* to series *name*."""
        self._series.setdefault(name, []).append(float(value))

    def series(self, name: str) -> list[float]:
        """The raw values of series *name* (empty list when absent)."""
        return list(self._series.get(name, []))

    def stats(self, name: str) -> SeriesStats:
        """Summary statistics for series *name*."""
        return SeriesStats.of(self._series.get(name, []))

    def has_series(self, name: str) -> bool:
        """True when at least one value was recorded under *name*."""
        return bool(self._series.get(name))

    # -- timeline ---------------------------------------------------------
    def mark(self, time: float, label: str, **detail: Any) -> None:
        """Record a timestamped event on the run timeline."""
        self._timeline.append(TimelineEntry(time=time, label=label, detail=detail))

    def timeline(self, label: str | None = None) -> list[TimelineEntry]:
        """The timeline, optionally filtered to entries with *label*."""
        if label is None:
            return list(self._timeline)
        return [e for e in self._timeline if e.label == label]

    # -- reporting --------------------------------------------------------
    def summary(self) -> dict[str, Any]:
        """A plain-dict summary suitable for printing or JSON dumping."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "series": {
                name: SeriesStats.of(values).__dict__
                for name, values in sorted(self._series.items())
                if values
            },
            "timeline_entries": len(self._timeline),
        }
