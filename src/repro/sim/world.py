"""Convenience bundle wiring engine + network + rng + metrics together.

Nearly every example, test and benchmark starts by building the same four
objects; :class:`World` packages them and offers topology helpers for the
two canonical setups of the paper's Figure 1: a co-located site (one LAN)
and a set of geographically distributed sites (WAN between, LAN within).
"""

from __future__ import annotations

from repro.sim.engine import Engine
from repro.sim.failures import FailureInjector
from repro.sim.network import LAN_LINK, WAN_LINK, Network, Node
from repro.sim.rng import SeededRng
from repro.sim.trace import MetricsRegistry


class World:
    """One simulated deployment: engine, network, rng, metrics, failures."""

    def __init__(self, seed: int = 0) -> None:
        self.engine = Engine()
        self.rng = SeededRng(seed)
        self.metrics = MetricsRegistry()
        self.network = Network(self.engine, rng=self.rng.fork("network"), metrics=self.metrics)
        self.failures = FailureInjector(self.network, rng=self.rng.fork("failures"))

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.engine.now

    def add_site(self, site: str, node_names: list[str]) -> list[Node]:
        """Add a LAN-connected group of nodes belonging to one site."""
        return [self.network.add_node(name, site=site) for name in node_names]

    def colocated(self, count: int, prefix: str = "ws") -> list[Node]:
        """Build the 'same place' quadrant: *count* workstations, one room."""
        names = [f"{prefix}{i}" for i in range(1, count + 1)]
        return self.add_site("meeting-room", names)

    def distributed(self, sites: dict[str, int], prefix: str = "ws") -> dict[str, list[Node]]:
        """Build the 'different places' quadrant.

        *sites* maps site name -> workstation count.  Intra-site links are
        LAN, inter-site links WAN (the network defaults already do this).
        """
        result: dict[str, list[Node]] = {}
        for site, count in sites.items():
            names = [f"{site}-{prefix}{i}" for i in range(1, count + 1)]
            result[site] = self.add_site(site, names)
        return result

    def run(self, max_events: int = 1_000_000) -> int:
        """Drain the event queue; return events executed."""
        return self.engine.run(max_events=max_events)

    def run_for(self, duration: float, max_events: int = 1_000_000) -> int:
        """Advance simulated time by *duration* seconds."""
        return self.engine.run_for(duration, max_events=max_events)


__all__ = ["World", "LAN_LINK", "WAN_LINK"]
