"""Failure injection for robustness experiments.

Experiment E6 (DESIGN.md) exercises delivery ratios under node crashes and
partitions; tests use the injector for failure-path coverage.  All schedules
run on simulated time and all randomness comes from the injector's RNG
stream.

Overlapping windows compose correctly: a node recovers only when *no*
scheduled outage still covers the current instant (a manual crash window
and a ``random_crashes`` window for the same node do not resurrect the
node mid-outage), and a partition window's heal is scoped to that window
— when a later partition window is still active, healing the earlier one
re-asserts the later instead of clearing everything.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.network import Network
from repro.sim.rng import SeededRng
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class PlannedOutage:
    """A recorded crash/recovery window for reporting."""

    node: str
    start: float
    end: float


@dataclass(frozen=True)
class PlannedPartition:
    """A recorded partition window (groups + duration) for reporting."""

    groups: tuple[tuple[str, ...], ...]
    start: float
    end: float

    def covers(self, time: float) -> bool:
        """True while the window is active at *time*."""
        return self.start <= time < self.end


class FailureInjector:
    """Schedules crashes, recoveries and partitions on a network."""

    def __init__(self, network: Network, rng: SeededRng | None = None) -> None:
        self._network = network
        self._engine = network.engine
        self._rng = rng if rng is not None else network.rng.fork("failures")
        self._outages: list[PlannedOutage] = []
        self._partitions: list[PlannedPartition] = []

    @property
    def planned_outages(self) -> list[PlannedOutage]:
        """All crash windows scheduled so far."""
        return list(self._outages)

    @property
    def planned_partitions(self) -> list[PlannedPartition]:
        """All partition windows scheduled so far."""
        return list(self._partitions)

    def crash_at(self, node: str, at: float, duration: float | None = None) -> PlannedOutage:
        """Crash *node* at simulated time *at*; recover after *duration*.

        With ``duration=None`` the node stays down forever.  Recovery
        respects every scheduled outage: the node comes back only when no
        other window (from this or any overlapping schedule) still covers
        the recovery instant.
        """
        self._network.node(node)
        if at < self._engine.now:
            raise ConfigurationError("cannot schedule a crash in the past")
        self._engine.schedule_at(
            at, lambda: self._network.node(node).crash(), label=f"crash:{node}"
        )
        end = float("inf")
        if duration is not None:
            if duration <= 0:
                raise ConfigurationError("duration must be > 0")
            end = at + duration
            self._engine.schedule_at(
                end, lambda: self._maybe_recover(node), label=f"recover:{node}"
            )
        outage = PlannedOutage(node=node, start=at, end=end)
        self._outages.append(outage)
        return outage

    def _maybe_recover(self, node: str) -> None:
        """Recover *node* unless another outage window still covers now."""
        now = self._engine.now
        for outage in self._outages:
            if outage.node == node and outage.start <= now < outage.end:
                return
        self._network.node(node).recover()

    def partition_at(
        self, groups: list[list[str]], at: float, duration: float | None = None
    ) -> PlannedPartition:
        """Partition the network into *groups* at time *at*; heal after *duration*.

        The heal is scoped to this window: when another partition window
        is still active at heal time, that window's cut is re-asserted
        instead of clearing the network (the network holds one partition
        at a time; the latest-started active window wins).
        """
        if at < self._engine.now:
            raise ConfigurationError("cannot schedule a partition in the past")
        end = float("inf")
        if duration is not None:
            if duration <= 0:
                raise ConfigurationError("duration must be > 0")
            end = at + duration
        window = PlannedPartition(
            groups=tuple(tuple(group) for group in groups), start=at, end=end
        )
        self._partitions.append(window)
        self._engine.schedule_at(
            at,
            lambda: self._network.partition([list(g) for g in window.groups]),
            label="partition",
        )
        if duration is not None:
            self._engine.schedule_at(
                end, lambda: self._heal_window(window), label="heal"
            )
        return window

    def _heal_window(self, window: PlannedPartition) -> None:
        """End one partition window; re-assert any window still active."""
        now = self._engine.now
        active = [w for w in self._partitions if w.covers(now)]
        if active:
            latest = max(active, key=lambda w: w.start)
            self._network.partition([list(g) for g in latest.groups])
        else:
            self._network.heal()

    def random_crashes(
        self,
        horizon: float,
        rate_per_node: float,
        mean_downtime: float,
        nodes: list[str] | None = None,
    ) -> list[PlannedOutage]:
        """Schedule Poisson crash/recover cycles over [now, now+horizon].

        Each listed node independently crashes at exponential inter-arrival
        times with the given rate; downtime is exponential with
        *mean_downtime*.  Returns the planned outages.
        """
        if rate_per_node <= 0:
            raise ConfigurationError("rate_per_node must be > 0")
        names = nodes if nodes is not None else [n.name for n in self._network.nodes()]
        planned: list[PlannedOutage] = []
        for name in names:
            t = self._engine.now
            while True:
                t += self._rng.exponential(1.0 / rate_per_node)
                if t >= self._engine.now + horizon:
                    break
                downtime = self._rng.exponential(mean_downtime)
                planned.append(self.crash_at(name, t, duration=downtime))
                t += downtime
        return planned
