"""Failure injection for robustness experiments.

Experiment E6 (DESIGN.md) exercises delivery ratios under node crashes and
partitions; tests use the injector for failure-path coverage.  All schedules
run on simulated time and all randomness comes from the injector's RNG
stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.network import Network
from repro.sim.rng import SeededRng
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class PlannedOutage:
    """A recorded crash/recovery window for reporting."""

    node: str
    start: float
    end: float


class FailureInjector:
    """Schedules crashes, recoveries and partitions on a network."""

    def __init__(self, network: Network, rng: SeededRng | None = None) -> None:
        self._network = network
        self._engine = network.engine
        self._rng = rng if rng is not None else network.rng.fork("failures")
        self._outages: list[PlannedOutage] = []

    @property
    def planned_outages(self) -> list[PlannedOutage]:
        """All crash windows scheduled so far."""
        return list(self._outages)

    def crash_at(self, node: str, at: float, duration: float | None = None) -> PlannedOutage:
        """Crash *node* at simulated time *at*; recover after *duration*.

        With ``duration=None`` the node stays down forever.
        """
        target = self._network.node(node)
        if at < self._engine.now:
            raise ConfigurationError("cannot schedule a crash in the past")
        self._engine.schedule_at(at, target.crash, label=f"crash:{node}")
        end = float("inf")
        if duration is not None:
            if duration <= 0:
                raise ConfigurationError("duration must be > 0")
            end = at + duration
            self._engine.schedule_at(end, target.recover, label=f"recover:{node}")
        outage = PlannedOutage(node=node, start=at, end=end)
        self._outages.append(outage)
        return outage

    def partition_at(self, groups: list[list[str]], at: float, duration: float | None = None) -> None:
        """Partition the network into *groups* at time *at*; heal after *duration*."""
        if at < self._engine.now:
            raise ConfigurationError("cannot schedule a partition in the past")
        self._engine.schedule_at(at, lambda: self._network.partition(groups), label="partition")
        if duration is not None:
            self._engine.schedule_at(at + duration, self._network.heal, label="heal")

    def random_crashes(
        self,
        horizon: float,
        rate_per_node: float,
        mean_downtime: float,
        nodes: list[str] | None = None,
    ) -> list[PlannedOutage]:
        """Schedule Poisson crash/recover cycles over [now, now+horizon].

        Each listed node independently crashes at exponential inter-arrival
        times with the given rate; downtime is exponential with
        *mean_downtime*.  Returns the planned outages.
        """
        if rate_per_node <= 0:
            raise ConfigurationError("rate_per_node must be > 0")
        names = nodes if nodes is not None else [n.name for n in self._network.nodes()]
        planned: list[PlannedOutage] = []
        for name in names:
            t = self._engine.now
            while True:
                t += self._rng.exponential(1.0 / rate_per_node)
                if t >= self._engine.now + horizon:
                    break
                downtime = self._rng.exponential(mean_downtime)
                planned.append(self.crash_at(name, t, duration=downtime))
                t += downtime
        return planned
