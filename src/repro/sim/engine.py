"""The discrete-event simulation engine.

The engine keeps a priority queue of timed callbacks and a simulated clock.
Everything that "takes time" in the library — network transmission, MTA
relaying, meeting turns — is expressed by scheduling callbacks on a shared
engine, which makes whole-system runs deterministic and fast (no real
sleeping).

This stands in for the distributed testbed the paper's authors did not have
either; see DESIGN.md section 4 for the substitution rationale.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.util.errors import SchedulingError

Callback = Callable[[], None]

#: cancelled events are purged lazily; once this many linger the queue is
#: rebuilt in one pass (heap depth drives every push/pop comparison)
_COMPACT_THRESHOLD = 64


class _ScheduledEvent:
    """One queued callback; slotted and hand-ordered — heap comparisons
    are the engine's hottest operation, and the dataclass-generated
    ``__lt__`` built a tuple per comparison."""

    __slots__ = ("time", "seq", "callback", "cancelled", "label")

    def __init__(
        self, time: float, seq: int, callback: Callback, label: str = ""
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.label = label

    def __lt__(self, other: "_ScheduledEvent") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq


class EventHandle:
    """Handle returned by :meth:`Engine.schedule`; allows cancellation."""

    def __init__(self, event: _ScheduledEvent, engine: "Engine | None" = None) -> None:
        self._event = event
        self._engine = engine

    @property
    def time(self) -> float:
        """Simulated time at which the callback fires."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """True when the event was cancelled before firing."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the callback from firing (idempotent)."""
        if self._event.cancelled:
            return
        self._event.cancelled = True
        if self._engine is not None:
            self._engine._note_cancel()


class Engine:
    """A deterministic discrete-event scheduler with a simulated clock."""

    def __init__(self) -> None:
        self._queue: list[_ScheduledEvent] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._processed = 0
        self._running = False
        self._cancelled_pending = 0
        self._obs: MetricsRegistry = NULL_METRICS
        self._bind_instruments()

    def attach_metrics(self, metrics: MetricsRegistry | None) -> None:
        """Report scheduling activity to *metrics* (``None`` detaches).

        Counters ``sim.engine.scheduled``/``fired``/``cancelled`` and the
        ``sim.engine.queue_depth`` gauge; with the default no-op registry
        the hot path pays one ``enabled`` check.
        """
        self._obs = metrics if metrics is not None else NULL_METRICS
        self._bind_instruments()

    def _bind_instruments(self) -> None:
        """Resolve the per-event instruments once — schedule/step fire on
        every simulated action, and the registry's name lookup is dict
        work the hot path need not repeat."""
        obs = self._obs
        self._scheduled_counter = obs.counter("sim.engine.scheduled")
        self._fired_counter = obs.counter("sim.engine.fired")
        self._depth_gauge = obs.gauge("sim.engine.queue_depth")

    def _note_cancel(self) -> None:
        self._cancelled_pending += 1
        if self._obs.enabled:
            self._obs.inc("sim.engine.cancelled")
        queue = self._queue
        if (
            self._cancelled_pending > _COMPACT_THRESHOLD
            and self._cancelled_pending * 2 > len(queue)
        ):
            # Cancelled events are dead weight that deepens every heap
            # comparison until popped; once they dominate, rebuild.
            self._queue = [event for event in queue if not event.cancelled]
            heapq.heapify(self._queue)
            self._cancelled_pending = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def processed_count(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_count(self) -> int:
        """Number of events scheduled but not yet executed or cancelled."""
        return sum(1 for e in self._queue if not e.cancelled)

    def schedule(self, delay: float, callback: Callback, label: str = "") -> EventHandle:
        """Schedule *callback* to run *delay* seconds from now."""
        if delay < 0:
            raise SchedulingError(f"cannot schedule into the past (delay={delay})")
        event = _ScheduledEvent(self._now + delay, next(self._seq), callback, label)
        heapq.heappush(self._queue, event)
        if self._obs.enabled:
            self._scheduled_counter.inc()
            self._depth_gauge.set(len(self._queue))
        return EventHandle(event, self)

    def schedule_at(self, time: float, callback: Callback, label: str = "") -> EventHandle:
        """Schedule *callback* at an absolute simulated time."""
        return self.schedule(time - self._now, callback, label=label)

    def call_soon(self, callback: Callback, label: str = "") -> EventHandle:
        """Schedule *callback* at the current time (after pending same-time events)."""
        return self.schedule(0.0, callback, label=label)

    def step(self) -> bool:
        """Execute the next event; return False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._cancelled_pending -= 1
                continue
            self._now = event.time
            self._processed += 1
            if self._obs.enabled:
                self._fired_counter.inc()
                self._depth_gauge.set(len(self._queue))
            event.callback()
            return True
        return False

    def _has_runnable(self) -> bool:
        """Drop cancelled events at the queue head; True when one remains."""
        queue = self._queue
        while queue and queue[0].cancelled:
            heapq.heappop(queue)
            self._cancelled_pending -= 1
        return bool(queue)

    def run(self, max_events: int = 1_000_000) -> int:
        """Run until the queue drains; return the number of events executed.

        *max_events* guards against runaway feedback loops: at most
        *max_events* events execute, and :class:`SchedulingError` is
        raised when the limit is hit with work still pending.
        """
        executed = 0
        while self.step():
            executed += 1
            if executed >= max_events and self._has_runnable():
                raise SchedulingError(f"exceeded max_events={max_events}")
        return executed

    def run_until(self, time: float, max_events: int = 1_000_000) -> int:
        """Run events with timestamp <= *time*; advance the clock to *time*.

        Events scheduled later than *time* remain queued.  As in
        :meth:`run`, at most *max_events* events execute before
        :class:`SchedulingError` is raised.
        """
        executed = 0
        while self._has_runnable() and self._queue[0].time <= time:
            if executed >= max_events:
                raise SchedulingError(f"exceeded max_events={max_events}")
            self.step()
            executed += 1
        self._now = max(self._now, time)
        return executed

    def run_for(self, duration: float, max_events: int = 1_000_000) -> int:
        """Run for *duration* simulated seconds from now."""
        return self.run_until(self._now + duration, max_events=max_events)


class PeriodicTask:
    """Re-schedules a callback at a fixed period until stopped.

    Used by monitors (activity progress checks, directory shadowing) that
    poll on simulated time.  A callback that raises does **not** kill the
    task: the exception is swallowed, counted (``error_count`` and the
    engine registry's ``sim.periodic.errors`` counter) and the next
    firing is armed anyway — one bad poll must not silently stop a
    monitor for the rest of the run.
    """

    def __init__(self, engine: Engine, period: float, callback: Callback, label: str = "") -> None:
        if period <= 0:
            raise SchedulingError("period must be > 0")
        self._engine = engine
        self._period = period
        self._callback = callback
        self._label = label
        self._stopped = False
        self._fired = 0
        self._errors = 0
        self._handle: EventHandle | None = None

    @property
    def fired_count(self) -> int:
        """Number of times the callback has run."""
        return self._fired

    @property
    def error_count(self) -> int:
        """Number of firings whose callback raised."""
        return self._errors

    def start(self) -> "PeriodicTask":
        """Arm the first firing one period from now; returns self."""
        self._handle = self._engine.schedule(self._period, self._fire, label=self._label)
        return self

    def stop(self) -> None:
        """Stop future firings (idempotent)."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()

    def _fire(self) -> None:
        if self._stopped:
            return
        self._fired += 1
        try:
            self._callback()
        except Exception:
            self._errors += 1
            obs = self._engine._obs
            if obs.enabled:
                obs.inc("sim.periodic.errors")
        if not self._stopped:
            self._handle = self._engine.schedule(self._period, self._fire, label=self._label)
