"""Seeded randomness for reproducible simulations.

All stochastic behaviour in the library (network latency jitter, message
loss, failure injection, workload generation) draws from a
:class:`SeededRng` so that a run is fully determined by its seed.  The class
wraps :class:`random.Random` and adds the distributions the simulator needs.
"""

from __future__ import annotations

import random
import zlib
from typing import Sequence, TypeVar

T = TypeVar("T")


class SeededRng:
    """A reproducible random source.

    Child generators created with :meth:`fork` are independent streams
    derived deterministically from the parent, so adding a new consumer of
    randomness does not perturb existing streams.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._random = random.Random(seed)
        self._forks = 0

    @property
    def seed(self) -> int:
        """The seed this stream was created with."""
        return self._seed

    def fork(self, label: str = "") -> "SeededRng":
        """Return an independent child stream.

        The child's seed mixes the parent seed, a fork counter, and the
        label, so distinct labels give distinct streams.  The mix uses
        ``zlib.crc32``, not the builtin ``hash()``: string hashing is
        randomized per process (PYTHONHASHSEED), which would make forked
        streams — and every "seeded" run using them — irreproducible.
        """
        self._forks += 1
        material = f"{self._seed}:{self._forks}:{label}".encode()
        child_seed = zlib.crc32(material) & 0x7FFFFFFF
        return SeededRng(child_seed)

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._random.randint(low, high)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def chance(self, probability: float) -> bool:
        """Return True with the given probability."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._random.random() < probability

    def exponential(self, mean: float) -> float:
        """Exponentially distributed float with the given mean."""
        if mean <= 0:
            raise ValueError("mean must be > 0")
        return self._random.expovariate(1.0 / mean)

    def choice(self, items: Sequence[T]) -> T:
        """Uniformly pick one item from a non-empty sequence."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return self._random.choice(items)

    def sample(self, items: Sequence[T], k: int) -> list[T]:
        """Pick k distinct items from the sequence."""
        return self._random.sample(list(items), k)

    def shuffle(self, items: list[T]) -> list[T]:
        """Return a new list with the items shuffled."""
        copy = list(items)
        self._random.shuffle(copy)
        return copy

    def gauss(self, mu: float, sigma: float) -> float:
        """Normally distributed float."""
        return self._random.gauss(mu, sigma)
