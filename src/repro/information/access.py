"""Role-based access control over information objects.

Paper section 4: the environment needs "appropriate access control
mechanisms.  (Traditionally, roles have been used to signify different
access rights of users.)"  An :class:`AccessControlList` grants operations
to roles (or to everyone); the :class:`AccessController` resolves a
person's roles through the organisational model and decides.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.org.relations import RelationStore
from repro.util.errors import AccessDeniedError, ConfigurationError

#: the operation vocabulary
OP_READ = "read"
OP_WRITE = "write"
OP_SHARE = "share"
OP_DELETE = "delete"
OPERATIONS = (OP_READ, OP_WRITE, OP_SHARE, OP_DELETE)

#: pseudo-role meaning "any authenticated person"
EVERYONE = "*"


@dataclass
class AccessControlList:
    """Grants per information object: operation -> set of role ids."""

    grants: dict[str, set[str]] = field(default_factory=dict)

    def grant(self, operation: str, role_id: str) -> "AccessControlList":
        """Allow *role_id* to perform *operation*; returns self."""
        if operation not in OPERATIONS:
            raise ConfigurationError(f"unknown operation {operation!r}")
        self.grants.setdefault(operation, set()).add(role_id)
        return self

    def revoke(self, operation: str, role_id: str) -> "AccessControlList":
        """Remove a grant; returns self."""
        self.grants.get(operation, set()).discard(role_id)
        return self

    def roles_for(self, operation: str) -> set[str]:
        """Roles granted *operation*."""
        return set(self.grants.get(operation, set()))

    def permits(self, operation: str, roles: list[str]) -> bool:
        """True when any of *roles* (or everyone) is granted *operation*."""
        granted = self.grants.get(operation, set())
        if EVERYONE in granted:
            return True
        return any(role in granted for role in roles)


def owner_acl(owner_role: str) -> AccessControlList:
    """An ACL granting everything to one role and reading to everyone."""
    acl = AccessControlList()
    for operation in OPERATIONS:
        acl.grant(operation, owner_role)
    acl.grant(OP_READ, EVERYONE)
    return acl


def private_acl(owner_role: str) -> AccessControlList:
    """An ACL granting everything to one role and nothing to others."""
    acl = AccessControlList()
    for operation in OPERATIONS:
        acl.grant(operation, owner_role)
    return acl


class AccessController:
    """Decides person-level access by resolving roles organisationally."""

    def __init__(self, relations: RelationStore) -> None:
        self._relations = relations
        self._acls: dict[str, AccessControlList] = {}
        self.decisions = 0
        self.denials = 0

    def protect(self, object_id: str, acl: AccessControlList) -> None:
        """Attach an ACL to an information object id."""
        self._acls[object_id] = acl

    def acl_of(self, object_id: str) -> AccessControlList | None:
        """The ACL protecting an object (None = unprotected/allowed)."""
        return self._acls.get(object_id)

    def allowed(
        self, person_id: str, operation: str, object_id: str, project: str | None = None
    ) -> bool:
        """Decide access; unprotected objects allow everything."""
        self.decisions += 1
        acl = self._acls.get(object_id)
        if acl is None:
            return True
        roles = self._relations.roles_of(person_id, project=project)
        decision = acl.permits(operation, roles)
        if not decision:
            self.denials += 1
        return decision

    def require(
        self, person_id: str, operation: str, object_id: str, project: str | None = None
    ) -> None:
        """Raise :class:`AccessDeniedError` unless allowed."""
        if not self.allowed(person_id, operation, object_id, project=project):
            raise AccessDeniedError(
                f"{person_id} may not {operation} {object_id}"
            )
