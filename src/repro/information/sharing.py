"""Information sharing: workspaces, checkout/checkin, conflict handling.

Paper section 4, "Support for Information Sharing": "the sharing of
information is an essential precursor to cooperative working" and the
environment must adopt "patterns of sharing ... which enable effective
cooperation".  A :class:`SharedWorkspace` scopes a set of information
objects to a group (activity or project) with a sharing pattern; the
checkout/checkin protocol provides optimistic concurrency with explicit
conflict surfacing (never silent lost updates).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any

from repro.information.access import AccessController, OP_READ, OP_WRITE
from repro.information.objects import InformationBase, InformationObject
from repro.util.errors import ModelError, UnknownObjectError


class SharingPattern(Enum):
    """Who may see a workspace's objects."""

    PRIVATE = "private"      # members only
    GROUP = "group"          # members + explicitly invited readers
    PUBLIC = "public"        # anyone in the environment


@dataclass(frozen=True)
class Checkout:
    """A working copy handed to one person."""

    object_id: str
    person_id: str
    base_version: int
    content: dict[str, Any]


class ConflictError(ModelError):
    """Checkin raced with another update; the caller must reconcile."""

    def __init__(self, object_id: str, base_version: int, current_version: int) -> None:
        super().__init__(
            f"{object_id}: checked out at v{base_version} but now at v{current_version}"
        )
        self.object_id = object_id
        self.base_version = base_version
        self.current_version = current_version


class SharedWorkspace:
    """A group-scoped view over the information base."""

    def __init__(
        self,
        workspace_id: str,
        base: InformationBase,
        access: AccessController | None = None,
        pattern: SharingPattern = SharingPattern.GROUP,
    ) -> None:
        self.workspace_id = workspace_id
        self.pattern = pattern
        self._base = base
        self._access = access
        self._members: set[str] = set()
        self._readers: set[str] = set()
        self._object_ids: set[str] = set()
        self._checkouts: dict[tuple[str, str], Checkout] = {}
        self.checkins = 0
        self.conflicts = 0

    # -- membership -----------------------------------------------------------
    def add_member(self, person_id: str) -> None:
        """Full member: may read and write."""
        self._members.add(person_id)

    def invite_reader(self, person_id: str) -> None:
        """Reader: may only read (GROUP pattern)."""
        self._readers.add(person_id)

    def members(self) -> list[str]:
        """All full members, sorted."""
        return sorted(self._members)

    def can_read(self, person_id: str) -> bool:
        """Visibility under the sharing pattern."""
        if self.pattern is SharingPattern.PUBLIC:
            return True
        if self.pattern is SharingPattern.GROUP:
            return person_id in self._members or person_id in self._readers
        return person_id in self._members

    def can_write(self, person_id: str) -> bool:
        """Only full members write, regardless of pattern."""
        return person_id in self._members

    # -- contents ---------------------------------------------------------------
    def share(self, object_id: str) -> None:
        """Place an existing information object into this workspace."""
        self._base.get(object_id)
        self._object_ids.add(object_id)

    def object_ids(self) -> list[str]:
        """Objects shared in this workspace, sorted."""
        return sorted(self._object_ids)

    def _require_shared(self, object_id: str) -> InformationObject:
        if object_id not in self._object_ids:
            raise UnknownObjectError(
                f"object {object_id!r} is not shared in workspace {self.workspace_id!r}"
            )
        return self._base.get(object_id)

    # -- read/checkout/checkin ---------------------------------------------------
    def read(self, object_id: str, person_id: str, project: str | None = None) -> dict[str, Any]:
        """Read the current content, enforcing pattern + ACL."""
        obj = self._require_shared(object_id)
        if not self.can_read(person_id):
            raise ModelError(f"{person_id} cannot read workspace {self.workspace_id}")
        if self._access is not None:
            self._access.require(person_id, OP_READ, object_id, project=project)
        return obj.content

    def checkout(self, object_id: str, person_id: str, project: str | None = None) -> Checkout:
        """Take a working copy for editing."""
        obj = self._require_shared(object_id)
        if not self.can_write(person_id):
            raise ModelError(f"{person_id} cannot write in workspace {self.workspace_id}")
        if self._access is not None:
            self._access.require(person_id, OP_WRITE, object_id, project=project)
        checkout = Checkout(object_id, person_id, obj.version, obj.content)
        self._checkouts[(object_id, person_id)] = checkout
        return checkout

    def checkin(
        self,
        checkout: Checkout,
        content: dict[str, Any],
        time: float = 0.0,
        comment: str = "",
    ) -> int:
        """Commit a working copy; returns the new version number.

        Raises :class:`ConflictError` when someone else checked in since
        the checkout — the paper's environment surfaces conflicts rather
        than silently overwriting ("errors should never pass silently").
        """
        obj = self._require_shared(checkout.object_id)
        key = (checkout.object_id, checkout.person_id)
        if self._checkouts.get(key) is not checkout:
            raise ModelError("stale or unknown checkout")
        if obj.version != checkout.base_version:
            self.conflicts += 1
            raise ConflictError(checkout.object_id, checkout.base_version, obj.version)
        version = obj.update(content, checkout.person_id, time, comment)
        del self._checkouts[key]
        self.checkins += 1
        return version.number

    def merge_checkin(
        self,
        checkout: Checkout,
        content: dict[str, Any],
        time: float = 0.0,
    ) -> int:
        """Conflict-resolving checkin: key-wise merge over the current head.

        Keys changed by this checkout win; keys the checkout did not touch
        keep the head's value.  Used after a :class:`ConflictError` when
        the edits are disjoint enough.
        """
        obj = self._require_shared(checkout.object_id)
        head = obj.content
        merged = dict(head)
        for key, value in content.items():
            if checkout.content.get(key) != value:
                merged[key] = value
        version = obj.update(
            merged, checkout.person_id, time, comment="merged checkin"
        )
        self._checkouts.pop((checkout.object_id, checkout.person_id), None)
        self.checkins += 1
        return version.number
