"""Information objects: typed, versioned, composable.

Paper section 5, "The Information Model": *"The model is expressed in terms
of information objects, the relationships between these objects (e.g.
composition, dependencies) and the access to these objects."*

An :class:`InformationObject` carries a type tag, a content document, and a
full version history.  The :class:`InformationBase` registry maintains
composition (part-of) and derivation (derived-from) relationships and
answers impact queries ("what must be reviewed when this changes?").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.util.errors import ConfigurationError, DependencyCycleError, UnknownObjectError


@dataclass(frozen=True)
class Version:
    """One immutable version of an object's content."""

    number: int
    content: dict[str, Any]
    author: str
    time: float
    comment: str = ""


class InformationObject:
    """A typed, versioned unit of shared information."""

    def __init__(
        self,
        object_id: str,
        info_type: str,
        content: dict[str, Any],
        owner: str,
        time: float = 0.0,
    ) -> None:
        if not object_id or not info_type:
            raise ConfigurationError("information object needs an id and a type")
        self.object_id = object_id
        self.info_type = info_type
        self.owner = owner
        self._versions: list[Version] = [Version(1, dict(content), owner, time, "created")]

    @property
    def version(self) -> int:
        """Current version number."""
        return self._versions[-1].number

    @property
    def content(self) -> dict[str, Any]:
        """Current content (a copy — objects mutate only via update)."""
        return dict(self._versions[-1].content)

    def update(self, content: dict[str, Any], author: str, time: float = 0.0, comment: str = "") -> Version:
        """Append a new version with the given content."""
        version = Version(self.version + 1, dict(content), author, time, comment)
        self._versions.append(version)
        return version

    def history(self) -> list[Version]:
        """All versions, oldest first."""
        return list(self._versions)

    def at_version(self, number: int) -> Version:
        """Fetch a specific version."""
        for version in self._versions:
            if version.number == number:
                return version
        raise UnknownObjectError(f"{self.object_id} has no version {number}")

    def revert(self, number: int, author: str, time: float = 0.0) -> Version:
        """Make an old version current (as a new version)."""
        old = self.at_version(number)
        return self.update(old.content, author, time, comment=f"revert to v{number}")


#: watcher(object_id, version) — fired after an update through the base
Watcher = Callable[[str, Version], None]


class InformationBase:
    """Registry of information objects and their relationships."""

    def __init__(self) -> None:
        self._objects: dict[str, InformationObject] = {}
        #: child -> parent (composition: child is part of parent)
        self._part_of: dict[str, str] = {}
        #: derived -> set of sources
        self._derived_from: dict[str, set[str]] = {}
        #: object id -> watchers notified on update ('*' watches all)
        self._watchers: dict[str, list[Watcher]] = {}

    # -- objects -----------------------------------------------------------
    def create(
        self,
        object_id: str,
        info_type: str,
        content: dict[str, Any],
        owner: str,
        time: float = 0.0,
    ) -> InformationObject:
        """Create and register a new information object."""
        if object_id in self._objects:
            raise ConfigurationError(f"information object {object_id!r} already exists")
        obj = InformationObject(object_id, info_type, content, owner, time)
        self._objects[object_id] = obj
        return obj

    def get(self, object_id: str) -> InformationObject:
        """Look up an object."""
        try:
            return self._objects[object_id]
        except KeyError:
            raise UnknownObjectError(f"unknown information object {object_id!r}") from None

    def exists(self, object_id: str) -> bool:
        """True when the object is registered."""
        return object_id in self._objects

    def all(self) -> list[InformationObject]:
        """All objects, in creation order."""
        return list(self._objects.values())

    def by_type(self, info_type: str) -> list[InformationObject]:
        """Objects of one type."""
        return [o for o in self._objects.values() if o.info_type == info_type]

    # -- updates with notification -------------------------------------------
    def watch(self, object_id: str, watcher: Watcher) -> None:
        """Register *watcher*(object_id, version) for updates to an object.

        Pass ``"*"`` as *object_id* to watch every object.  Watchers fire
        only for updates made through :meth:`update` (the cooperative
        path); direct ``InformationObject.update`` calls stay silent.
        """
        if object_id != "*":
            self.get(object_id)
        self._watchers.setdefault(object_id, []).append(watcher)

    def update(
        self,
        object_id: str,
        content: dict[str, Any],
        author: str,
        time: float = 0.0,
        comment: str = "",
    ) -> Version:
        """Update an object and notify its watchers.

        This is how "activities may share common information" becomes
        actionable: activities watching an object (or its derivation
        impact set) learn of changes the moment they land.
        """
        obj = self.get(object_id)
        version = obj.update(content, author, time, comment)
        for watcher in self._watchers.get(object_id, []):
            watcher(object_id, version)
        for watcher in self._watchers.get("*", []):
            watcher(object_id, version)
        return version

    def notify_impacted(self, object_id: str, notify: Callable[[str], None]) -> int:
        """Call *notify*(impacted_id) for every object derived from this.

        Returns the number of notifications — the "what must be reviewed
        when this changes" fan-out.
        """
        impacted = self.impact_of(object_id)
        for impacted_id in impacted:
            notify(impacted_id)
        return len(impacted)

    # -- composition -----------------------------------------------------------
    def compose(self, part_id: str, whole_id: str) -> None:
        """Declare *part* to be a component of *whole*."""
        self.get(part_id)
        self.get(whole_id)
        if part_id == whole_id:
            raise DependencyCycleError("an object cannot be part of itself")
        # Walk up from the whole; the part must not be an ancestor.
        current: str | None = whole_id
        while current is not None:
            if current == part_id:
                raise DependencyCycleError(
                    f"composing {part_id} into {whole_id} would create a cycle"
                )
            current = self._part_of.get(current)
        self._part_of[part_id] = whole_id

    def parts_of(self, whole_id: str) -> list[str]:
        """Direct components of *whole*."""
        return sorted(p for p, w in self._part_of.items() if w == whole_id)

    def whole_of(self, part_id: str) -> str | None:
        """The object *part* is a component of, if any."""
        return self._part_of.get(part_id)

    def assembly(self, whole_id: str) -> list[str]:
        """All transitive components of *whole*, breadth-first."""
        self.get(whole_id)
        result: list[str] = []
        frontier = deque(self.parts_of(whole_id))
        while frontier:
            current = frontier.popleft()
            result.append(current)
            frontier.extend(self.parts_of(current))
        return result

    # -- derivation ----------------------------------------------------------
    def derive(self, derived_id: str, source_id: str) -> None:
        """Declare that *derived* is computed/produced from *source*."""
        self.get(derived_id)
        self.get(source_id)
        if derived_id == source_id:
            raise DependencyCycleError("an object cannot derive from itself")
        if derived_id in self._transitive_sources_of(source_id):
            raise DependencyCycleError(
                f"deriving {derived_id} from {source_id} would create a cycle"
            )
        self._derived_from.setdefault(derived_id, set()).add(source_id)

    def sources_of(self, derived_id: str) -> list[str]:
        """Direct sources of *derived*."""
        return sorted(self._derived_from.get(derived_id, set()))

    def _transitive_sources_of(self, object_id: str) -> set[str]:
        seen: set[str] = set()
        frontier = deque(self._derived_from.get(object_id, set()))
        while frontier:
            current = frontier.popleft()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self._derived_from.get(current, set()))
        return seen

    def impact_of(self, object_id: str) -> list[str]:
        """Everything (transitively) derived from *object_id*.

        This answers "what must be reviewed when this changes?" — the
        inter-activity 'shares common information' linkage.
        """
        self.get(object_id)
        impacted: set[str] = set()
        frontier = deque([object_id])
        while frontier:
            current = frontier.popleft()
            for derived, sources in self._derived_from.items():
                if current in sources and derived not in impacted:
                    impacted.add(derived)
                    frontier.append(derived)
        return sorted(impacted)
