"""The Information Model (paper section 5).

Versioned information objects with composition/derivation relationships,
role-based access control, shared workspaces with optimistic concurrency,
and the common-form interchange service that gives N applications full
interoperability from N converters.
"""

from repro.information.access import (
    EVERYONE,
    OP_DELETE,
    OP_READ,
    OP_SHARE,
    OP_WRITE,
    OPERATIONS,
    AccessControlList,
    AccessController,
    owner_acl,
    private_acl,
)
from repro.information.interchange import (
    COMMON_KEYS,
    FormatConverter,
    InterchangeService,
    TranslationResult,
    is_common,
    make_common,
)
from repro.information.objects import InformationBase, InformationObject, Version
from repro.information.sharing import (
    Checkout,
    ConflictError,
    SharedWorkspace,
    SharingPattern,
)

__all__ = [
    "EVERYONE",
    "OP_DELETE",
    "OP_READ",
    "OP_SHARE",
    "OP_WRITE",
    "OPERATIONS",
    "AccessControlList",
    "AccessController",
    "owner_acl",
    "private_acl",
    "COMMON_KEYS",
    "FormatConverter",
    "InterchangeService",
    "TranslationResult",
    "is_common",
    "make_common",
    "InformationBase",
    "InformationObject",
    "Version",
    "Checkout",
    "ConflictError",
    "SharedWorkspace",
    "SharingPattern",
]
