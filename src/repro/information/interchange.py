"""Interchange of information between applications.

This module is the heart of the paper's openness argument (sections 3-4):
"services for the access and exchange of information between CSCW and
non-CSCW applications".  Each application registers a *format converter*
that maps its native documents to/from a shared **common form**; the
:class:`InterchangeService` then translates any registered format to any
other in at most two hops (native -> common -> native).

The baseline world (:mod:`repro.baselines`) instead builds pairwise ad-hoc
gateways — experiment E2 measures the O(N) vs O(N^2) difference that
motivates the environment.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Callable

from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.util.errors import ConfigurationError, InteropError

ToCommon = Callable[[dict[str, Any]], dict[str, Any]]
FromCommon = Callable[[dict[str, Any]], dict[str, Any]]

#: required keys in the common form
COMMON_KEYS = ("kind", "title", "body", "attributes")


def make_common(kind: str, title: str, body: str, **attributes: Any) -> dict[str, Any]:
    """Construct a well-formed common-form document.

    >>> doc = make_common("note", "minutes", "we met", author="ana")
    >>> doc["attributes"]["author"]
    'ana'
    """
    return {"kind": kind, "title": title, "body": body, "attributes": dict(attributes)}


def is_common(document: dict[str, Any]) -> bool:
    """True when the document carries all common-form keys."""
    return all(key in document for key in COMMON_KEYS)


@dataclass(frozen=True)
class FormatConverter:
    """One application format's bridge to the common form."""

    format_name: str
    to_common: ToCommon
    from_common: FromCommon
    #: how much structure survives the native->common mapping, in (0, 1]
    fidelity: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.fidelity <= 1.0:
            raise ConfigurationError("fidelity must be in (0, 1]")


@dataclass(frozen=True)
class TranslationResult:
    """Outcome of a cross-format translation."""

    document: dict[str, Any]
    source_format: str
    target_format: str
    fidelity: float
    hops: int


@dataclass
class _TranslationPlan:
    """A memoised converter pair for one (source, target) format pair.

    ``validated`` flips to True after the first successful common-form
    validation for the pair; later translations through the same plan
    skip the shape re-check (converters are frozen and assumed
    shape-deterministic — a converter that emits a malformed common form
    does so on its first use and the plan never validates).  Replacing a
    converter evicts every plan touching its format, so the swapped-in
    converter's output is re-validated on first use instead of riding a
    stale ``validated`` flag.
    """

    source: FormatConverter
    target: FormatConverter
    fidelity: float
    validated: bool = False


class InterchangeService:
    """Translates documents between registered application formats.

    Repeated same-pair translations run through a memoised
    :class:`_TranslationPlan` (converter lookup, combined fidelity and
    shape validation amortised to the first call); plan invalidation is
    *keyed*: registering or replacing a converter evicts only the plans
    whose source or target is that format, never the whole cache.
    Attach a metrics registry to export ``interchange.plan.<hit|miss>``,
    ``interchange.plan.evicted`` and ``interchange.identity`` counters.
    """

    def __init__(self) -> None:
        self._converters: dict[str, FormatConverter] = {}
        self._plans: dict[tuple[str, str], _TranslationPlan] = {}
        self._obs: MetricsRegistry = NULL_METRICS
        self.translations = 0
        self.failures = 0
        self.plan_hits = 0
        self.plan_misses = 0
        self.plan_evictions = 0
        self.identities = 0

    def attach_metrics(self, metrics: MetricsRegistry | None) -> None:
        """Report plan-cache activity to *metrics* (``None`` detaches)."""
        self._obs = metrics if metrics is not None else NULL_METRICS

    def register(self, converter: FormatConverter, replace: bool = False) -> None:
        """Register an application format (one per format name).

        Pass ``replace=True`` to swap in a new converter for an
        already-registered format.  Either way invalidation is keyed:
        only plans whose source or target is this format are evicted
        (their ``validated`` flag resets with them, so a replacement
        converter is re-validated on first use); plans between other
        formats survive untouched.
        """
        name = converter.format_name
        if name in self._converters and not replace:
            raise ConfigurationError(f"format {name!r} already registered")
        self._converters[name] = converter
        affected = [key for key in self._plans if name in key]
        for key in affected:
            del self._plans[key]
        if affected:
            self.plan_evictions += len(affected)
            if self._obs.enabled:
                self._obs.inc("interchange.plan.evicted", len(affected))

    def formats(self) -> list[str]:
        """All registered format names, sorted."""
        return sorted(self._converters)

    def is_registered(self, format_name: str) -> bool:
        """True when the format has a converter."""
        return format_name in self._converters

    def converter_count(self) -> int:
        """Number of converters the environment needed — O(N)."""
        return len(self._converters)

    def _converter(self, format_name: str) -> FormatConverter:
        try:
            return self._converters[format_name]
        except KeyError:
            self.failures += 1
            raise InteropError(f"no converter registered for {format_name!r}") from None

    def to_common(self, format_name: str, document: dict[str, Any]) -> dict[str, Any]:
        """Lift a native document to the common form (validating it)."""
        converter = self._converter(format_name)
        common = converter.to_common(document)
        if not is_common(common):
            self.failures += 1
            raise InteropError(
                f"converter {format_name!r} produced a malformed common document "
                f"(missing keys from {COMMON_KEYS})"
            )
        return common

    def translate(
        self, source_format: str, target_format: str, document: dict[str, Any]
    ) -> TranslationResult:
        """Translate a native document between two registered formats."""
        if source_format == target_format:
            self.translations += 1
            self.identities += 1
            if self._obs.enabled:
                self._obs.inc("interchange.identity")
            # deep copy, like every converting path: the receiver must
            # never alias (or mutate) the sender's nested structures
            return TranslationResult(
                copy.deepcopy(document), source_format, target_format, 1.0, 0
            )
        plan = self._plans.get((source_format, target_format))
        if plan is None:
            self.plan_misses += 1
            if self._obs.enabled:
                self._obs.inc("interchange.plan.miss")
            source = self._converter(source_format)
            target = self._converter(target_format)
            plan = self._plans[(source_format, target_format)] = _TranslationPlan(
                source, target, fidelity=source.fidelity * target.fidelity
            )
        else:
            self.plan_hits += 1
            if self._obs.enabled:
                self._obs.inc("interchange.plan.hit")
        common = plan.source.to_common(document)
        if not plan.validated:
            if not is_common(common):
                self.failures += 1
                raise InteropError(
                    f"converter {source_format!r} produced a malformed common document "
                    f"(missing keys from {COMMON_KEYS})"
                )
            plan.validated = True
        native = plan.target.from_common(common)
        self.translations += 1
        return TranslationResult(
            document=native,
            source_format=source_format,
            target_format=target_format,
            fidelity=plan.fidelity,
            hops=2,
        )

    def reachable_pairs(self) -> int:
        """Number of ordered format pairs the service can translate.

        With N registered formats this is N*(N-1): full interoperability
        from N converters — the paper's Figure 3 world.
        """
        n = len(self._converters)
        return n * (n - 1)
