"""Interchange of information between applications.

This module is the heart of the paper's openness argument (sections 3-4):
"services for the access and exchange of information between CSCW and
non-CSCW applications".  Each application registers a *format converter*
that maps its native documents to/from a shared **common form**; the
:class:`InterchangeService` then translates any registered format to any
other in at most two hops (native -> common -> native).

The baseline world (:mod:`repro.baselines`) instead builds pairwise ad-hoc
gateways — experiment E2 measures the O(N) vs O(N^2) difference that
motivates the environment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.util.errors import ConfigurationError, InteropError

ToCommon = Callable[[dict[str, Any]], dict[str, Any]]
FromCommon = Callable[[dict[str, Any]], dict[str, Any]]

#: required keys in the common form
COMMON_KEYS = ("kind", "title", "body", "attributes")


def make_common(kind: str, title: str, body: str, **attributes: Any) -> dict[str, Any]:
    """Construct a well-formed common-form document.

    >>> doc = make_common("note", "minutes", "we met", author="ana")
    >>> doc["attributes"]["author"]
    'ana'
    """
    return {"kind": kind, "title": title, "body": body, "attributes": dict(attributes)}


def is_common(document: dict[str, Any]) -> bool:
    """True when the document carries all common-form keys."""
    return all(key in document for key in COMMON_KEYS)


@dataclass(frozen=True)
class FormatConverter:
    """One application format's bridge to the common form."""

    format_name: str
    to_common: ToCommon
    from_common: FromCommon
    #: how much structure survives the native->common mapping, in (0, 1]
    fidelity: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.fidelity <= 1.0:
            raise ConfigurationError("fidelity must be in (0, 1]")


@dataclass(frozen=True)
class TranslationResult:
    """Outcome of a cross-format translation."""

    document: dict[str, Any]
    source_format: str
    target_format: str
    fidelity: float
    hops: int


class InterchangeService:
    """Translates documents between registered application formats."""

    def __init__(self) -> None:
        self._converters: dict[str, FormatConverter] = {}
        self.translations = 0
        self.failures = 0

    def register(self, converter: FormatConverter) -> None:
        """Register an application format (one per format name)."""
        if converter.format_name in self._converters:
            raise ConfigurationError(
                f"format {converter.format_name!r} already registered"
            )
        self._converters[converter.format_name] = converter

    def formats(self) -> list[str]:
        """All registered format names, sorted."""
        return sorted(self._converters)

    def is_registered(self, format_name: str) -> bool:
        """True when the format has a converter."""
        return format_name in self._converters

    def converter_count(self) -> int:
        """Number of converters the environment needed — O(N)."""
        return len(self._converters)

    def _converter(self, format_name: str) -> FormatConverter:
        try:
            return self._converters[format_name]
        except KeyError:
            self.failures += 1
            raise InteropError(f"no converter registered for {format_name!r}") from None

    def to_common(self, format_name: str, document: dict[str, Any]) -> dict[str, Any]:
        """Lift a native document to the common form (validating it)."""
        converter = self._converter(format_name)
        common = converter.to_common(document)
        if not is_common(common):
            self.failures += 1
            raise InteropError(
                f"converter {format_name!r} produced a malformed common document "
                f"(missing keys from {COMMON_KEYS})"
            )
        return common

    def translate(
        self, source_format: str, target_format: str, document: dict[str, Any]
    ) -> TranslationResult:
        """Translate a native document between two registered formats."""
        if source_format == target_format:
            self.translations += 1
            return TranslationResult(dict(document), source_format, target_format, 1.0, 0)
        source = self._converter(source_format)
        target = self._converter(target_format)
        common = self.to_common(source_format, document)
        native = target.from_common(common)
        self.translations += 1
        return TranslationResult(
            document=native,
            source_format=source_format,
            target_format=target_format,
            fidelity=source.fidelity * target.fidelity,
            hops=2,
        )

    def reachable_pairs(self) -> int:
        """Number of ordered format pairs the service can translate.

        With N registered formats this is N*(N-1): full interoperability
        from N converters — the paper's Figure 3 world.
        """
        n = len(self._converters)
        return n * (n - 1)
