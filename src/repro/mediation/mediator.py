"""The mediator: conversion-graph assembly, plan synthesis, negotiation.

Applications :meth:`~Mediator.publish` conversion capabilities, which
become :class:`~repro.odp.trader.ServiceOffer` s under the
``format-converter`` service type — the trader is the broker, so trading
policy hooks (section 6.1's org-KB policy) gate which converters an
environment may actually use.  From the visible offers the mediator
assembles a directed conversion graph and *synthesizes* plans:
shortest-path searches ranked lexicographically by (fidelity desc, cost
asc, hops asc), so a lossless three-hop chain beats a lossy direct
converter, and ties break deterministically on the path itself.

Synthesized plans are cached per ``(source, target)`` pair with **keyed
invalidation** (the PR 7 tag-eviction pattern, never whole-cache drops):

* each cached plan is indexed under a ``c:<capability_id>`` tag per step
  — withdrawing a capability evicts exactly the plans that execute it
  (correctness-critical: a cached plan never references a dead
  converter);
* publishing a capability evicts only the plans whose *endpoints* touch
  the new edge's formats (``e:<format>`` tags) — those pairs may now
  have a better route.  Plans between unrelated endpoints survive; a new
  interior shortcut upgrades them only when they are next synthesized
  (documented bounded staleness: the cached plan stays valid and
  executable, it is merely no longer optimal).

Fidelity is negotiated, not assumed: :meth:`~Mediator.negotiate` accepts
the best plan when its fidelity clears the caller's ``min_fidelity``
(counting a *downgrade* when lossy), and raises
:class:`~repro.util.errors.FidelityError` — surfaced by the exchange
pipeline as the structured ``REASON_FIDELITY`` outcome — when no plan
does.
"""

from __future__ import annotations

import copy
import heapq
from dataclasses import dataclass
from typing import Any

from repro.information.interchange import FormatConverter, TranslationResult
from repro.mediation.capability import (
    COMMON_FORMAT,
    SERVICE_TYPE_CONVERTER,
    ConversionCapability,
    capabilities_from_converter,
)
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.tracing import NULL_TRACER, Tracer
from repro.odp.objects import InterfaceRef
from repro.odp.trader import ImportContext, Trader
from repro.util.errors import (
    ConfigurationError,
    FidelityError,
    InteropError,
    NoOfferError,
)


class MediationError(InteropError):
    """No conversion route exists between two formats."""


@dataclass(frozen=True)
class MediationPlan:
    """One synthesized conversion route.

    ``path`` lists the formats visited (endpoints included); ``steps``
    the capability ids executed between them, in order.  ``fidelity``
    is the product of the steps' fidelities, ``cost`` their sum.
    """

    source: str
    target: str
    path: tuple[str, ...]
    steps: tuple[str, ...]
    fidelity: float
    cost: float

    @property
    def hops(self) -> int:
        """Conversion steps executed (0 = identity)."""
        return len(self.steps)

    def to_document(self) -> dict[str, Any]:
        """The wire form stamped on federation relay envelopes."""
        return {
            "source": self.source,
            "target": self.target,
            "path": list(self.path),
            "steps": list(self.steps),
            "fidelity": self.fidelity,
            "cost": self.cost,
            "hops": self.hops,
        }


class Mediator:
    """Synthesizes and executes conversion plans over traded capabilities."""

    def __init__(self, trader: Trader, node: str = "mediator") -> None:
        self._trader = trader
        self._node = node
        #: capability id -> implementation (callables never ride offers)
        self._implementations: dict[str, ConversionCapability] = {}
        #: capability id -> the trader offer advertising it
        self._offer_ids: dict[str, str] = {}
        #: (source, target) -> cached synthesized plan
        self._plans: dict[tuple[str, str], MediationPlan] = {}
        #: secondary index: ``c:<capability>`` / ``e:<format>`` tag -> keys
        self._plan_index: dict[str, set[tuple[str, str]]] = {}
        self._plan_tags: dict[tuple[str, str], tuple[str, ...]] = {}
        #: source format -> outgoing edges, rebuilt lazily from the trader
        self._edges: dict[str, list[ConversionCapability]] = {}
        self._graph_stale = True
        self._obs: MetricsRegistry = NULL_METRICS
        self._tracer: Tracer = NULL_TRACER
        self.publishes = 0
        self.withdrawals = 0
        self.plans_synthesized = 0
        self.plan_hits = 0
        self.plan_evictions = 0
        self.invalidations = 0
        #: full plan-cache drops; every churn path is keyed, so converter
        #: register/withdraw must leave this at 0 (asserted by E17) —
        #: only an explicit :meth:`invalidate_all` moves it
        self.whole_cache_invalidations = 0
        self.negotiated_downgrades = 0
        self.fidelity_rejections = 0
        self.translations = 0
        self.identities = 0
        self.failures = 0

    # -- observability -----------------------------------------------------
    def attach_metrics(self, metrics: MetricsRegistry | None) -> None:
        """Report mediation activity to *metrics* (``None`` detaches)."""
        self._obs = metrics if metrics is not None else NULL_METRICS

    def attach_tracer(self, tracer: Tracer | None) -> None:
        """Trace plan execution (one span per translate, one per hop)."""
        self._tracer = tracer if tracer is not None else NULL_TRACER

    # -- capability publication --------------------------------------------
    def publish(self, capability: ConversionCapability) -> ConversionCapability:
        """Advertise a conversion capability on the trader.

        The offer carries the metadata (:meth:`offer_properties`); the
        implementation callable stays local.  Publishing evicts exactly
        the cached plans whose endpoints touch the new edge's formats.
        """
        if capability.capability_id in self._implementations:
            raise ConfigurationError(
                f"capability {capability.capability_id!r} already published"
            )
        offer = self._trader.export(
            SERVICE_TYPE_CONVERTER,
            InterfaceRef(self._node, capability.capability_id, "convert"),
            capability.offer_properties(),
            exporter=capability.exporter,
        )
        self._implementations[capability.capability_id] = capability
        self._offer_ids[capability.capability_id] = offer.offer_id
        self._graph_stale = True
        self.publishes += 1
        if self._obs.enabled:
            self._obs.inc("mediation.capability.published")
        removed = self._evict_tag(f"e:{capability.source}")
        removed += self._evict_tag(f"e:{capability.target}")
        self._note_event(removed)
        return capability

    def publish_converter(
        self,
        converter: FormatConverter,
        cost: float = 1.0,
        exporter: str = "",
        replace: bool = False,
    ) -> tuple[ConversionCapability, ConversionCapability]:
        """Publish both halves of a hub converter (to/from common form).

        With *replace*, an already-published pair for the same format is
        withdrawn first (keyed eviction of its plans), mirroring
        ``InterchangeService.register(replace=True)``.
        """
        pair = capabilities_from_converter(converter, cost=cost, exporter=exporter)
        if replace:
            for capability in pair:
                if capability.capability_id in self._implementations:
                    self.withdraw(capability.capability_id)
        for capability in pair:
            self.publish(capability)
        return pair

    def withdraw(self, capability_id: str) -> None:
        """Withdraw a capability; plans executing it are evicted (keyed)."""
        if capability_id not in self._implementations:
            raise ConfigurationError(f"unknown capability {capability_id!r}")
        self._trader.withdraw(self._offer_ids.pop(capability_id))
        del self._implementations[capability_id]
        self._graph_stale = True
        self.withdrawals += 1
        if self._obs.enabled:
            self._obs.inc("mediation.capability.withdrawn")
        self._note_event(self._evict_tag(f"c:{capability_id}"))

    def capability(self, capability_id: str) -> ConversionCapability:
        """Look up a published capability's implementation."""
        try:
            return self._implementations[capability_id]
        except KeyError:
            raise MediationError(f"unknown capability {capability_id!r}") from None

    def capability_count(self) -> int:
        """Capabilities this mediator holds implementations for — O(N)
        for N hub-bridged applications (two halves each)."""
        return len(self._implementations)

    # -- graph assembly ----------------------------------------------------
    def _graph(self) -> dict[str, list[ConversionCapability]]:
        """The conversion graph, rebuilt from trader offers when stale.

        Edges come from a trader *import* (not the local implementation
        map), so policy hooks and federation links decide what the graph
        may use; offers without a local implementation (foreign
        advertisements) are skipped.  Edge lists are sorted so synthesis
        is deterministic regardless of publication order.
        """
        if not self._graph_stale:
            return self._edges
        try:
            offers = self._trader.import_(
                SERVICE_TYPE_CONVERTER,
                context=ImportContext(importer=self._node),
                max_offers=1_000_000,
                search_links=False,
            )
        except NoOfferError:
            offers = []
        edges: dict[str, list[ConversionCapability]] = {}
        for offer in offers:
            capability = self._implementations.get(offer.properties.get("capability"))
            if capability is None:
                continue
            edges.setdefault(capability.source, []).append(capability)
        for outgoing in edges.values():
            outgoing.sort(key=lambda c: (c.target, c.capability_id))
        self._edges = edges
        self._graph_stale = False
        return edges

    def formats(self) -> list[str]:
        """Every format the graph mentions (sources and targets), sorted."""
        edges = self._graph()
        nodes = set(edges)
        for outgoing in edges.values():
            nodes.update(capability.target for capability in outgoing)
        return sorted(nodes)

    def reachable_pairs(self) -> int:
        """Ordered *application-format* pairs with a conversion route.

        The common hub is interior plumbing, not an application format,
        so pairs involving it are excluded — this is the number the E17
        O(N)-converters / N·(N−1)-pairs claim counts.
        """
        edges = self._graph()
        nodes = [f for f in self.formats() if f != COMMON_FORMAT]
        count = 0
        for start in nodes:
            seen = {start}
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for capability in edges.get(node, ()):
                    if capability.target not in seen:
                        seen.add(capability.target)
                        frontier.append(capability.target)
            count += len(seen - {start, COMMON_FORMAT})
        return count

    # -- plan synthesis ----------------------------------------------------
    def plan(self, source: str, target: str) -> MediationPlan:
        """The best conversion plan for a format pair (cached, keyed).

        Best = lexicographic (fidelity desc, cost asc, hops asc); ties
        break on the path, so same capabilities => same plan at every
        call and across same-seed reruns.  Raises
        :class:`MediationError` when no route exists.
        """
        if source == target:
            return MediationPlan(source, target, (source,), (), 1.0, 0.0)
        key = (source, target)
        cached = self._plans.get(key)
        if cached is not None:
            self.plan_hits += 1
            if self._obs.enabled:
                self._obs.inc("mediation.plan.hit")
            return cached
        plan = self._synthesize(source, target)
        self.plans_synthesized += 1
        if self._obs.enabled:
            self._obs.inc("mediation.plan.synthesized")
        self._store_plan(key, plan)
        return plan

    def _synthesize(self, source: str, target: str) -> MediationPlan:
        """Dijkstra over the conversion graph.

        The priority is ``(-fidelity, cost, hops, path)``: fidelities in
        (0, 1] multiply (never improve along an edge) and costs > 0 add
        (strictly worsen), so the first pop of a node is its best label
        and the search terminates.
        """
        edges = self._graph()
        heap: list[tuple[float, float, int, tuple[str, ...], tuple[str, ...]]] = [
            (-1.0, 0.0, 0, (source,), ())
        ]
        settled: set[str] = set()
        while heap:
            neg_fidelity, cost, hops, path, steps = heapq.heappop(heap)
            node = path[-1]
            if node == target:
                return MediationPlan(
                    source, target, path, steps, -neg_fidelity, cost
                )
            if node in settled:
                continue
            settled.add(node)
            for capability in edges.get(node, ()):
                if capability.target in settled:
                    continue
                heapq.heappush(
                    heap,
                    (
                        neg_fidelity * capability.fidelity,
                        cost + capability.cost,
                        hops + 1,
                        path + (capability.target,),
                        steps + (capability.capability_id,),
                    ),
                )
        self.failures += 1
        raise MediationError(
            f"no conversion route from {source!r} to {target!r} "
            f"({len(self._implementations)} capabilities published)"
        )

    # -- negotiation -------------------------------------------------------
    def negotiate(
        self, source: str, target: str, min_fidelity: float = 0.0
    ) -> MediationPlan:
        """The best plan meeting the caller's fidelity floor.

        A lossy plan (fidelity < 1) is only chosen when *min_fidelity*
        permits — a *negotiated downgrade*, counted as such.  When even
        the best plan falls short, raises
        :class:`~repro.util.errors.FidelityError` carrying the best
        available fidelity, so the caller can decide to lower the floor.
        """
        plan = self.plan(source, target)
        if plan.fidelity < min_fidelity:
            self.fidelity_rejections += 1
            if self._obs.enabled:
                self._obs.inc("mediation.negotiation.rejected")
            raise FidelityError(
                f"best plan {source!r} -> {target!r} keeps fidelity "
                f"{plan.fidelity:.3f}, below the requested floor "
                f"{min_fidelity:.3f}",
                best_fidelity=plan.fidelity,
                min_fidelity=min_fidelity,
            )
        if plan.fidelity < 1.0:
            self.negotiated_downgrades += 1
            if self._obs.enabled:
                self._obs.inc("mediation.negotiation.downgraded")
        return plan

    # -- execution ---------------------------------------------------------
    def translate(
        self,
        source_format: str,
        target_format: str,
        document: dict[str, Any],
        min_fidelity: float = 0.0,
    ) -> TranslationResult:
        """Negotiate a plan and run the document through it.

        Returns the same :class:`TranslationResult` shape as the static
        interchange service, so the exchange pipeline can fall back here
        transparently; ``hops`` counts actual conversion steps (a
        multi-hop plan reports > 2).
        """
        if source_format == target_format:
            self.translations += 1
            self.identities += 1
            if self._obs.enabled:
                self._obs.inc("mediation.identity")
            return TranslationResult(
                copy.deepcopy(document), source_format, target_format, 1.0, 0
            )
        plan = self.negotiate(source_format, target_format, min_fidelity)
        with self._tracer.span(
            "mediation.translate",
            source=source_format,
            target=target_format,
            hops=plan.hops,
            fidelity=plan.fidelity,
        ):
            payload = document
            for capability_id in plan.steps:
                capability = self.capability(capability_id)
                with self._tracer.span(
                    "mediation.hop",
                    step=f"{capability.source}->{capability.target}",
                    kind=capability.kind,
                ):
                    payload = capability.convert(payload)
        self.translations += 1
        if self._obs.enabled:
            self._obs.inc("mediation.translations")
            self._obs.observe("mediation.fidelity", plan.fidelity)
        return TranslationResult(
            document=payload,
            source_format=source_format,
            target_format=target_format,
            fidelity=plan.fidelity,
            hops=plan.hops,
        )

    # -- keyed plan cache --------------------------------------------------
    def _store_plan(self, key: tuple[str, str], plan: MediationPlan) -> None:
        self._plans[key] = plan
        tags = tuple(
            {f"c:{step}" for step in plan.steps}
            | {f"e:{plan.source}", f"e:{plan.target}"}
        )
        self._plan_tags[key] = tags
        for tag in tags:
            self._plan_index.setdefault(tag, set()).add(key)

    def _drop_plan(self, key: tuple[str, str]) -> int:
        if self._plans.pop(key, None) is None:
            return 0
        for tag in self._plan_tags.pop(key, ()):
            keys = self._plan_index.get(tag)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._plan_index[tag]
        return 1

    def _evict_tag(self, tag: str) -> int:
        keys = self._plan_index.get(tag)
        if not keys:
            return 0
        return sum(self._drop_plan(key) for key in list(keys))

    def _note_event(self, removed: int) -> None:
        """Account one mutation event that evicted *removed* plans."""
        if removed:
            self.plan_evictions += removed
            self.invalidations += 1
            if self._obs.enabled:
                self._obs.inc("mediation.plan.evicted", removed)

    def invalidate_all(self) -> None:
        """Drop every cached plan (explicit operator control only —
        never taken by converter churn, which stays keyed)."""
        removed = len(self._plans)
        self._plans.clear()
        self._plan_index.clear()
        self._plan_tags.clear()
        self.whole_cache_invalidations += 1
        self._note_event(removed)

    # -- introspection -----------------------------------------------------
    def stats(self) -> dict[str, int | float]:
        """Counters and sizes, for ``describe()`` and the benchmarks."""
        return {
            "capabilities": len(self._implementations),
            "publishes": self.publishes,
            "withdrawals": self.withdrawals,
            "plans_cached": len(self._plans),
            "plans_synthesized": self.plans_synthesized,
            "plan_hits": self.plan_hits,
            "plan_evictions": self.plan_evictions,
            "invalidations": self.invalidations,
            "whole_cache_invalidations": self.whole_cache_invalidations,
            "negotiated_downgrades": self.negotiated_downgrades,
            "fidelity_rejections": self.fidelity_rejections,
            "translations": self.translations,
            "identities": self.identities,
            "failures": self.failures,
        }
