"""Mediation: trader-published converters and synthesized conversion plans.

The static :class:`~repro.information.interchange.InterchangeService`
realises the paper's O(N) openness argument with a fixed shape — every
translation is exactly ``to_common`` -> ``from_common``.  This package
generalises it in the direction of service-based mediation (MISE 2.0)
over the ODP trader-as-capability-broker: applications *publish*
conversion capabilities (including direct and partial converters that
bypass the common form) as service offers, and a :class:`Mediator`
assembles them into a conversion graph, synthesizes multi-hop plans and
negotiates fidelity downgrades against a caller's ``min_fidelity``.
"""

from repro.mediation.capability import (
    KIND_DIRECT,
    KIND_FROM_COMMON,
    KIND_PARTIAL,
    KIND_TO_COMMON,
    SERVICE_TYPE_CONVERTER,
    ConversionCapability,
    capabilities_from_converter,
    direct_capability,
)
from repro.mediation.mediator import MediationError, MediationPlan, Mediator
from repro.util.errors import FidelityError

__all__ = [
    "ConversionCapability",
    "FidelityError",
    "MediationError",
    "MediationPlan",
    "Mediator",
    "SERVICE_TYPE_CONVERTER",
    "KIND_DIRECT",
    "KIND_FROM_COMMON",
    "KIND_PARTIAL",
    "KIND_TO_COMMON",
    "capabilities_from_converter",
    "direct_capability",
]
