"""Conversion capabilities: what applications publish on the trader.

A :class:`ConversionCapability` is one directed edge of the mediation
graph — "I can turn *source*-format documents into *target*-format
documents, keeping *fidelity* of their structure, at *cost*".  The
implementation callable never travels through the trader (trader
properties treat callables as ODP *dynamic properties* and evaluate them
at import time); offers carry only the metadata, and the
:class:`~repro.mediation.mediator.Mediator` keeps the id -> callable map.

Four capability kinds exist:

* ``to-common`` / ``from-common`` — the two halves of a classic
  :class:`~repro.information.interchange.FormatConverter` hub bridge,
  derived by :func:`capabilities_from_converter`;
* ``direct`` — a bespoke source -> target converter that bypasses the
  common form (usually higher fidelity or cheaper);
* ``partial`` — a converter that only gets partway (source -> some
  intermediate format); the mediator chains partials into multi-hop
  plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.information.interchange import (
    COMMON_KEYS,
    FormatConverter,
    is_common,
)
from repro.util.errors import ConfigurationError, InteropError

#: the trader service type every conversion capability is offered under
SERVICE_TYPE_CONVERTER = "format-converter"

#: the hub node of the conversion graph (the interchange common form)
COMMON_FORMAT = "common"

KIND_TO_COMMON = "to-common"
KIND_FROM_COMMON = "from-common"
KIND_DIRECT = "direct"
KIND_PARTIAL = "partial"
_KINDS = (KIND_TO_COMMON, KIND_FROM_COMMON, KIND_DIRECT, KIND_PARTIAL)

#: a one-step document conversion
Convert = Callable[[dict[str, Any]], dict[str, Any]]


@dataclass(frozen=True)
class ConversionCapability:
    """One directed conversion edge an application can perform."""

    capability_id: str
    source: str
    target: str
    convert: Convert = field(hash=False, compare=False)
    #: how much structure survives this step, in (0, 1]; multiplies
    #: along a plan
    fidelity: float = 1.0
    #: abstract per-step cost, > 0; adds along a plan
    cost: float = 1.0
    kind: str = KIND_DIRECT
    #: the publishing application (rides the offer's ``exporter`` field,
    #: so trading policy can gate who may use the converter)
    exporter: str = ""

    def __post_init__(self) -> None:
        if not self.capability_id:
            raise ConfigurationError("capability needs an id")
        if not self.source or not self.target:
            raise ConfigurationError("capability needs source and target formats")
        if self.source == self.target:
            raise ConfigurationError(
                f"capability {self.capability_id!r}: source and target are "
                f"both {self.source!r}"
            )
        if not 0.0 < self.fidelity <= 1.0:
            raise ConfigurationError("capability fidelity must be in (0, 1]")
        if self.cost <= 0.0:
            raise ConfigurationError("capability cost must be > 0")
        if self.kind not in _KINDS:
            raise ConfigurationError(f"unknown capability kind {self.kind!r}")

    def offer_properties(self) -> dict[str, Any]:
        """The metadata half of the capability, as trader offer properties."""
        return {
            "capability": self.capability_id,
            "source": self.source,
            "target": self.target,
            "fidelity": self.fidelity,
            "cost": self.cost,
            "kind": self.kind,
        }


def capabilities_from_converter(
    converter: FormatConverter, cost: float = 1.0, exporter: str = ""
) -> tuple[ConversionCapability, ConversionCapability]:
    """Split a hub :class:`FormatConverter` into its two graph edges.

    Both halves carry the converter's declared ``fidelity``: a mediated
    A -> common -> B plan uses A's *to-common* edge and B's
    *from-common* edge, so the plan fidelity is ``fid_A * fid_B`` —
    exactly what :meth:`InterchangeService.translate` reports for the
    same pair.  The to-common half validates the common shape on every
    call (the mediator has no one-shot plan validation to lean on).
    """
    name = converter.format_name

    def to_common(document: dict[str, Any]) -> dict[str, Any]:
        common = converter.to_common(document)
        if not is_common(common):
            raise InteropError(
                f"converter {name!r} produced a malformed common document "
                f"(missing keys from {COMMON_KEYS})"
            )
        return common

    def from_common(document: dict[str, Any]) -> dict[str, Any]:
        if not is_common(document):
            raise InteropError(
                f"converter {name!r} given a non-common document to "
                f"convert from the common form (missing keys from {COMMON_KEYS})"
            )
        return converter.from_common(document)

    return (
        ConversionCapability(
            capability_id=f"{KIND_TO_COMMON}:{name}",
            source=name,
            target=COMMON_FORMAT,
            convert=to_common,
            fidelity=converter.fidelity,
            cost=cost,
            kind=KIND_TO_COMMON,
            exporter=exporter,
        ),
        ConversionCapability(
            capability_id=f"{KIND_FROM_COMMON}:{name}",
            source=COMMON_FORMAT,
            target=name,
            convert=from_common,
            fidelity=converter.fidelity,
            cost=cost,
            kind=KIND_FROM_COMMON,
            exporter=exporter,
        ),
    )


def direct_capability(
    source: str,
    target: str,
    convert: Convert,
    fidelity: float = 1.0,
    cost: float = 1.0,
    exporter: str = "",
    kind: str = KIND_DIRECT,
) -> ConversionCapability:
    """A direct (or partial) converter that bypasses the common form."""
    return ConversionCapability(
        capability_id=f"{kind}:{source}->{target}",
        source=source,
        target=target,
        convert=convert,
        fidelity=fidelity,
        cost=cost,
        kind=kind,
        exporter=exporter,
    )
