"""Engineered degradation: breakers, health probes, chaos schedules.

The ROADMAP's production-scale goal needs the failure path to be a
designed artifact, not an accident of stacked timeouts.  This package
holds the pieces the federation and directory layers wrap around their
cross-domain channels:

* :class:`~repro.resilience.breaker.CircuitBreaker` — closed/open/half-
  open failure gate on simulated time; a dead boundary fails fast
  instead of burning its full retry budget per call,
* :class:`~repro.resilience.health.HealthMonitor` — keyed periodic
  probes whose verdicts feed the breakers,
* :class:`~repro.resilience.chaos.ChaosRunner` — seeded, composable
  fault suites (link flaps, rolling partitions, crash storms) that two
  benchmark runs can replay identically.
"""

from repro.resilience.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
)
from repro.resilience.chaos import ChaosRunner
from repro.resilience.health import HealthMonitor, HealthTrend

__all__ = [
    "ChaosRunner",
    "CircuitBreaker",
    "HealthMonitor",
    "HealthTrend",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
]
