"""Health monitoring: periodic probes that drive circuit breakers.

A :class:`HealthMonitor` runs one :class:`~repro.sim.engine.PeriodicTask`
per watched key.  Each firing invokes the key's *probe* — any async
check, typically an RPC ping to a peer gateway node — and the probe
reports back through a single ``report(healthy)`` callback.  The report
updates the key's health flag and, when a :class:`CircuitBreaker` is
attached, feeds it: a successful probe recloses the breaker (the link
demonstrably works), a failed probe counts towards tripping it.

Health is therefore *eventual* knowledge: between probes the monitor
answers with the last observation, and a key never probed reports the
``default`` verdict (healthy unless configured otherwise).  Probe
outcomes are exported as ``resilience.health.*`` counters, and per-key
:class:`~repro.obs.windows.WindowedTrend` rings back
:meth:`HealthMonitor.trend` — the windowed success ratio plus
probe-latency slope the adaptive control plane reads to act on
*degrading* links before their breaker trips.  The rings hold moment
sums per slot, so trend memory is O(slots) per key, independent of how
long the soak runs or how fast probes fire.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.events import KIND_HEALTH_TRANSITION, NULL_EVENTS, EventLog
from repro.obs.metrics import NULL_METRICS, GaugeFamily, MetricsRegistry
from repro.obs.windows import WindowedTrend
from repro.resilience.breaker import CircuitBreaker
from repro.sim.engine import Engine, PeriodicTask
from repro.util.errors import ConfigurationError

#: a probe receives ``report`` and must eventually call it with True/False
Probe = Callable[[Callable[[bool], None]], None]

#: ring slots per trend window — the whole per-key trend footprint
TREND_SLOTS = 32


@dataclass(frozen=True)
class HealthTrend:
    """A bounded window over one key's probe history.

    ``success_ratio`` is the fraction of in-window probes that reported
    healthy (1.0 for an empty window — absence of evidence is not
    degradation).  ``latency_slope`` is the least-squares slope of probe
    round-trip latency over sim-time (s/s): positive means the link is
    getting slower.  ``samples`` is the number of observations the
    window held.
    """

    success_ratio: float
    latency_slope: float
    samples: int


@dataclass
class _Watch:
    probe: Probe
    breaker: CircuitBreaker | None
    task: PeriodicTask
    healthy: bool
    probes: int = 0
    failures: int = 0
    #: window_s → moments ring; created lazily per requested window so a
    #: caller's first trend() call arms the ring its next reads consume
    trends: dict = field(default_factory=dict)
    #: issue times of probes whose report is still outstanding (FIFO)
    pending: deque = field(default_factory=deque)


class HealthMonitor:
    """Keyed periodic health probes, optionally wired to breakers."""

    def __init__(
        self,
        engine: Engine,
        period_s: float = 5.0,
        default_healthy: bool = True,
        metrics: MetricsRegistry | None = None,
        events: EventLog | None = None,
    ) -> None:
        if period_s <= 0:
            raise ConfigurationError("health probe period_s must be > 0")
        self._engine = engine
        self._period_s = period_s
        self._default = default_healthy
        self._obs: MetricsRegistry = metrics if metrics is not None else NULL_METRICS
        self._events: EventLog = events if events is not None else NULL_EVENTS
        self._watches: dict[str, _Watch] = {}
        self._trend_ratio: GaugeFamily = self._obs.gauge(
            "resilience.health.trend.success_ratio", labels=("key",)
        )
        self._trend_slope: GaugeFamily = self._obs.gauge(
            "resilience.health.trend.latency_slope", labels=("key",)
        )

    def watch(
        self,
        key: str,
        probe: Probe,
        breaker: CircuitBreaker | None = None,
        period_s: float | None = None,
    ) -> None:
        """Probe *key* every period; feed results into *breaker* if given."""
        if key in self._watches:
            raise ConfigurationError(f"already watching {key!r}")
        task = PeriodicTask(
            self._engine,
            period_s if period_s is not None else self._period_s,
            lambda: self._probe(key),
            label=f"health:{key}",
        )
        self._watches[key] = _Watch(
            probe=probe, breaker=breaker, task=task, healthy=self._default
        )
        task.start()

    def stop(self, key: str | None = None) -> None:
        """Stop probing *key*, or every watch when ``None``."""
        keys = [key] if key is not None else list(self._watches)
        for name in keys:
            watch = self._watches.pop(name, None)
            if watch is not None:
                watch.task.stop()

    def _probe(self, key: str) -> None:
        watch = self._watches.get(key)
        if watch is None:
            return
        watch.probes += 1
        watch.pending.append(self._engine.now)
        if self._obs.enabled:
            self._obs.inc("resilience.health.probes")
        watch.probe(lambda healthy: self._report(key, healthy))

    def _report(self, key: str, healthy: bool) -> None:
        watch = self._watches.get(key)
        if watch is None:
            return
        now = self._engine.now
        issued = watch.pending.popleft() if watch.pending else now
        for trend in watch.trends.values():
            trend.add(now, healthy, now - issued)
        if healthy != watch.healthy and self._events.enabled:
            # Edge-triggered: one event per flip, not one per probe.
            self._events.record(
                self._engine.now, KIND_HEALTH_TRANSITION, key=key, healthy=healthy
            )
        watch.healthy = healthy
        if healthy:
            if watch.breaker is not None:
                watch.breaker.record_success()
            return
        watch.failures += 1
        if self._obs.enabled:
            self._obs.inc("resilience.health.failures")
        if watch.breaker is not None:
            watch.breaker.record_failure()

    def healthy(self, key: str) -> bool:
        """Last observed health for *key* (``default`` when never probed)."""
        watch = self._watches.get(key)
        return self._default if watch is None else watch.healthy

    def trend(self, key: str, window_s: float = 10.0) -> HealthTrend:
        """Success ratio and latency slope for *key* over the last window.

        Reads the key's :class:`~repro.obs.windows.WindowedTrend` ring
        for *window_s* (created on first request; it fills as reports
        arrive), so the view is exactly as fresh as the probe cadence at
        O(slots) memory.  Also exports the window through the labelled
        ``resilience.health.trend.*`` gauge families — the signal
        surface the adaptive control plane polls.
        """
        if window_s <= 0:
            raise ConfigurationError("trend window_s must be > 0")
        watch = self._watches.get(key)
        if watch is None:
            trend = HealthTrend(success_ratio=1.0, latency_slope=0.0, samples=0)
        else:
            ring = watch.trends.get(window_s)
            if ring is None:
                ring = watch.trends[window_s] = WindowedTrend(window_s, TREND_SLOTS)
            ratio, slope, samples = ring.read(self._engine.now)
            trend = HealthTrend(
                success_ratio=ratio, latency_slope=slope, samples=samples
            )
        if self._obs.enabled:
            self._trend_ratio.labels(key=key).set(trend.success_ratio)
            self._trend_slope.labels(key=key).set(trend.latency_slope)
        return trend

    def stats(self) -> dict[str, dict[str, Any]]:
        """Per-key probe/failure counts and current verdicts."""
        return {
            key: {
                "healthy": watch.healthy,
                "probes": watch.probes,
                "failures": watch.failures,
            }
            for key, watch in sorted(self._watches.items())
        }
