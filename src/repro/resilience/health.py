"""Health monitoring: periodic probes that drive circuit breakers.

A :class:`HealthMonitor` runs one :class:`~repro.sim.engine.PeriodicTask`
per watched key.  Each firing invokes the key's *probe* — any async
check, typically an RPC ping to a peer gateway node — and the probe
reports back through a single ``report(healthy)`` callback.  The report
updates the key's health flag and, when a :class:`CircuitBreaker` is
attached, feeds it: a successful probe recloses the breaker (the link
demonstrably works), a failed probe counts towards tripping it.

Health is therefore *eventual* knowledge: between probes the monitor
answers with the last observation, and a key never probed reports the
``default`` verdict (healthy unless configured otherwise).  Probe
outcomes are exported as ``resilience.health.*`` counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.obs.events import KIND_HEALTH_TRANSITION, NULL_EVENTS, EventLog
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.resilience.breaker import CircuitBreaker
from repro.sim.engine import Engine, PeriodicTask
from repro.util.errors import ConfigurationError

#: a probe receives ``report`` and must eventually call it with True/False
Probe = Callable[[Callable[[bool], None]], None]


@dataclass
class _Watch:
    probe: Probe
    breaker: CircuitBreaker | None
    task: PeriodicTask
    healthy: bool
    probes: int = 0
    failures: int = 0


class HealthMonitor:
    """Keyed periodic health probes, optionally wired to breakers."""

    def __init__(
        self,
        engine: Engine,
        period_s: float = 5.0,
        default_healthy: bool = True,
        metrics: MetricsRegistry | None = None,
        events: EventLog | None = None,
    ) -> None:
        if period_s <= 0:
            raise ConfigurationError("health probe period_s must be > 0")
        self._engine = engine
        self._period_s = period_s
        self._default = default_healthy
        self._obs: MetricsRegistry = metrics if metrics is not None else NULL_METRICS
        self._events: EventLog = events if events is not None else NULL_EVENTS
        self._watches: dict[str, _Watch] = {}

    def watch(
        self,
        key: str,
        probe: Probe,
        breaker: CircuitBreaker | None = None,
        period_s: float | None = None,
    ) -> None:
        """Probe *key* every period; feed results into *breaker* if given."""
        if key in self._watches:
            raise ConfigurationError(f"already watching {key!r}")
        task = PeriodicTask(
            self._engine,
            period_s if period_s is not None else self._period_s,
            lambda: self._probe(key),
            label=f"health:{key}",
        )
        self._watches[key] = _Watch(
            probe=probe, breaker=breaker, task=task, healthy=self._default
        )
        task.start()

    def stop(self, key: str | None = None) -> None:
        """Stop probing *key*, or every watch when ``None``."""
        keys = [key] if key is not None else list(self._watches)
        for name in keys:
            watch = self._watches.pop(name, None)
            if watch is not None:
                watch.task.stop()

    def _probe(self, key: str) -> None:
        watch = self._watches.get(key)
        if watch is None:
            return
        watch.probes += 1
        if self._obs.enabled:
            self._obs.inc("resilience.health.probes")
        watch.probe(lambda healthy: self._report(key, healthy))

    def _report(self, key: str, healthy: bool) -> None:
        watch = self._watches.get(key)
        if watch is None:
            return
        if healthy != watch.healthy and self._events.enabled:
            # Edge-triggered: one event per flip, not one per probe.
            self._events.record(
                self._engine.now, KIND_HEALTH_TRANSITION, key=key, healthy=healthy
            )
        watch.healthy = healthy
        if healthy:
            if watch.breaker is not None:
                watch.breaker.record_success()
            return
        watch.failures += 1
        if self._obs.enabled:
            self._obs.inc("resilience.health.failures")
        if watch.breaker is not None:
            watch.breaker.record_failure()

    def healthy(self, key: str) -> bool:
        """Last observed health for *key* (``default`` when never probed)."""
        watch = self._watches.get(key)
        return self._default if watch is None else watch.healthy

    def stats(self) -> dict[str, dict[str, Any]]:
        """Per-key probe/failure counts and current verdicts."""
        return {
            key: {
                "healthy": watch.healthy,
                "probes": watch.probes,
                "failures": watch.failures,
            }
            for key, watch in sorted(self._watches.items())
        }
