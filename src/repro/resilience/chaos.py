"""Chaos schedules: composable, seeded fault suites for experiments.

:class:`ChaosRunner` turns the primitives in :mod:`repro.sim.failures`
and :mod:`repro.sim.network` into named, reproducible fault scenarios —
the kind of schedule experiment E13 replays twice (resilience on/off) so
the two runs see *exactly* the same faults:

* :meth:`flap_link` — a link repeatedly goes dark (loss forced to 1.0)
  and comes back, modelling an unstable inter-domain line,
* :meth:`degrade_link` — a *brownout*: the link stays up but drops a
  fraction of packets, the regime a consecutive-failure circuit breaker
  cannot see (successes keep resetting its streak) and the one the
  control plane's health-trend drain is built for,
* :meth:`rolling_partitions` — partition windows that sweep through a
  sequence of cut patterns, one after another,
* :meth:`crash_storm` — staggered crash/recover cycles across a set of
  nodes, with seeded jitter on the stagger.

All timing randomness comes from a forked RNG stream owned by the
runner, so a runner built with the same name over the same-seeded world
schedules the same chaos.  Every scheduled fault is recorded in
:attr:`events` for reporting.
"""

from __future__ import annotations

from typing import Any

from repro.sim.network import LinkSpec
from repro.sim.world import World
from repro.util.errors import ConfigurationError


class ChaosRunner:
    """Schedules reproducible fault suites on a :class:`World`."""

    def __init__(self, world: World, name: str = "chaos") -> None:
        self._world = world
        self._engine = world.engine
        self._rng = world.rng.fork(f"chaos:{name}")
        self.name = name
        #: every scheduled fault, as ``{"kind", "at", ...}`` records
        self.events: list[dict[str, Any]] = []

    def _record(self, kind: str, at: float, **detail: Any) -> None:
        self.events.append({"kind": kind, "at": at, **detail})

    def flap_link(
        self,
        node_a: str,
        node_b: str,
        start: float,
        down_s: float,
        up_s: float,
        flaps: int,
    ) -> None:
        """Kill the a<->b link *flaps* times: down for *down_s*, up for *up_s*.

        "Down" forces the link's loss to 1.0 (every packet silently
        dropped, like a dead line); "up" restores the spec the link had
        when the flap was scheduled.
        """
        if flaps < 1:
            raise ConfigurationError("flap_link needs flaps >= 1")
        if down_s <= 0 or up_s <= 0:
            raise ConfigurationError("flap_link needs down_s and up_s > 0")
        network = self._world.network
        healthy = network.link_between(node_a, node_b)
        dead = LinkSpec(
            latency_s=healthy.latency_s,
            bandwidth_bps=healthy.bandwidth_bps,
            loss=1.0,
            jitter_s=healthy.jitter_s,
        )
        at = start
        for _ in range(flaps):
            self._engine.schedule_at(
                at,
                lambda: network.set_link(node_a, node_b, dead),
                label=f"chaos:flap-down:{node_a}<->{node_b}",
            )
            self._engine.schedule_at(
                at + down_s,
                lambda: network.set_link(node_a, node_b, healthy),
                label=f"chaos:flap-up:{node_a}<->{node_b}",
            )
            self._record(
                "link_down", at, link=f"{node_a}<->{node_b}", until=at + down_s
            )
            at += down_s + up_s

    def degrade_link(
        self,
        node_a: str,
        node_b: str,
        start: float,
        degraded_s: float,
        loss: float,
    ) -> None:
        """Brown out the a<->b link: drop a *loss* fraction of packets
        for *degraded_s* seconds, then restore the healthy spec.

        Unlike :meth:`flap_link` the link keeps carrying traffic, so
        enough attempts still succeed to keep a consecutive-failure
        circuit breaker closed — degradation only a windowed signal
        (health trend, retry surge) can act on.
        """
        if not 0.0 < loss < 1.0:
            raise ConfigurationError(
                "degrade_link needs 0 < loss < 1 (use flap_link for an outage)"
            )
        if degraded_s <= 0:
            raise ConfigurationError("degrade_link needs degraded_s > 0")
        network = self._world.network
        healthy = network.link_between(node_a, node_b)
        lossy = LinkSpec(
            latency_s=healthy.latency_s,
            bandwidth_bps=healthy.bandwidth_bps,
            loss=loss,
            jitter_s=healthy.jitter_s,
        )
        self._engine.schedule_at(
            start,
            lambda: network.set_link(node_a, node_b, lossy),
            label=f"chaos:degrade:{node_a}<->{node_b}",
        )
        self._engine.schedule_at(
            start + degraded_s,
            lambda: network.set_link(node_a, node_b, healthy),
            label=f"chaos:degrade-heal:{node_a}<->{node_b}",
        )
        self._record(
            "link_degraded",
            start,
            link=f"{node_a}<->{node_b}",
            loss=loss,
            until=start + degraded_s,
        )

    def rolling_partitions(
        self,
        patterns: list[list[list[str]]],
        start: float,
        window_s: float,
        gap_s: float = 0.0,
    ) -> None:
        """Apply each partition *pattern* in turn for *window_s* seconds.

        Windows are disjoint (*gap_s* of healthy network between them),
        scheduled through the world's :class:`FailureInjector` so each
        window heals itself without clobbering its successors.
        """
        if window_s <= 0:
            raise ConfigurationError("rolling_partitions needs window_s > 0")
        at = start
        for groups in patterns:
            self._world.failures.partition_at(groups, at=at, duration=window_s)
            self._record("partition", at, groups=groups, until=at + window_s)
            at += window_s + gap_s

    def crash_storm(
        self,
        nodes: list[str],
        start: float,
        downtime_s: float,
        stagger_s: float = 0.0,
        jitter_s: float = 0.0,
    ) -> None:
        """Crash each node in *nodes*, *stagger_s* apart, for *downtime_s*.

        *jitter_s* adds a seeded uniform offset to each crash time, so
        storms with the same seed land identically and storms with a
        different seed do not synchronise.
        """
        if downtime_s <= 0:
            raise ConfigurationError("crash_storm needs downtime_s > 0")
        at = start
        for node in nodes:
            crash_at = at + (self._rng.uniform(0.0, jitter_s) if jitter_s > 0 else 0.0)
            outage = self._world.failures.crash_at(
                node, at=crash_at, duration=downtime_s
            )
            self._record("crash", outage.start, node=node, until=outage.end)
            at += stagger_s

    def describe(self) -> dict[str, Any]:
        """The scheduled suite, ordered by fault time, for reporting."""
        return {
            "name": self.name,
            "events": sorted(self.events, key=lambda e: (e["at"], e["kind"])),
        }
