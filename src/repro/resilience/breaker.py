"""Circuit breakers: fail fast across a boundary that is known to be dead.

RM-ODP's engineering language puts explicit *channel objects* on every
interface binding that crosses a node boundary, exactly so that failure
handling can live in the channel instead of in every client.  The
federation's gateways and directory shadowing agreements are such
channels; a :class:`CircuitBreaker` is the failure-transparency policy
wrapped around them.

The breaker is a three-state machine driven entirely by the simulated
clock:

* **closed** — calls flow; consecutive failures are counted and
  ``failure_threshold`` of them open the breaker,
* **open** — calls are refused immediately (the caller fails fast
  instead of burning its full retry x backoff budget) until
  ``cooldown_s`` simulated seconds have passed,
* **half-open** — after the cooldown one trial call is let through;
  success recloses the breaker, failure reopens it for another
  cooldown.

``record_success`` recloses the breaker from *any* state: an external
health probe that reaches the other side is just as good evidence as a
trial call.  State transitions are exported as ``resilience.breaker.*``
counters when a metrics registry is attached.
"""

from __future__ import annotations

from typing import Any, Protocol

from repro.obs.events import (
    KIND_BREAKER_CLOSE,
    KIND_BREAKER_HALF_OPEN,
    KIND_BREAKER_OPEN,
    NULL_EVENTS,
    EventLog,
)
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.util.errors import ConfigurationError

#: breaker states
STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"


class _Clock(Protocol):
    @property
    def now(self) -> float: ...  # pragma: no cover - typing only


class CircuitBreaker:
    """Trips after consecutive failures; recloses after a quiet cooldown."""

    def __init__(
        self,
        clock: _Clock,
        name: str = "breaker",
        failure_threshold: int = 4,
        cooldown_s: float = 30.0,
        metrics: MetricsRegistry | None = None,
        events: EventLog | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError("breaker needs failure_threshold >= 1")
        if cooldown_s <= 0:
            raise ConfigurationError("breaker cooldown_s must be > 0")
        self._clock = clock
        self.name = name
        self._threshold = failure_threshold
        self._cooldown_s = cooldown_s
        self._obs: MetricsRegistry = metrics if metrics is not None else NULL_METRICS
        self._events: EventLog = events if events is not None else NULL_EVENTS
        self._state = STATE_CLOSED
        self._streak = 0
        self._opened_at = 0.0
        #: a half-open trial call is in flight; further calls are refused
        self._trial_pending = False
        self.opened = 0
        self.reclosed = 0
        self.fast_failures = 0

    # -- state -------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, cooldown expiry included (read-only, no side
        effects): an open breaker whose cooldown has elapsed reads as
        half-open."""
        if self._state == STATE_OPEN and self._cooldown_elapsed():
            return STATE_HALF_OPEN
        return self._state

    @property
    def failure_streak(self) -> int:
        """Consecutive failures since the last success."""
        return self._streak

    def _cooldown_elapsed(self) -> bool:
        return self._clock.now >= self._opened_at + self._cooldown_s

    def ready(self) -> bool:
        """Whether :meth:`allow` would currently admit a call.

        Side-effect free — routing decisions (pick another path?) use
        this; the path actually taken calls :meth:`allow`.
        """
        state = self.state
        if state == STATE_CLOSED:
            return True
        if state == STATE_HALF_OPEN:
            return not self._trial_pending
        return False

    # -- the caller-facing gate --------------------------------------------
    def allow(self) -> bool:
        """Admit or refuse one call.

        Closed admits; open refuses (counted as a fast failure);
        half-open admits exactly one trial at a time, whose
        ``record_success``/``record_failure`` decides the next state.
        """
        state = self.state
        if state == STATE_CLOSED:
            return True
        if state == STATE_HALF_OPEN and not self._trial_pending:
            self._state = STATE_HALF_OPEN
            self._trial_pending = True
            if self._obs.enabled:
                self._obs.inc("resilience.breaker.trials")
            if self._events.enabled:
                self._events.record(
                    self._clock.now, KIND_BREAKER_HALF_OPEN, name=self.name
                )
            return True
        self.fast_failures += 1
        if self._obs.enabled:
            self._obs.inc("resilience.breaker.fast_failures")
        return False

    def record_success(self) -> None:
        """Note a successful call or probe: reclose from any state."""
        self._streak = 0
        self._trial_pending = False
        if self._state != STATE_CLOSED:
            self._state = STATE_CLOSED
            self.reclosed += 1
            if self._obs.enabled:
                self._obs.inc("resilience.breaker.reclosed")
            if self._events.enabled:
                self._events.record(
                    self._clock.now, KIND_BREAKER_CLOSE, name=self.name
                )

    def record_failure(self) -> None:
        """Note a failed call or probe; may trip the breaker."""
        self._streak += 1
        if self._state == STATE_HALF_OPEN or (
            self._state == STATE_OPEN and self._cooldown_elapsed()
        ):
            # the trial (or a call racing it) failed: restart the cooldown
            self._trial_pending = False
            self._state = STATE_OPEN
            self._opened_at = self._clock.now
            if self._obs.enabled:
                self._obs.inc("resilience.breaker.reopened")
            if self._events.enabled:
                self._events.record(
                    self._clock.now, KIND_BREAKER_OPEN, name=self.name, reopened=True
                )
            return
        if self._state == STATE_CLOSED and self._streak >= self._threshold:
            self._trip()

    def _trip(self) -> None:
        self._state = STATE_OPEN
        self._opened_at = self._clock.now
        self.opened += 1
        if self._obs.enabled:
            self._obs.inc("resilience.breaker.opened")
        if self._events.enabled:
            self._events.record(
                self._clock.now,
                KIND_BREAKER_OPEN,
                name=self.name,
                streak=self._streak,
            )

    # -- operator controls -------------------------------------------------
    def force_open(self) -> None:
        """Trip the breaker now (operator override / tests)."""
        self._trial_pending = False
        if self._state != STATE_OPEN:
            self._trip()
        else:
            self._opened_at = self._clock.now

    def reset(self) -> None:
        """Reclose and forget the failure streak (operator override)."""
        self.record_success()

    def stats(self) -> dict[str, Any]:
        """Counters and current state, for ``describe()`` snapshots."""
        return {
            "state": self.state,
            "failure_streak": self._streak,
            "opened": self.opened,
            "reclosed": self.reclosed,
            "fast_failures": self.fast_failures,
        }
