"""Quality-of-service annotations and monitoring for bindings.

The paper's requirements (section 4) span real-time and asynchronous
communication; QoS is how the ODP layer makes that difference explicit.
A :class:`QoSSpec` states what a binding needs; a :class:`QoSMonitor`
watches observed invocation latencies and reports violations, which the
communication model uses to decide when a synchronous channel must degrade
to asynchronous delivery (time transparency).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.trace import MetricsRegistry
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class QoSSpec:
    """Declared quality requirements of a binding.

    max_latency_s
        Upper bound an invocation round trip may take.
    min_reliability
        Lower bound on the fraction of invocations that must succeed.
    ordered
        Whether delivery order must match send order.
    """

    max_latency_s: float = 1.0
    min_reliability: float = 0.99
    ordered: bool = True

    def __post_init__(self) -> None:
        if self.max_latency_s <= 0:
            raise ConfigurationError("max_latency_s must be > 0")
        if not 0.0 <= self.min_reliability <= 1.0:
            raise ConfigurationError("min_reliability must be in [0, 1]")

    def suits_synchronous_use(self) -> bool:
        """Heuristic: sub-second latency bounds indicate real-time use."""
        return self.max_latency_s <= 1.0


#: QoS preset for real-time (synchronous, WYSIWIS) cooperation
REALTIME_QOS = QoSSpec(max_latency_s=0.25, min_reliability=0.95, ordered=True)

#: QoS preset for store-and-forward (asynchronous) cooperation
MESSAGING_QOS = QoSSpec(max_latency_s=3600.0, min_reliability=0.999, ordered=False)


class QoSMonitor:
    """Tracks one binding's observed behaviour against its spec."""

    def __init__(self, spec: QoSSpec, metrics: MetricsRegistry | None = None, name: str = "") -> None:
        self.spec = spec
        self.name = name
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._attempts = 0
        self._successes = 0
        self._latency_violations = 0

    @property
    def attempts(self) -> int:
        """Invocations observed so far."""
        return self._attempts

    @property
    def latency_violations(self) -> int:
        """Successful invocations that exceeded the latency bound."""
        return self._latency_violations

    def observe_success(self, latency_s: float) -> bool:
        """Record a completed invocation; return True when within spec."""
        self._attempts += 1
        self._successes += 1
        self._metrics.record(f"qos.{self.name}.latency", latency_s)
        if latency_s > self.spec.max_latency_s:
            self._latency_violations += 1
            self._metrics.increment(f"qos.{self.name}.latency_violations")
            return False
        return True

    def observe_failure(self) -> None:
        """Record a failed invocation."""
        self._attempts += 1
        self._metrics.increment(f"qos.{self.name}.failures")

    def reliability(self) -> float:
        """Observed success fraction (1.0 before any attempts)."""
        if self._attempts == 0:
            return 1.0
        return self._successes / self._attempts

    def in_conformance(self) -> bool:
        """True while both reliability and latency bounds are being met."""
        if self.reliability() < self.spec.min_reliability:
            return False
        return self._latency_violations == 0

    def violations(self) -> list[str]:
        """Human-readable list of current violations (empty when clean)."""
        found = []
        if self.reliability() < self.spec.min_reliability:
            found.append(
                f"reliability {self.reliability():.3f} < required {self.spec.min_reliability:.3f}"
            )
        if self._latency_violations:
            found.append(f"{self._latency_violations} invocations exceeded {self.spec.max_latency_s}s")
        return found
