"""Deployment reflection: derive viewpoint specs from a running system.

The ODP design trajectory (paper section 6.1, reference [19]) runs from
viewpoint specifications toward implementations.  Reflection runs the
other way: given live capsules and a trader, reconstruct the
computational and engineering viewpoints of what is actually deployed —
useful for conformance checks ("does the running system match its spec?")
and for documenting a grown deployment.
"""

from __future__ import annotations

from repro.odp.node_mgmt import Capsule
from repro.odp.trader import Trader
from repro.odp.viewpoints import OdpSystemSpec


def describe_deployment(
    name: str,
    capsules: list[Capsule],
    trader: Trader | None = None,
) -> OdpSystemSpec:
    """Build an :class:`OdpSystemSpec` reflecting the live deployment.

    The computational viewpoint lists every deployed object with its
    offered interfaces; the engineering viewpoint records placements; the
    technology viewpoint notes the substrate choices this library makes.
    The resulting spec is consistent by construction.
    """
    spec = OdpSystemSpec(name)
    for capsule in capsules:
        for object_id in capsule.object_ids():
            obj = capsule.local_object(object_id)
            interfaces = [sig.name for sig in obj.interfaces()]
            spec.computation.declare_object(object_id, interfaces)
            spec.engineering.place(capsule.node, object_id)
    if trader is not None:
        for offer in trader.offers():
            spec.technology.choose(
                f"service:{offer.service_type}:{offer.offer_id}",
                offer.ref.address,
            )
    spec.technology.choose("directory", "X.500-workalike (repro.directory)")
    spec.technology.choose("messaging", "X.400-workalike (repro.messaging)")
    spec.technology.choose("transport", "simulated RPC (repro.sim.transport)")
    return spec


def conformance_errors(declared: OdpSystemSpec, capsules: list[Capsule]) -> list[str]:
    """Differences between a declared spec and the live deployment.

    Reports objects declared but not deployed, deployed but not declared,
    and placement mismatches.  An empty list means the deployment
    conforms to its specification.
    """
    errors: list[str] = []
    live: dict[str, str] = {}
    for capsule in capsules:
        for object_id in capsule.object_ids():
            live[object_id] = capsule.node
    for object_id in declared.computation.objects:
        if object_id not in live:
            errors.append(f"declared object {object_id!r} is not deployed")
            continue
        declared_node = declared.engineering.node_of(object_id)
        if declared_node is not None and declared_node != live[object_id]:
            errors.append(
                f"object {object_id!r} declared on {declared_node!r} "
                f"but deployed on {live[object_id]!r}"
            )
    for object_id, node in sorted(live.items()):
        if object_id not in declared.computation.objects:
            errors.append(f"deployed object {object_id!r} (on {node!r}) is undeclared")
    return errors
