"""RM-ODP platform substrate: viewpoints, objects, bindings, trader.

Implements the Open Distributed Processing concepts the paper builds on
(section 6): the five viewpoints with consistency checks, computational
objects and interfaces, engineering capsules and channels, the trader with
pluggable trading policy, distribution transparencies as binder
interceptors, federated naming, and QoS monitoring.
"""

from repro.odp.binding import Binder, BindingFactory, Channel, Interceptor, Invocation, Stub
from repro.odp.naming import NamingContext, NamingDomain
from repro.odp.node_mgmt import ODP_PORT, Capsule
from repro.odp.objects import (
    ComputationalObject,
    InterfaceRef,
    InterfaceSignature,
    OperationSpec,
    signature,
)
from repro.odp.qos import MESSAGING_QOS, REALTIME_QOS, QoSMonitor, QoSSpec
from repro.odp.reflection import conformance_errors, describe_deployment
from repro.odp.trader import (
    Constraint,
    ImportContext,
    ServiceOffer,
    Trader,
    constraints_from,
)
from repro.odp.transparencies import (
    TRANSPARENCY_NAMES,
    AccessTransparency,
    FailureTransparency,
    LocationTransparency,
    MigrationTransparency,
    Relocator,
    ReplicationTransparency,
    TransparencySelection,
)
from repro.odp.viewpoints import (
    ComputationalSpec,
    DeonticModality,
    EngineeringSpec,
    EnterpriseSpec,
    InformationSpec,
    OdpSystemSpec,
    PolicyStatement,
    TechnologySpec,
)

__all__ = [
    "Binder",
    "BindingFactory",
    "Channel",
    "Interceptor",
    "Invocation",
    "Stub",
    "NamingContext",
    "NamingDomain",
    "ODP_PORT",
    "Capsule",
    "ComputationalObject",
    "InterfaceRef",
    "InterfaceSignature",
    "OperationSpec",
    "signature",
    "MESSAGING_QOS",
    "REALTIME_QOS",
    "QoSMonitor",
    "QoSSpec",
    "conformance_errors",
    "describe_deployment",
    "Constraint",
    "ImportContext",
    "ServiceOffer",
    "Trader",
    "constraints_from",
    "TRANSPARENCY_NAMES",
    "AccessTransparency",
    "FailureTransparency",
    "LocationTransparency",
    "MigrationTransparency",
    "Relocator",
    "ReplicationTransparency",
    "TransparencySelection",
    "ComputationalSpec",
    "DeonticModality",
    "EngineeringSpec",
    "EnterpriseSpec",
    "InformationSpec",
    "OdpSystemSpec",
    "PolicyStatement",
    "TechnologySpec",
]
