"""Naming contexts and federated naming domains.

ODP systems span administrative domains; interface references need names
that survive federation.  A :class:`NamingContext` is a hierarchical
name-to-reference map (``/``-separated paths); a :class:`NamingDomain`
owns one root context and can federate with other domains, resolving
names of the form ``other-domain:/path/in/other``.

The CSCW environment stores well-known service names here (and richer,
attribute-searchable data in the X.500-style directory).
"""

from __future__ import annotations

from typing import Iterator

from repro.odp.objects import InterfaceRef
from repro.util.errors import ConfigurationError, NameError_


class NamingContext:
    """A hierarchical mapping of path names to interface references."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._bindings: dict[str, InterfaceRef] = {}
        self._children: dict[str, "NamingContext"] = {}

    def bind(self, path: str, ref: InterfaceRef) -> None:
        """Bind *path* (e.g. ``services/mail/ua``) to a reference."""
        context, leaf = self._descend(path, create=True)
        if leaf in context._bindings:
            raise ConfigurationError(f"name {path!r} already bound")
        context._bindings[leaf] = ref

    def rebind(self, path: str, ref: InterfaceRef) -> None:
        """Bind *path*, replacing any existing binding."""
        context, leaf = self._descend(path, create=True)
        context._bindings[leaf] = ref

    def unbind(self, path: str) -> None:
        """Remove the binding at *path*."""
        context, leaf = self._descend(path, create=False)
        if leaf not in context._bindings:
            raise NameError_(f"name {path!r} is not bound")
        del context._bindings[leaf]

    def resolve(self, path: str) -> InterfaceRef:
        """Look up the reference bound at *path*."""
        context, leaf = self._descend(path, create=False)
        try:
            return context._bindings[leaf]
        except KeyError:
            raise NameError_(f"name {path!r} is not bound") from None

    def list_names(self, prefix: str = "") -> list[str]:
        """All bound paths under *prefix*, sorted."""
        return sorted(self._walk(prefix))

    def _walk(self, prefix: str) -> Iterator[str]:
        base = self
        if prefix:
            for part in prefix.split("/"):
                child = base._children.get(part)
                if child is None:
                    return
                base = child
        yield from base._iterate(prefix)

    def _iterate(self, at: str) -> Iterator[str]:
        for leaf in self._bindings:
            yield f"{at}/{leaf}" if at else leaf
        for name, child in self._children.items():
            yield from child._iterate(f"{at}/{name}" if at else name)

    def _descend(self, path: str, create: bool) -> tuple["NamingContext", str]:
        parts = [p for p in path.split("/") if p]
        if not parts:
            raise NameError_(f"invalid empty path {path!r}")
        context = self
        for part in parts[:-1]:
            child = context._children.get(part)
            if child is None:
                if not create:
                    raise NameError_(f"no context {part!r} while resolving {path!r}")
                child = NamingContext(part)
                context._children[part] = child
            context = child
        return context, parts[-1]


class NamingDomain:
    """One administrative domain's naming, with federation.

    Names are either local paths (``services/mail``) or federated
    (``gmd:/services/mail``), where the prefix before ``:/`` names a
    federated domain.
    """

    def __init__(self, name: str) -> None:
        if not name or ":" in name:
            raise ConfigurationError("domain name must be non-empty and contain no ':'")
        self.name = name
        self.root = NamingContext(name)
        self._federated: dict[str, "NamingDomain"] = {}

    def federate(self, other: "NamingDomain") -> None:
        """Make *other*'s names resolvable as ``other.name:/path``."""
        if other.name == self.name:
            raise ConfigurationError("cannot federate a domain with itself")
        if other.name in self._federated:
            raise ConfigurationError(f"already federated with {other.name!r}")
        self._federated[other.name] = other

    def federated_domains(self) -> list[str]:
        """Names of federated domains, sorted."""
        return sorted(self._federated)

    def resolve(self, name: str) -> InterfaceRef:
        """Resolve a local or federated name to a reference."""
        if ":/" in name:
            domain_name, _, path = name.partition(":/")
            domain = self._federated.get(domain_name)
            if domain is None:
                raise NameError_(f"unknown federated domain {domain_name!r}")
            return domain.root.resolve(path)
        return self.root.resolve(name)

    def bind(self, name: str, ref: InterfaceRef) -> None:
        """Bind a local name (federated names are bound by their owner)."""
        if ":/" in name:
            raise NameError_("cannot bind into a federated domain")
        self.root.bind(name, ref)

    def unbind(self, name: str) -> None:
        """Remove a local binding (federated names are unbound by their owner)."""
        if ":/" in name:
            raise NameError_("cannot unbind from a federated domain")
        self.root.unbind(name)
