"""Engineering viewpoint: capsules hosting computational objects.

A :class:`Capsule` is the engineering-viewpoint container (RM-ODP nucleus +
capsule collapsed into one class) that activates computational objects on a
simulated node, dispatches remote invocations to them, and supports
migrating an object to another capsule — the mechanism under migration
transparency (:mod:`repro.odp.transparencies`).
"""

from __future__ import annotations

from typing import Any

from repro.odp.objects import ComputationalObject, InterfaceRef
from repro.sim.network import Network
from repro.sim.transport import RequestReply
from repro.util.errors import BindingError, ConfigurationError

#: RPC port shared by all ODP capsules
ODP_PORT = "odp"


class Capsule:
    """Hosts computational objects on one node and serves invocations.

    The capsule exposes a single RPC operation, ``invoke``, whose body names
    the target object, interface, operation and arguments.  Objects are
    deployed with :meth:`deploy`, which returns the interface references
    clients bind to.
    """

    def __init__(self, network: Network, node: str) -> None:
        self._network = network
        self.node = node
        self._objects: dict[str, ComputationalObject] = {}
        self.rpc = RequestReply(network, node, port=ODP_PORT)
        self.rpc.serve("invoke", self._handle_invoke)
        self.dispatched = 0

    def deploy(self, obj: ComputationalObject) -> dict[str, InterfaceRef]:
        """Activate *obj* in this capsule; return refs per interface name."""
        if obj.object_id in self._objects:
            raise ConfigurationError(f"object {obj.object_id!r} already deployed on {self.node}")
        self._objects[obj.object_id] = obj
        return {
            sig.name: InterfaceRef(self.node, obj.object_id, sig.name)
            for sig in obj.interfaces()
        }

    def withdraw(self, object_id: str) -> ComputationalObject:
        """Deactivate an object and return it (e.g. to migrate it)."""
        try:
            return self._objects.pop(object_id)
        except KeyError:
            raise BindingError(f"object {object_id!r} not deployed on {self.node}") from None

    def hosts(self, object_id: str) -> bool:
        """True when the object is currently deployed here."""
        return object_id in self._objects

    def object_ids(self) -> list[str]:
        """Ids of all deployed objects, sorted."""
        return sorted(self._objects)

    def local_object(self, object_id: str) -> ComputationalObject:
        """Direct access to a deployed object (tests, co-located calls)."""
        try:
            return self._objects[object_id]
        except KeyError:
            raise BindingError(f"object {object_id!r} not deployed on {self.node}") from None

    def migrate_to(self, object_id: str, target: "Capsule") -> dict[str, InterfaceRef]:
        """Move an object to *target*; return its new interface refs."""
        obj = self.withdraw(object_id)
        return target.deploy(obj)

    def _handle_invoke(self, body: dict[str, Any]) -> Any:
        object_id = body["object_id"]
        obj = self._objects.get(object_id)
        if obj is None:
            raise BindingError(f"object {object_id!r} not found on node {self.node!r}")
        self.dispatched += 1
        return obj.invoke(body["interface"], body["operation"], body.get("arguments", {}))
