"""Bindings and channels between computational interfaces.

RM-ODP models an operational binding as a *channel* assembled from three
kinds of engineering objects:

* a **stub** that marshals invocations into wire documents,
* a **binder** that maintains the binding's integrity (validates the
  interface reference, re-resolves it when the target has moved),
* a **protocol object** that actually moves the documents (here: the
  request/reply transport of :mod:`repro.sim.transport`).

The explicit layering is not gratuitous: experiment E3 measures the cost of
this structure, and the transparency interceptors of
:mod:`repro.odp.transparencies` hook into the binder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Protocol

from repro.odp.node_mgmt import ODP_PORT, Capsule
from repro.odp.objects import InterfaceRef
from repro.odp.qos import QoSMonitor
from repro.sim.network import Network
from repro.sim.transport import RequestReply
from repro.sim.world import World
from repro.util.errors import BindingError
from repro.util.serialization import document_size


@dataclass
class Invocation:
    """One in-flight invocation travelling down the channel."""

    ref: InterfaceRef
    operation: str
    arguments: dict[str, Any]
    #: filled by interceptors/binder as the invocation progresses
    attempts: int = 0
    annotations: dict[str, Any] = field(default_factory=dict)


class Interceptor(Protocol):
    """Hook point the binder offers to transparency functions."""

    def before_invoke(self, invocation: Invocation) -> Invocation:
        """Inspect/rewrite the invocation before transmission."""
        ...  # pragma: no cover - protocol

    def on_failure(self, invocation: Invocation, retry: Callable[[Invocation], None]) -> bool:
        """Handle a failed invocation; return True when handled (retrying)."""
        ...  # pragma: no cover - protocol


class Stub:
    """Client-side stub: marshals an invocation into a wire document."""

    def marshal(self, invocation: Invocation) -> dict[str, Any]:
        """Build the wire document for the capsule's ``invoke`` operation."""
        return {
            "object_id": invocation.ref.object_id,
            "interface": invocation.ref.interface,
            "operation": invocation.operation,
            "arguments": invocation.arguments,
        }


class Binder:
    """Maintains binding integrity and runs the interceptor chain."""

    def __init__(self, interceptors: list[Interceptor] | None = None) -> None:
        self._interceptors = list(interceptors or [])

    def add_interceptor(self, interceptor: Interceptor) -> None:
        """Append an interceptor to the chain (runs after existing ones)."""
        self._interceptors.append(interceptor)

    def prepare(self, invocation: Invocation) -> Invocation:
        """Run all before-invoke hooks in order."""
        for interceptor in self._interceptors:
            invocation = interceptor.before_invoke(invocation)
        return invocation

    def handle_failure(self, invocation: Invocation, retry: Callable[[Invocation], None]) -> bool:
        """Offer the failure to each interceptor; True when one retries."""
        for interceptor in self._interceptors:
            if interceptor.on_failure(invocation, retry):
                return True
        return False


class Channel:
    """A client-side channel bound to one remote interface.

    Invocations flow stub -> binder -> protocol object.  Completion is
    signalled through callbacks because everything runs on simulated time;
    :meth:`call` offers a synchronous convenience for tests and examples by
    running the world until the reply arrives.
    """

    def __init__(
        self,
        network: Network,
        client_node: str,
        ref: InterfaceRef,
        binder: Binder | None = None,
        timeout_s: float = 5.0,
        qos_monitor: "QoSMonitor | None" = None,
    ) -> None:
        self._network = network
        self.client_node = client_node
        self.ref = ref
        self.stub = Stub()
        self.binder = binder if binder is not None else Binder()
        self._timeout_s = timeout_s
        self._rpc = _client_rpc(network, client_node)
        #: optional QoS observation of every invocation round trip
        self.qos_monitor = qos_monitor
        self.completed = 0
        self.failed = 0

    def invoke(
        self,
        operation: str,
        arguments: dict[str, Any] | None = None,
        on_reply: Callable[[Any], None] | None = None,
        on_error: Callable[[str], None] | None = None,
    ) -> None:
        """Invoke *operation* asynchronously.

        *on_reply* receives the result; *on_error* receives an error string
        after the binder's interceptors decline to handle the failure.
        """
        invocation = Invocation(ref=self.ref, operation=operation, arguments=dict(arguments or {}))
        self._transmit(invocation, on_reply, on_error)

    def _transmit(
        self,
        invocation: Invocation,
        on_reply: Callable[[Any], None] | None,
        on_error: Callable[[str], None] | None,
    ) -> None:
        invocation = self.binder.prepare(invocation)
        invocation.attempts += 1
        document = self.stub.marshal(invocation)
        sent_at = self._network.engine.now

        def deliver(reply: Any) -> None:
            if isinstance(reply, dict) and "error" in reply:
                self._fail(invocation, reply["error"], on_reply, on_error)
                return
            self.completed += 1
            if self.qos_monitor is not None:
                self.qos_monitor.observe_success(self._network.engine.now - sent_at)
            if on_reply is not None:
                on_reply(reply)

        def timed_out() -> None:
            self._fail(invocation, "timeout", on_reply, on_error)

        self._rpc.request(
            invocation.ref.node,
            "invoke",
            document,
            deliver,
            timeout_s=self._timeout_s,
            on_timeout=timed_out,
            size_bytes=document_size(document),
        )

    def _fail(
        self,
        invocation: Invocation,
        error: str,
        on_reply: Callable[[Any], None] | None,
        on_error: Callable[[str], None] | None,
    ) -> None:
        invocation.annotations["last_error"] = error
        retried = self.binder.handle_failure(
            invocation, lambda inv: self._transmit(inv, on_reply, on_error)
        )
        if retried:
            return
        self.failed += 1
        if self.qos_monitor is not None:
            self.qos_monitor.observe_failure()
        if on_error is not None:
            on_error(error)
        else:
            raise BindingError(f"invocation of {invocation.operation!r} on {invocation.ref.address} failed: {error}")

    def call(self, world: World, operation: str, arguments: dict[str, Any] | None = None) -> Any:
        """Synchronous convenience: invoke and run the world to completion.

        Returns the reply or raises :class:`BindingError` with the error.
        """
        outcome: dict[str, Any] = {}
        self.invoke(
            operation,
            arguments,
            on_reply=lambda r: outcome.__setitem__("reply", r),
            on_error=lambda e: outcome.__setitem__("error", e),
        )
        # Step (rather than drain) so periodic tasks elsewhere in the world
        # cannot keep the engine running forever.
        while "reply" not in outcome and "error" not in outcome:
            if not world.engine.step():
                break
        if "error" in outcome:
            raise BindingError(outcome["error"])
        if "reply" not in outcome:
            raise BindingError("invocation produced neither reply nor error")
        return outcome["reply"]


def _rpc_map(network: Network) -> dict[str, RequestReply]:
    """Per-network map of node -> shared RPC endpoint.

    Stored on the network instance so its lifetime matches the network
    (a module-level cache would leak endpoints across simulations).
    """
    existing = getattr(network, "_odp_client_rpcs", None)
    if existing is None:
        existing = {}
        network._odp_client_rpcs = existing  # type: ignore[attr-defined]
    return existing


def _client_rpc(network: Network, node: str) -> RequestReply:
    per_network = _rpc_map(network)
    rpc = per_network.get(node)
    if rpc is None:
        bound = network.node(node).bound_ports()
        if f"{ODP_PORT}.req" in bound:
            # A capsule already lives here; reuse its RPC endpoint.
            raise BindingError(
                f"node {node!r} already binds the ODP port; pass the capsule's rpc "
                "or use BindingFactory which handles sharing"
            )
        rpc = RequestReply(network, node, port=ODP_PORT)
        per_network[node] = rpc
    return rpc


class BindingFactory:
    """Creates channels, sharing one RPC endpoint per client node.

    When the client node also hosts a capsule, the capsule's endpoint is
    reused (a node cannot bind the ODP port twice).
    """

    def __init__(self, network: Network) -> None:
        self._network = network
        self._capsules: dict[str, Capsule] = {}

    def register_capsule(self, capsule: Capsule) -> None:
        """Make a capsule's RPC endpoint available for client channels."""
        self._capsules[capsule.node] = capsule
        _rpc_map(self._network)[capsule.node] = capsule.rpc

    def capsule(self, node: str) -> Capsule:
        """The capsule registered for *node*."""
        try:
            return self._capsules[node]
        except KeyError:
            raise BindingError(f"no capsule registered for node {node!r}") from None

    def bind(
        self,
        client_node: str,
        ref: InterfaceRef,
        interceptors: list[Interceptor] | None = None,
        timeout_s: float = 5.0,
        qos_monitor: QoSMonitor | None = None,
    ) -> Channel:
        """Create a channel from *client_node* to the referenced interface."""
        binder = Binder(interceptors)
        return Channel(
            self._network, client_node, ref,
            binder=binder, timeout_s=timeout_s, qos_monitor=qos_monitor,
        )
