"""Computational viewpoint: objects, interfaces and operations.

RM-ODP's computational viewpoint structures a system as objects that
interact only through typed interfaces.  An :class:`InterfaceSignature`
declares the operations an interface offers; a :class:`ComputationalObject`
implements one or more interfaces by binding Python callables to operation
names; an :class:`InterfaceRef` is a location-dependent handle that the
engineering layer (bindings, trader) passes around.

The paper (section 6.1) treats the computational viewpoint as ODP's
"central matter"; the CSCW environment is itself built from these objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.util.errors import BindingError, ConfigurationError

Operation = Callable[[dict[str, Any]], Any]


@dataclass(frozen=True)
class OperationSpec:
    """Declaration of one operation on an interface."""

    name: str
    description: str = ""
    #: names of expected argument keys; empty tuple = unchecked
    parameters: tuple[str, ...] = ()
    #: operations marked one-way get no reply (announcement semantics)
    one_way: bool = False

    def check_arguments(self, arguments: dict[str, Any]) -> None:
        """Validate an argument document against the declared parameters.

        Declared-parameter operations reject missing and unknown keys;
        operations declared without parameters accept anything (the
        common loosely-typed document style).
        """
        if not self.parameters:
            return
        declared = set(self.parameters)
        provided = set(arguments)
        missing = declared - provided
        if missing:
            raise BindingError(
                f"operation {self.name!r} missing arguments {sorted(missing)}"
            )
        unknown = provided - declared
        if unknown:
            raise BindingError(
                f"operation {self.name!r} got unknown arguments {sorted(unknown)}"
            )


@dataclass(frozen=True)
class InterfaceSignature:
    """The type of an interface: a named set of operations.

    Signatures support structural subtyping: ``a.subsumes(b)`` is True when
    an object offering ``a`` can serve clients expecting ``b``.
    """

    name: str
    operations: tuple[OperationSpec, ...] = ()

    def operation(self, name: str) -> OperationSpec:
        """Look up one operation spec by name."""
        for op in self.operations:
            if op.name == name:
                return op
        raise ConfigurationError(f"interface {self.name!r} has no operation {name!r}")

    def operation_names(self) -> list[str]:
        """All operation names, in declaration order."""
        return [op.name for op in self.operations]

    def subsumes(self, other: "InterfaceSignature") -> bool:
        """True when this signature offers every operation of *other*."""
        mine = {op.name for op in self.operations}
        return all(op.name in mine for op in other.operations)


def signature(name: str, *operations: str) -> InterfaceSignature:
    """Shorthand to declare a signature from bare operation names.

    >>> sig = signature("printer", "submit", "status")
    >>> sig.operation_names()
    ['submit', 'status']
    """
    return InterfaceSignature(name, tuple(OperationSpec(op) for op in operations))


@dataclass(frozen=True)
class InterfaceRef:
    """A resolvable reference to one interface instance somewhere.

    ``node`` names the engineering node (capsule) hosting the object;
    ``object_id``/``interface`` select the interface within the capsule.
    References are plain values — they can be traded, stored in the
    directory, or embedded in messages.
    """

    node: str
    object_id: str
    interface: str

    @property
    def address(self) -> str:
        """Stable dotted address used on the wire."""
        return f"{self.node}/{self.object_id}.{self.interface}"


class ComputationalObject:
    """An object offering operations through declared interfaces.

    Implementations register a handler per operation.  The object is
    deliberately passive: activation/deployment onto a node is the
    engineering layer's job (:mod:`repro.odp.node_mgmt`).
    """

    def __init__(self, object_id: str) -> None:
        if not object_id:
            raise ConfigurationError("object_id must be non-empty")
        self.object_id = object_id
        self._interfaces: dict[str, InterfaceSignature] = {}
        self._handlers: dict[tuple[str, str], Operation] = {}
        self.invocations = 0

    def offer(self, sig: InterfaceSignature, implementation: dict[str, Operation]) -> None:
        """Offer interface *sig*, implemented by the given handlers.

        Every operation in the signature must be implemented; extra
        handlers not named in the signature are rejected.
        """
        if sig.name in self._interfaces:
            raise ConfigurationError(f"interface {sig.name!r} already offered by {self.object_id}")
        declared = set(sig.operation_names())
        provided = set(implementation)
        missing = declared - provided
        if missing:
            raise ConfigurationError(f"missing handlers for {sorted(missing)} on {sig.name!r}")
        extra = provided - declared
        if extra:
            raise ConfigurationError(f"handlers {sorted(extra)} not declared on {sig.name!r}")
        self._interfaces[sig.name] = sig
        for op_name, handler in implementation.items():
            self._handlers[(sig.name, op_name)] = handler

    def interfaces(self) -> list[InterfaceSignature]:
        """All offered interface signatures."""
        return list(self._interfaces.values())

    def has_interface(self, name: str) -> bool:
        """True when an interface named *name* is offered."""
        return name in self._interfaces

    def interface(self, name: str) -> InterfaceSignature:
        """Look up an offered interface signature."""
        try:
            return self._interfaces[name]
        except KeyError:
            raise BindingError(f"{self.object_id} offers no interface {name!r}") from None

    def invoke(self, interface: str, operation: str, arguments: dict[str, Any]) -> Any:
        """Invoke *operation* on the named interface.

        Raises :class:`BindingError` for unknown interface/operation; any
        exception from the handler propagates (the engineering layer turns
        it into an error reply).
        """
        sig = self.interface(interface)
        spec = sig.operation(operation)  # validates the operation exists
        spec.check_arguments(arguments)
        handler = self._handlers[(interface, operation)]
        self.invocations += 1
        result = handler(arguments)
        # One-way operations have announcement semantics: any handler
        # return value is discarded rather than leaked to the caller.
        if spec.one_way:
            return None
        return result
