"""The five RM-ODP viewpoints and cross-viewpoint consistency checks.

RM-ODP describes a distributed system from five viewpoints — Enterprise,
Information, Computation, Engineering, Technology — each "a different set
of abstractions of the original system" (paper section 6.1).  This module
gives each viewpoint a small specification language and an
:class:`OdpSystemSpec` that bundles them and checks their mutual
consistency, realising the "ODP design trajectory" the paper cites [19]:
design starts from the viewpoint most appropriate to the application — for
CSCW, the enterprise or information viewpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.util.errors import ConfigurationError


class DeonticModality(Enum):
    """Kinds of enterprise-viewpoint policy statements."""

    OBLIGATION = "obligation"
    PERMISSION = "permission"
    PROHIBITION = "prohibition"


@dataclass(frozen=True)
class PolicyStatement:
    """One enterprise policy: a modality applied to a role and an action.

    Example: *permission* for role ``editor`` to perform ``modify`` on
    ``document``.
    """

    modality: DeonticModality
    role: str
    action: str
    target: str = "*"

    def applies_to(self, role: str, action: str, target: str) -> bool:
        """True when this statement governs the given role/action/target."""
        if self.role != role or self.action != action:
            return False
        return self.target in ("*", target)


@dataclass
class EnterpriseSpec:
    """Enterprise viewpoint: community, roles, and deontic policies."""

    community: str
    roles: list[str] = field(default_factory=list)
    policies: list[PolicyStatement] = field(default_factory=list)

    def add_role(self, role: str) -> None:
        """Declare a role in the community."""
        if role in self.roles:
            raise ConfigurationError(f"role {role!r} already declared")
        self.roles.append(role)

    def permit(self, role: str, action: str, target: str = "*") -> None:
        """Add a permission policy."""
        self._add(DeonticModality.PERMISSION, role, action, target)

    def oblige(self, role: str, action: str, target: str = "*") -> None:
        """Add an obligation policy."""
        self._add(DeonticModality.OBLIGATION, role, action, target)

    def prohibit(self, role: str, action: str, target: str = "*") -> None:
        """Add a prohibition policy."""
        self._add(DeonticModality.PROHIBITION, role, action, target)

    def _add(self, modality: DeonticModality, role: str, action: str, target: str) -> None:
        if role not in self.roles:
            raise ConfigurationError(f"unknown role {role!r} in community {self.community!r}")
        self.policies.append(PolicyStatement(modality, role, action, target))

    def allows(self, role: str, action: str, target: str = "*") -> bool:
        """Evaluate the policies: prohibitions dominate permissions."""
        relevant = [p for p in self.policies if p.applies_to(role, action, target)]
        if any(p.modality is DeonticModality.PROHIBITION for p in relevant):
            return False
        return any(
            p.modality in (DeonticModality.PERMISSION, DeonticModality.OBLIGATION)
            for p in relevant
        )

    def obligations_of(self, role: str) -> list[PolicyStatement]:
        """All obligations imposed on *role*."""
        return [
            p
            for p in self.policies
            if p.role == role and p.modality is DeonticModality.OBLIGATION
        ]


@dataclass(frozen=True)
class InformationInvariant:
    """An invariant the information viewpoint imposes on a schema."""

    name: str
    description: str = ""


@dataclass
class InformationSpec:
    """Information viewpoint: entity schemas and invariants."""

    schemas: dict[str, list[str]] = field(default_factory=dict)
    invariants: list[InformationInvariant] = field(default_factory=list)

    def define_schema(self, entity: str, attributes: list[str]) -> None:
        """Declare an entity type and its attribute names."""
        if entity in self.schemas:
            raise ConfigurationError(f"schema {entity!r} already defined")
        self.schemas[entity] = list(attributes)

    def add_invariant(self, name: str, description: str = "") -> None:
        """Record a named invariant (checked by application code/tests)."""
        self.invariants.append(InformationInvariant(name, description))

    def conforms(self, entity: str, instance: dict) -> bool:
        """True when *instance* has exactly the declared attributes."""
        expected = self.schemas.get(entity)
        if expected is None:
            return False
        return set(instance) == set(expected)


@dataclass
class ComputationalSpec:
    """Computational viewpoint: which objects offer which interfaces."""

    #: object id -> list of interface names it offers
    objects: dict[str, list[str]] = field(default_factory=dict)

    def declare_object(self, object_id: str, interfaces: list[str]) -> None:
        """Declare a computational object and its interfaces."""
        if object_id in self.objects:
            raise ConfigurationError(f"object {object_id!r} already declared")
        self.objects[object_id] = list(interfaces)


@dataclass
class EngineeringSpec:
    """Engineering viewpoint: nodes and the placement of objects on them."""

    #: node name -> list of object ids placed there
    placements: dict[str, list[str]] = field(default_factory=dict)

    def place(self, node: str, object_id: str) -> None:
        """Assign a computational object to an engineering node."""
        self.placements.setdefault(node, []).append(object_id)

    def node_of(self, object_id: str) -> str | None:
        """The node an object is placed on, or None."""
        for node, object_ids in self.placements.items():
            if object_id in object_ids:
                return node
        return None

    def placed_objects(self) -> set[str]:
        """All object ids that have a placement."""
        return {oid for oids in self.placements.values() for oid in oids}


@dataclass
class TechnologySpec:
    """Technology viewpoint: concrete technology choices per concern."""

    choices: dict[str, str] = field(default_factory=dict)

    def choose(self, concern: str, technology: str) -> None:
        """Record a technology choice, e.g. directory -> 'X.500'."""
        self.choices[concern] = technology


@dataclass
class OdpSystemSpec:
    """A full five-viewpoint specification with consistency checking."""

    name: str
    enterprise: EnterpriseSpec = field(default_factory=lambda: EnterpriseSpec("community"))
    information: InformationSpec = field(default_factory=InformationSpec)
    computation: ComputationalSpec = field(default_factory=ComputationalSpec)
    engineering: EngineeringSpec = field(default_factory=EngineeringSpec)
    technology: TechnologySpec = field(default_factory=TechnologySpec)

    def consistency_errors(self) -> list[str]:
        """Cross-viewpoint checks; an empty list means consistent.

        Checks performed:

        * every computational object has an engineering placement;
        * every placed object is declared computationally;
        * enterprise roles are non-empty when policies exist.
        """
        errors: list[str] = []
        declared = set(self.computation.objects)
        placed = self.engineering.placed_objects()
        for object_id in sorted(declared - placed):
            errors.append(f"object {object_id!r} has no engineering placement")
        for object_id in sorted(placed - declared):
            errors.append(f"placed object {object_id!r} is not declared computationally")
        if self.enterprise.policies and not self.enterprise.roles:
            errors.append("enterprise policies exist but no roles are declared")
        return errors

    def is_consistent(self) -> bool:
        """True when no cross-viewpoint inconsistencies exist."""
        return not self.consistency_errors()
