"""ODP distribution transparencies as binder interceptors.

The computational viewpoint's "aspects: visibility and transparency" are
central to the paper's section 6.1, which argues that transparency must be
*selective* and — for CSCW — *user-tailorable*.  Each transparency here is
an interceptor that plugs into a channel's binder
(:mod:`repro.odp.binding`), and :class:`TransparencySelection` is the
user-facing knob that assembles a chosen subset into an interceptor chain.

Provided transparencies:

* **access** — uniform marshalling of invocations (annotation only; the
  stub already speaks canonical documents).
* **location** — clients name a *service type*; the trader resolves it to
  an interface reference at invocation time.
* **migration** — a :class:`Relocator` tracks object movements; stale
  references are rewritten before transmission and re-resolved on failure.
* **replication** — invocations go to the first live member of a replica
  group, failing over on error.
* **failure** — bounded retry of failed invocations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.odp.binding import Interceptor, Invocation
from repro.odp.objects import InterfaceRef
from repro.odp.trader import ImportContext, Trader
from repro.util.errors import ConfigurationError, NoOfferError, TransparencyError

#: the transparencies a selection may name
TRANSPARENCY_NAMES = ("access", "location", "migration", "replication", "failure")


class AccessTransparency:
    """Marks invocations as uniformly marshalled.

    Marshalling itself happens in the stub; this interceptor records that
    access transparency is active so experiments can count its traversal
    cost, and validates the argument document is flat-serialisable.
    """

    def before_invoke(self, invocation: Invocation) -> Invocation:
        invocation.annotations["access_transparent"] = True
        return invocation

    def on_failure(self, invocation: Invocation, retry: Callable[[Invocation], None]) -> bool:
        return False


class Relocator:
    """Registry of object movements, shared by migration-aware channels."""

    def __init__(self) -> None:
        self._current: dict[str, InterfaceRef] = {}
        self.relocations = 0

    def record(self, ref: InterfaceRef) -> None:
        """Record the current location of an object's interface."""
        self._current[self._key(ref)] = ref

    def moved(self, old_ref: InterfaceRef, new_ref: InterfaceRef) -> None:
        """Record that an interface moved (called after capsule migration)."""
        if (old_ref.object_id, old_ref.interface) != (new_ref.object_id, new_ref.interface):
            raise ConfigurationError("moved() must keep object/interface identity")
        self._current[self._key(new_ref)] = new_ref
        self.relocations += 1

    def current(self, ref: InterfaceRef) -> InterfaceRef:
        """The up-to-date reference for the same object/interface."""
        return self._current.get(self._key(ref), ref)

    @staticmethod
    def _key(ref: InterfaceRef) -> tuple[str, str]:
        return (ref.object_id, ref.interface)


class MigrationTransparency:
    """Rewrites stale references using a shared :class:`Relocator`.

    Also retries once on failure after re-resolving, which covers the
    window where the object moved while an invocation was in flight.
    """

    def __init__(self, relocator: Relocator, max_relocation_retries: int = 2) -> None:
        self._relocator = relocator
        self._max_retries = max_relocation_retries

    def before_invoke(self, invocation: Invocation) -> Invocation:
        invocation.ref = self._relocator.current(invocation.ref)
        return invocation

    def on_failure(self, invocation: Invocation, retry: Callable[[Invocation], None]) -> bool:
        fresh = self._relocator.current(invocation.ref)
        retries = invocation.annotations.get("migration_retries", 0)
        if fresh != invocation.ref and retries < self._max_retries:
            invocation.annotations["migration_retries"] = retries + 1
            invocation.ref = fresh
            retry(invocation)
            return True
        return False


class LocationTransparency:
    """Resolves a service type to a concrete reference via the trader.

    The channel is constructed against a *placeholder* reference whose node
    is empty; this interceptor fills it in on every invocation, so clients
    never handle locations.  On failure the binding is re-resolved,
    excluding the failed offer.
    """

    def __init__(
        self,
        trader: Trader,
        service_type: str,
        context: ImportContext | None = None,
        preference: str = "first",
    ) -> None:
        self._trader = trader
        self._service_type = service_type
        self._context = context if context is not None else ImportContext()
        self._preference = preference
        self._excluded: set[str] = set()

    def placeholder_ref(self) -> InterfaceRef:
        """The unresolved reference a channel should be constructed with."""
        return InterfaceRef(node="", object_id="?", interface=self._service_type)

    def before_invoke(self, invocation: Invocation) -> Invocation:
        offers = self._trader.import_(
            self._service_type,
            context=self._context,
            preference=self._preference,
            max_offers=1_000_000,
        )
        usable = [o for o in offers if o.offer_id not in self._excluded]
        if not usable:
            raise TransparencyError(
                f"location transparency: no usable offer for {self._service_type!r}"
            )
        chosen = usable[0]
        invocation.ref = chosen.ref
        invocation.annotations["resolved_offer"] = chosen.offer_id
        return invocation

    def on_failure(self, invocation: Invocation, retry: Callable[[Invocation], None]) -> bool:
        failed_offer = invocation.annotations.get("resolved_offer")
        if failed_offer is None:
            return False
        self._excluded.add(failed_offer)
        try:
            self.before_invoke(invocation)
        except (TransparencyError, NoOfferError):
            return False
        retry(invocation)
        return True


class ReplicationTransparency:
    """Directs invocations at a replica group with failover."""

    def __init__(self, replicas: list[InterfaceRef]) -> None:
        if not replicas:
            raise ConfigurationError("replica group must be non-empty")
        self._replicas = list(replicas)
        self.failovers = 0

    def replicas(self) -> list[InterfaceRef]:
        """Current replica list, preferred-first."""
        return list(self._replicas)

    def before_invoke(self, invocation: Invocation) -> Invocation:
        # Use the sticky replica index so a failover retry does not snap
        # back to the (dead) preferred replica when re-prepared.
        index = invocation.annotations.setdefault("replica_index", 0)
        invocation.ref = self._replicas[index]
        return invocation

    def on_failure(self, invocation: Invocation, retry: Callable[[Invocation], None]) -> bool:
        index = invocation.annotations.get("replica_index", 0) + 1
        if index >= len(self._replicas):
            return False
        invocation.annotations["replica_index"] = index
        invocation.ref = self._replicas[index]
        self.failovers += 1
        retry(invocation)
        return True


class FailureTransparency:
    """Retries failed invocations up to a bound (masking transient faults)."""

    def __init__(self, max_retries: int = 3) -> None:
        if max_retries < 1:
            raise ConfigurationError("max_retries must be >= 1")
        self._max_retries = max_retries
        self.retries = 0

    def before_invoke(self, invocation: Invocation) -> Invocation:
        return invocation

    def on_failure(self, invocation: Invocation, retry: Callable[[Invocation], None]) -> bool:
        used = invocation.annotations.get("failure_retries", 0)
        if used >= self._max_retries:
            return False
        invocation.annotations["failure_retries"] = used + 1
        self.retries += 1
        retry(invocation)
        return True


@dataclass
class TransparencySelection:
    """A user-tailorable selection of distribution transparencies.

    The paper (section 6.1): "the user should be allowed to select their
    required transparency."  A selection is just a set of names plus the
    resources each needs; :meth:`build` assembles the interceptor chain in
    a fixed, sensible order (replication outermost fails over first, then
    migration, location, failure retry, access innermost).
    """

    enabled: set[str] = field(default_factory=set)
    trader: Trader | None = None
    service_type: str = ""
    context: ImportContext | None = None
    relocator: Relocator | None = None
    replicas: list[InterfaceRef] = field(default_factory=list)
    max_retries: int = 3

    def enable(self, name: str) -> "TransparencySelection":
        """Turn a transparency on; returns self for chaining."""
        if name not in TRANSPARENCY_NAMES:
            raise ConfigurationError(f"unknown transparency {name!r}")
        self.enabled.add(name)
        return self

    def disable(self, name: str) -> "TransparencySelection":
        """Turn a transparency off; returns self for chaining."""
        self.enabled.discard(name)
        return self

    def build(self) -> list[Interceptor]:
        """Assemble the interceptor chain for the enabled set."""
        chain: list[Interceptor] = []
        if "replication" in self.enabled:
            chain.append(ReplicationTransparency(self.replicas))
        if "migration" in self.enabled:
            if self.relocator is None:
                raise ConfigurationError("migration transparency needs a relocator")
            chain.append(MigrationTransparency(self.relocator))
        if "location" in self.enabled:
            if self.trader is None or not self.service_type:
                raise ConfigurationError("location transparency needs a trader and service type")
            chain.append(LocationTransparency(self.trader, self.service_type, self.context))
        if "failure" in self.enabled:
            chain.append(FailureTransparency(self.max_retries))
        if "access" in self.enabled:
            chain.append(AccessTransparency())
        return chain
