"""The ODP trader: service export, import and trading policy.

A trader mediates between exporters (who advertise *service offers*:
a service type, an interface reference and a property list) and importers
(who ask for a service type subject to property constraints and a
preference).  This module implements:

* a service-type hierarchy with subtype conformance,
* a small constraint language for import criteria,
* preference orderings (min/max over a property, first, random),
* trader federation (links searched when the local trader has no match),
* a **policy hook** — the extension the paper proposes in section 6.1:
  "the organisational knowledge base considered in the Mocca environment
  will be associated to the trader, containing or dictating among other
  the trading policy."  Experiment E5 plugs the organisational model in
  here and measures the effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.odp.objects import InterfaceRef
from repro.sim.rng import SeededRng
from repro.util.errors import ConfigurationError, NoOfferError, TradingError
from repro.util.ids import IdFactory


@dataclass(frozen=True)
class Constraint:
    """One property constraint in an import request.

    Supported operators: ``==``, ``!=``, ``<``, ``<=``, ``>``, ``>=``,
    ``in`` (property value is a member of the given collection) and
    ``contains`` (property value, a collection, contains the given item).
    """

    prop: str
    op: str
    value: Any

    _OPS = ("==", "!=", "<", "<=", ">", ">=", "in", "contains")

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise ConfigurationError(f"unknown constraint operator {self.op!r}")

    def satisfied_by(self, properties: dict[str, Any]) -> bool:
        """Evaluate against an offer's property list (missing prop fails)."""
        if self.prop not in properties:
            return False
        actual = properties[self.prop]
        if self.op == "==":
            return actual == self.value
        if self.op == "!=":
            return actual != self.value
        if self.op == "<":
            return actual < self.value
        if self.op == "<=":
            return actual <= self.value
        if self.op == ">":
            return actual > self.value
        if self.op == ">=":
            return actual >= self.value
        if self.op == "in":
            return actual in self.value
        return self.value in actual  # contains


def constraints_from(criteria: dict[str, Any]) -> list[Constraint]:
    """Build equality constraints from a plain dict.

    >>> [c.op for c in constraints_from({"media": "text"})]
    ['==']
    """
    return [Constraint(prop, "==", value) for prop, value in criteria.items()]


@dataclass(frozen=True)
class ServiceOffer:
    """An advertised service.

    Property values may be callables ("dynamic properties" in ODP trading
    terms): they are evaluated afresh at every import, so an offer can
    advertise live load or queue length.
    """

    offer_id: str
    service_type: str
    ref: InterfaceRef
    properties: dict[str, Any] = field(default_factory=dict, hash=False)
    exporter: str = ""

    def evaluated_properties(self) -> dict[str, Any]:
        """Properties with dynamic (callable) values evaluated now."""
        return {
            name: (value() if callable(value) else value)
            for name, value in self.properties.items()
        }


@dataclass(frozen=True)
class ImportContext:
    """Who is importing, on behalf of which organisation/activity.

    The policy hook receives this context; the organisational model uses it
    to decide inter-organisational compatibility (paper section 4,
    "Transparency of organisation").
    """

    importer: str = ""
    organisation: str = ""
    activity: str = ""
    role: str = ""


PolicyHook = Callable[[ServiceOffer, ImportContext], bool]


class Trader:
    """A trading function with federation and pluggable trading policy."""

    def __init__(self, name: str, rng: SeededRng | None = None) -> None:
        self.name = name
        self._offers: dict[str, ServiceOffer] = {}
        self._type_parents: dict[str, str] = {}
        self._links: dict[str, "Trader"] = {}
        self._policy_hooks: list[PolicyHook] = []
        self._ids = IdFactory()
        self._rng = rng if rng is not None else SeededRng(0)
        self.exports = 0
        self.imports = 0
        self.policy_rejections = 0
        self._obs: MetricsRegistry = NULL_METRICS

    def attach_metrics(self, metrics: MetricsRegistry | None) -> None:
        """Report trading activity to *metrics* (``None`` detaches).

        Counters ``trader.exports``/``imports``/``offer_scans``/
        ``link_hops``/``no_offer``/``policy_rejections``; the counts are
        per-trader, so federated traders each need their own attach.
        """
        self._obs = metrics if metrics is not None else NULL_METRICS

    # -- service types ------------------------------------------------------
    def register_service_type(self, service_type: str, parent: str | None = None) -> None:
        """Declare a service type, optionally as a subtype of *parent*."""
        if service_type in self._type_parents:
            raise ConfigurationError(f"service type {service_type!r} already registered")
        if parent is not None and parent not in self._type_parents:
            raise ConfigurationError(f"unknown parent service type {parent!r}")
        self._type_parents[service_type] = parent or ""

    def conforms_to(self, service_type: str, requested: str) -> bool:
        """True when *service_type* is *requested* or a (transitive) subtype."""
        current: str | None = service_type
        while current:
            if current == requested:
                return True
            current = self._type_parents.get(current) or None
        return False

    # -- policy ---------------------------------------------------------------
    def add_policy_hook(self, hook: PolicyHook) -> None:
        """Install a trading-policy predicate; offers failing it are hidden."""
        self._policy_hooks.append(hook)

    def _passes_policy(self, offer: ServiceOffer, context: ImportContext) -> bool:
        for hook in self._policy_hooks:
            if not hook(offer, context):
                self.policy_rejections += 1
                if self._obs.enabled:
                    self._obs.inc("trader.policy_rejections")
                return False
        return True

    # -- export ---------------------------------------------------------------
    def export(
        self,
        service_type: str,
        ref: InterfaceRef,
        properties: dict[str, Any] | None = None,
        exporter: str = "",
    ) -> ServiceOffer:
        """Advertise a service; unregistered types are registered as roots."""
        if service_type not in self._type_parents:
            self.register_service_type(service_type)
        offer = ServiceOffer(
            offer_id=self._ids.next("offer"),
            service_type=service_type,
            ref=ref,
            properties=dict(properties or {}),
            exporter=exporter,
        )
        self._offers[offer.offer_id] = offer
        self.exports += 1
        if self._obs.enabled:
            self._obs.inc("trader.exports")
        return offer

    def withdraw(self, offer_id: str) -> None:
        """Remove an offer."""
        if offer_id not in self._offers:
            raise TradingError(f"unknown offer {offer_id!r}")
        del self._offers[offer_id]

    def modify_offer(self, offer_id: str, properties: dict[str, Any]) -> ServiceOffer:
        """Replace an offer's property list (ODP 'modify' operation).

        The offer keeps its id, type, reference and exporter; only the
        advertised properties change.
        """
        old = self._offers.get(offer_id)
        if old is None:
            raise TradingError(f"unknown offer {offer_id!r}")
        updated = ServiceOffer(
            offer_id=old.offer_id,
            service_type=old.service_type,
            ref=old.ref,
            properties=dict(properties),
            exporter=old.exporter,
        )
        self._offers[offer_id] = updated
        return updated

    def offers(self) -> list[ServiceOffer]:
        """All live offers, in export order."""
        return list(self._offers.values())

    # -- federation -------------------------------------------------------------
    def link(self, other: "Trader", link_name: str | None = None) -> None:
        """Federate with another trader; searched when local import fails."""
        name = link_name if link_name is not None else other.name
        if name in self._links:
            raise ConfigurationError(f"link {name!r} already exists")
        if other is self:
            raise ConfigurationError("a trader cannot link to itself")
        self._links[name] = other

    def unlink(self, link_name: str) -> None:
        """Revoke a federation link; its offers stop resolving here.

        Imports in flight are unaffected (matching is synchronous); the
        next import simply no longer searches the revoked trader.
        """
        if link_name not in self._links:
            raise ConfigurationError(f"no link {link_name!r} to revoke")
        del self._links[link_name]

    def links(self) -> list[str]:
        """Names of federated traders, sorted."""
        return sorted(self._links)

    # -- import -------------------------------------------------------------------
    def import_(
        self,
        service_type: str,
        constraints: list[Constraint] | None = None,
        preference: str = "first",
        context: ImportContext | None = None,
        max_offers: int = 1,
        search_links: bool = True,
    ) -> list[ServiceOffer]:
        """Find offers matching the request.

        *preference* is ``"first"``, ``"random"``, ``"min:<prop>"`` or
        ``"max:<prop>"``.  Raises :class:`NoOfferError` when nothing
        matches anywhere (including federated traders when
        *search_links*).
        """
        if max_offers < 1:
            raise TradingError("max_offers must be >= 1")
        self.imports += 1
        if self._obs.enabled:
            self._obs.inc("trader.imports")
        ctx = context if context is not None else ImportContext()
        matched = self._match_local(service_type, constraints or [], ctx)
        if not matched and search_links:
            matched = self._match_linked(service_type, constraints or [], ctx)
        if not matched:
            if self._obs.enabled:
                self._obs.inc("trader.no_offer")
            raise NoOfferError(
                f"trader {self.name!r}: no offer for {service_type!r} satisfies the request"
            )
        ordered = self._order(matched, preference)
        return ordered[:max_offers]

    def import_one(
        self,
        service_type: str,
        constraints: list[Constraint] | None = None,
        preference: str = "first",
        context: ImportContext | None = None,
    ) -> ServiceOffer:
        """Convenience: import exactly one best offer."""
        return self.import_(service_type, constraints, preference, context, max_offers=1)[0]

    def _match_local(
        self, service_type: str, constraints: list[Constraint], context: ImportContext
    ) -> list[ServiceOffer]:
        result = []
        if self._obs.enabled:
            self._obs.inc("trader.offer_scans", len(self._offers))
        for offer in self._offers.values():
            if not self.conforms_to(offer.service_type, service_type):
                continue
            evaluated = offer.evaluated_properties()
            if not all(c.satisfied_by(evaluated) for c in constraints):
                continue
            if not self._passes_policy(offer, context):
                continue
            result.append(offer)
        return result

    def _match_linked(
        self, service_type: str, constraints: list[Constraint], context: ImportContext
    ) -> list[ServiceOffer]:
        for name in sorted(self._links):
            other = self._links[name]
            if self._obs.enabled:
                self._obs.inc("trader.link_hops")
            try:
                return other.import_(
                    service_type,
                    constraints,
                    preference="first",
                    context=context,
                    max_offers=1_000_000,
                    search_links=False,
                )
            except NoOfferError:
                continue
        return []

    def _order(self, offers: list[ServiceOffer], preference: str) -> list[ServiceOffer]:
        if preference == "first":
            return offers
        if preference == "random":
            return self._rng.shuffle(offers)
        direction, _, prop = preference.partition(":")
        if direction not in ("min", "max") or not prop:
            raise TradingError(f"unknown preference {preference!r}")
        evaluated = {o.offer_id: o.evaluated_properties() for o in offers}
        keyed = [o for o in offers if prop in evaluated[o.offer_id]]
        unkeyed = [o for o in offers if prop not in evaluated[o.offer_id]]
        keyed.sort(
            key=lambda o: evaluated[o.offer_id][prop], reverse=(direction == "max")
        )
        return keyed + unkeyed
