"""Synthetic workload generation (population, traffic) for scale benches.

The ROADMAP's million-user north star needs populations far past what the
hand-written bench scripts register.  :mod:`repro.workload.population`
provides a seeded generator that installs 10^3–10^6 synthetic users
across many organisations into an environment — deterministic for a given
spec, fast enough to sweep, and shard-aware (it reports per-DSA balance
when the environment's KB is a
:class:`~repro.sharding.kb.ShardedKnowledgeBase`).
"""

from repro.workload.population import (
    PopulationGenerator,
    PopulationReport,
    PopulationSpec,
)

__all__ = [
    "PopulationGenerator",
    "PopulationReport",
    "PopulationSpec",
]
