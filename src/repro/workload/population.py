"""Seeded synthetic-population generation.

A :class:`PopulationSpec` describes a registered population (how many
people, how many organisations, which seed); a
:class:`PopulationGenerator` installs it into a ``CSCWEnvironment``:
organisations into the knowledge base, people into their organisations
(through the KB-level mutators so keyed change notifications fire and —
on a sharded KB — white-pages entries land on their owning shards), and
one communicator endpoint per person.

Determinism: org membership comes from a :class:`~repro.sim.rng.SeededRng`
derived from ``spec.seed`` only, so two processes installing the same
spec produce byte-identical populations (and identical shard placement —
the ring hashes with crc32, not the randomized builtin ``hash``).

Scale pragmatics: workstations are modelled one *per organisation*, not
one per person — a 10^5-person install must not create 10^5 network
nodes.  The communicator endpoint is what exchanges route on; the shared
node only names the site.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.communication.model import Communicator
from repro.org.model import Organisation, Person
from repro.sim.rng import SeededRng


@dataclass(frozen=True)
class PopulationSpec:
    """One reproducible synthetic population."""

    people: int
    organisations: int
    seed: int = 0
    person_prefix: str = "u"
    org_prefix: str = "org"
    #: declare open ("*") symmetric policies between this many of the
    #: orgs (0 = none; the bench opens only the pairs it exchanges over,
    #: because 10^3 orgs would mean 10^6 policy rows)
    open_policy_orgs: int = 0

    def __post_init__(self) -> None:
        if self.people < 1 or self.organisations < 1:
            raise ValueError("population needs >= 1 person and >= 1 organisation")
        if self.organisations > self.people:
            raise ValueError("more organisations than people")


@dataclass(frozen=True)
class PopulationReport:
    """What one install produced (for bench tables and assertions)."""

    people: int
    organisations: int
    seed: int
    #: org_id -> member count
    org_sizes: dict[str, int] = field(default_factory=dict)
    #: dsa_id -> directory entry count (empty for unsharded KBs)
    shard_entries: dict[str, int] = field(default_factory=dict)

    @property
    def shard_balance(self) -> float:
        """max/mean entries per shard (1.0 = perfectly even; 0 = unsharded)."""
        if not self.shard_entries:
            return 0.0
        counts = list(self.shard_entries.values())
        mean = sum(counts) / len(counts)
        return (max(counts) / mean) if mean else 0.0


class PopulationGenerator:
    """Installs a :class:`PopulationSpec` into an environment."""

    def __init__(self, spec: PopulationSpec) -> None:
        self.spec = spec
        self._rng = SeededRng(spec.seed).fork("population")

    def org_ids(self) -> list[str]:
        """The organisation ids this spec creates."""
        return [f"{self.spec.org_prefix}{i}" for i in range(self.spec.organisations)]

    def person_ids(self) -> list[str]:
        """The person ids this spec creates."""
        return [f"{self.spec.person_prefix}{i}" for i in range(self.spec.people)]

    def install(self, env) -> PopulationReport:
        """Create orgs, people and endpoints in *env*; return the report."""
        spec = self.spec
        kb = env.knowledge_base
        world = env.world
        rng = self._rng
        org_ids = self.org_ids()
        org_sizes = {org_id: 0 for org_id in org_ids}
        for org_id in org_ids:
            kb.add_organisation(Organisation(org_id, org_id.upper()))
            node = f"ws-{org_id}"
            if not world.network.has_node(node):
                world.network.add_node(node, site=org_id)
        last = len(org_ids) - 1
        for index in range(spec.people):
            # every org gets its first members round-robin, the rest land
            # uniformly at random — no empty orgs, seeded skew elsewhere
            if index < len(org_ids):
                org_id = org_ids[index]
            else:
                org_id = org_ids[rng.randint(0, last)]
            person_id = f"{spec.person_prefix}{index}"
            kb.add_person(Person(person_id, f"User {index}", org_id))
            env.register_person(Communicator(person_id, f"ws-{org_id}"))
            org_sizes[org_id] += 1
        if spec.open_policy_orgs > 1:
            opened = org_ids[: spec.open_policy_orgs]
            for position, org_a in enumerate(opened):
                for org_b in opened[position + 1 :]:
                    kb.policies.declare(org_a, org_b, {"*"}, symmetric=True)
        shard_entries: dict[str, int] = {}
        directory = getattr(kb, "directory", None)
        if directory is not None and hasattr(directory, "stats"):
            shard_entries = dict(directory.stats()["entries"])
        return PopulationReport(
            people=spec.people,
            organisations=spec.organisations,
            seed=spec.seed,
            org_sizes=org_sizes,
            shard_entries=shard_entries,
        )

    def sample_pairs(self, k: int, cross_org: bool = True) -> list[tuple[str, str]]:
        """*k* deterministic distinct (sender, receiver) person pairs.

        With *cross_org* the pairs span the round-robin prefix (person i
        belongs to org i for i < organisations), guaranteeing cross-org
        routes without consulting the environment.
        """
        spec = self.spec
        if cross_org and spec.organisations >= 2:
            bound = min(spec.people, spec.organisations)
            pairs = []
            for i in range(k):
                a = i % bound
                b = (i + 1) % bound
                pairs.append((f"{spec.person_prefix}{a}", f"{spec.person_prefix}{b}"))
            return pairs
        rng = SeededRng(spec.seed).fork("pairs")
        pairs = []
        for _ in range(k):
            a = rng.randint(0, spec.people - 1)
            b = rng.randint(0, spec.people - 1)
            if a == b:
                b = (b + 1) % spec.people
            pairs.append((f"{spec.person_prefix}{a}", f"{spec.person_prefix}{b}"))
        return pairs
