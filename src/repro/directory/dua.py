"""The Directory User Agent: client-side access to a remote DSA.

A DUA holds a channel to a DSA's ``directory`` interface and exposes the
directory operations as ordinary methods.  Because everything runs on
simulated time, each method takes the :class:`~repro.sim.world.World` and
runs it until the reply lands (the asynchronous channel API remains
available through :attr:`channel` for pipelined use).
"""

from __future__ import annotations

from typing import Any

from repro.directory.dit import SCOPE_SUBTREE, Entry
from repro.directory.dsa import entries_from_documents, parse_where
from repro.directory.filters import Filter
from repro.odp.binding import BindingFactory, Channel
from repro.odp.objects import InterfaceRef
from repro.sim.world import World


class DirectoryUserAgent:
    """Synchronous client facade over a DSA channel.

    *identity* is the requestor name presented to the DSA for access
    control decisions (anonymous by default — a simple bind, in X.500
    terms).
    """

    def __init__(
        self,
        factory: BindingFactory,
        client_node: str,
        dsa_ref: InterfaceRef,
        identity: str = "",
    ) -> None:
        self.channel: Channel = factory.bind(client_node, dsa_ref)
        self.identity = identity

    def read(self, world: World, name: str, dereference: bool = True) -> Entry:
        """Fetch one entry by DN string (following aliases by default)."""
        return Entry.from_document(
            self.channel.call(
                world,
                "read",
                {"dn": name, "dereference": dereference, "requestor": self.identity},
            )
        )

    def search(
        self,
        world: World,
        base: str = "",
        scope: str = SCOPE_SUBTREE,
        where: Filter | str | None = None,
        limit: int | None = None,
    ) -> list[Entry]:
        """Scoped, filtered search; *where* accepts LDAP-style strings."""
        parsed = parse_where(where)
        documents = self.channel.call(
            world,
            "search",
            {
                "base": base,
                "scope": scope,
                "filter": parsed.to_document() if parsed is not None else None,
                "limit": limit,
                "requestor": self.identity,
            },
        )
        return entries_from_documents(documents)

    def add(self, world: World, name: str, attributes: dict[str, Any]) -> Entry:
        """Create an entry."""
        return Entry.from_document(
            self.channel.call(
                world,
                "add",
                {"dn": name, "attributes": attributes, "requestor": self.identity},
            )
        )

    def modify(
        self,
        world: World,
        name: str,
        add: dict[str, Any] | None = None,
        replace: dict[str, Any] | None = None,
        delete: list[str] | None = None,
    ) -> Entry:
        """Modify an entry's attributes."""
        return Entry.from_document(
            self.channel.call(
                world,
                "modify",
                {
                    "dn": name,
                    "add": add,
                    "replace": replace,
                    "delete": delete,
                    "requestor": self.identity,
                },
            )
        )

    def delete(self, world: World, name: str) -> None:
        """Delete a leaf entry."""
        self.channel.call(world, "delete", {"dn": name, "requestor": self.identity})

    def children(self, world: World, name: str = "") -> list[Entry]:
        """Immediate children of an entry (or the root)."""
        return entries_from_documents(self.channel.call(world, "children", {"dn": name}))

    def csn(self, world: World) -> int:
        """The DSA's current change sequence number."""
        return self.channel.call(world, "csn", {})
