"""Directory schema: attribute types and object classes.

A small but faithful subset of the X.500 schema model: attribute types
declare single/multi-valuedness and case sensitivity; object classes
declare mandatory ("must") and optional ("may") attributes and can inherit.
:func:`standard_schema` builds the object classes the CSCW environment
needs — the paper (section 4) calls for "smooth integration and utilization
of standard information repositories, for example, the X.500 directory
service", and reference [14] discusses exactly this use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.util.errors import ConfigurationError, SchemaViolationError


@dataclass(frozen=True)
class AttributeType:
    """Declaration of one attribute type."""

    name: str
    single_valued: bool = False
    case_sensitive: bool = False
    description: str = ""

    def normalize(self, value: Any) -> Any:
        """Normalize a value for matching (case folding for strings)."""
        if isinstance(value, str) and not self.case_sensitive:
            return value.lower()
        return value


@dataclass
class ObjectClass:
    """Declaration of one object class with inheritance."""

    name: str
    must: set[str] = field(default_factory=set)
    may: set[str] = field(default_factory=set)
    parent: "ObjectClass | None" = None

    def all_must(self) -> set[str]:
        """Mandatory attributes including inherited ones."""
        inherited = self.parent.all_must() if self.parent else set()
        return inherited | self.must

    def all_may(self) -> set[str]:
        """Optional attributes including inherited ones."""
        inherited = self.parent.all_may() if self.parent else set()
        return inherited | self.may

    def permits(self, attribute: str) -> bool:
        """True when the attribute is allowed on entries of this class."""
        return attribute in self.all_must() or attribute in self.all_may()


class Schema:
    """A registry of attribute types and object classes with validation."""

    def __init__(self) -> None:
        self._attributes: dict[str, AttributeType] = {}
        self._classes: dict[str, ObjectClass] = {}
        # objectClass itself is always known.
        self.define_attribute(AttributeType("objectclass"))

    # -- definitions --------------------------------------------------------
    def define_attribute(self, attribute: AttributeType) -> None:
        """Register an attribute type (names are case-insensitive)."""
        key = attribute.name.lower()
        if key in self._attributes:
            raise ConfigurationError(f"attribute {attribute.name!r} already defined")
        self._attributes[key] = attribute

    def define_class(
        self,
        name: str,
        must: set[str] | None = None,
        may: set[str] | None = None,
        parent: str | None = None,
    ) -> ObjectClass:
        """Register an object class; attribute names must be defined."""
        key = name.lower()
        if key in self._classes:
            raise ConfigurationError(f"object class {name!r} already defined")
        parent_class = None
        if parent is not None:
            parent_class = self.object_class(parent)
        cls = ObjectClass(
            name=key,
            must={a.lower() for a in (must or set())},
            may={a.lower() for a in (may or set())},
            parent=parent_class,
        )
        for attribute in cls.must | cls.may:
            if attribute not in self._attributes:
                raise ConfigurationError(f"class {name!r} uses undefined attribute {attribute!r}")
        self._classes[key] = cls
        return cls

    def attribute(self, name: str) -> AttributeType:
        """Look up an attribute type."""
        try:
            return self._attributes[name.lower()]
        except KeyError:
            raise SchemaViolationError(f"unknown attribute type {name!r}") from None

    def object_class(self, name: str) -> ObjectClass:
        """Look up an object class."""
        try:
            return self._classes[name.lower()]
        except KeyError:
            raise SchemaViolationError(f"unknown object class {name!r}") from None

    def has_class(self, name: str) -> bool:
        """True when the object class is defined."""
        return name.lower() in self._classes

    # -- validation -----------------------------------------------------------
    def validate_entry(self, attributes: dict[str, list[Any]]) -> None:
        """Check an entry against its declared object classes.

        The entry must carry ``objectClass``; every must-attribute of every
        declared class must be present; every attribute present must be
        permitted by at least one class; single-valued attributes must have
        exactly one value.  Raises :class:`SchemaViolationError`.
        """
        normalized = {k.lower(): v for k, v in attributes.items()}
        class_names = normalized.get("objectclass")
        if not class_names:
            raise SchemaViolationError("entry has no objectClass")
        classes = [self.object_class(str(c)) for c in class_names]
        for cls in classes:
            for must in cls.all_must():
                if must not in normalized or not normalized[must]:
                    raise SchemaViolationError(
                        f"entry of class {cls.name!r} is missing mandatory attribute {must!r}"
                    )
        for attribute, values in normalized.items():
            if attribute == "objectclass":
                continue
            if not any(cls.permits(attribute) for cls in classes):
                raise SchemaViolationError(
                    f"attribute {attribute!r} not permitted by classes "
                    f"{sorted(c.name for c in classes)}"
                )
            spec = self.attribute(attribute)
            if spec.single_valued and len(values) != 1:
                raise SchemaViolationError(
                    f"single-valued attribute {attribute!r} has {len(values)} values"
                )


def standard_schema() -> Schema:
    """The stock schema used throughout the library.

    Covers the classic X.521-style classes (country, organization,
    organizationalUnit, person, applicationEntity, groupOfNames, device)
    plus CSCW-specific classes the MOCCA environment stores: cscwActivity,
    cscwRole and cscwService.
    """
    schema = Schema()
    for name, kwargs in [
        ("c", {"single_valued": True}),
        ("o", {"single_valued": True}),
        ("ou", {}),
        ("cn", {}),
        ("sn", {}),
        ("title", {}),
        ("mail", {}),
        ("telephonenumber", {}),
        ("faxnumber", {}),
        ("description", {}),
        ("member", {}),
        ("seealso", {}),
        ("presentationaddress", {"single_valued": True}),
        ("localityname", {}),
        ("role", {}),
        ("activitystatus", {"single_valued": True}),
        ("deadline", {"single_valued": True}),
        ("servicetype", {}),
        ("interfaceref", {"single_valued": True}),
        ("capability", {}),
        ("responsibility", {}),
        ("aliasedobjectname", {"single_valued": True}),
    ]:
        schema.define_attribute(AttributeType(name, **kwargs))

    schema.define_class("top", may={"description"})
    schema.define_class("alias", must={"aliasedobjectname"}, may={"cn", "ou"}, parent="top")
    schema.define_class("country", must={"c"}, parent="top")
    schema.define_class("organization", must={"o"}, may={"localityname", "telephonenumber"}, parent="top")
    schema.define_class("organizationalunit", must={"ou"}, may={"localityname", "telephonenumber"}, parent="top")
    schema.define_class(
        "person",
        must={"cn", "sn"},
        may={"title", "mail", "telephonenumber", "faxnumber", "seealso", "role", "capability", "responsibility"},
        parent="top",
    )
    schema.define_class(
        "applicationentity",
        must={"cn", "presentationaddress"},
        may={"servicetype", "interfaceref"},
        parent="top",
    )
    schema.define_class("groupofnames", must={"cn", "member"}, parent="top")
    schema.define_class("device", must={"cn"}, may={"localityname"}, parent="top")
    schema.define_class(
        "cscwactivity",
        must={"cn"},
        may={"member", "role", "activitystatus", "deadline", "seealso"},
        parent="top",
    )
    schema.define_class("cscwrole", must={"cn"}, may={"member", "responsibility"}, parent="top")
    schema.define_class(
        "cscwservice",
        must={"cn", "servicetype"},
        may={"interfaceref", "presentationaddress"},
        parent="top",
    )
    return schema
