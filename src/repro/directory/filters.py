"""Search filters for the directory, with an LDAP-style string syntax.

Filters form a small AST (:class:`Eq`, :class:`Present`, :class:`Substr`,
:class:`Ge`, :class:`Le`, :class:`And`, :class:`Or`, :class:`Not`) that
evaluates against an entry's attributes.  :func:`parse_filter` accepts the
familiar parenthesised syntax::

    (&(objectClass=person)(ou=AC)(!(title=student)))
    (cn=An*)
    (|(mail=*)(faxNumber=*))

Filters serialize to/from plain documents so DUAs can ship them to DSAs
over the simulated network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.util.errors import DirectoryError


class Filter:
    """Base class for filter nodes."""

    def matches(self, attributes: dict[str, list[Any]]) -> bool:
        """Evaluate against a lower-cased attribute map."""
        raise NotImplementedError

    def to_document(self) -> dict[str, Any]:
        """Serialize to a plain document."""
        raise NotImplementedError

    @staticmethod
    def from_document(document: dict[str, Any]) -> "Filter":
        """Deserialize a filter document."""
        kind = document.get("kind")
        if kind == "eq":
            return Eq(document["attribute"], document["value"])
        if kind == "present":
            return Present(document["attribute"])
        if kind == "substr":
            return Substr(document["attribute"], document["parts"])
        if kind == "ge":
            return Ge(document["attribute"], document["value"])
        if kind == "le":
            return Le(document["attribute"], document["value"])
        if kind == "and":
            return And([Filter.from_document(d) for d in document["children"]])
        if kind == "or":
            return Or([Filter.from_document(d) for d in document["children"]])
        if kind == "not":
            return Not(Filter.from_document(document["child"]))
        raise DirectoryError(f"unknown filter kind {kind!r}")


def _values(attributes: dict[str, list[Any]], attribute: str) -> list[Any]:
    return attributes.get(attribute.lower(), [])


def _fold(value: Any) -> Any:
    return value.lower() if isinstance(value, str) else value


@dataclass
class Eq(Filter):
    """attribute equals value (case-insensitive for strings)."""

    attribute: str
    value: Any

    def matches(self, attributes: dict[str, list[Any]]) -> bool:
        target = _fold(self.value)
        return any(_fold(v) == target for v in _values(attributes, self.attribute))

    def to_document(self) -> dict[str, Any]:
        return {"kind": "eq", "attribute": self.attribute, "value": self.value}


@dataclass
class Present(Filter):
    """attribute has at least one value."""

    attribute: str

    def matches(self, attributes: dict[str, list[Any]]) -> bool:
        return bool(_values(attributes, self.attribute))

    def to_document(self) -> dict[str, Any]:
        return {"kind": "present", "attribute": self.attribute}


@dataclass
class Substr(Filter):
    """Substring match: parts are [initial, *middles, final]; '' wildcards.

    ``Substr("cn", ["an", ""])`` is the parse of ``cn=an*``;
    ``Substr("cn", ["", "na", ""])`` is ``cn=*na*``.
    """

    attribute: str
    parts: list[str]

    def matches(self, attributes: dict[str, list[Any]]) -> bool:
        for value in _values(attributes, self.attribute):
            if isinstance(value, str) and self._match_one(value.lower()):
                return True
        return False

    def _match_one(self, value: str) -> bool:
        parts = [p.lower() for p in self.parts]
        initial, *rest = parts
        if initial and not value.startswith(initial):
            return False
        position = len(initial)
        if rest:
            final = rest[-1]
            middles = rest[:-1]
        else:
            final = ""
            middles = []
        for middle in middles:
            if not middle:
                continue
            index = value.find(middle, position)
            if index < 0:
                return False
            position = index + len(middle)
        if final:
            return value.endswith(final) and len(value) - len(final) >= position
        return True

    def to_document(self) -> dict[str, Any]:
        return {"kind": "substr", "attribute": self.attribute, "parts": list(self.parts)}


@dataclass
class Ge(Filter):
    """attribute >= value."""

    attribute: str
    value: Any

    def matches(self, attributes: dict[str, list[Any]]) -> bool:
        return any(_fold(v) >= _fold(self.value) for v in _values(attributes, self.attribute))

    def to_document(self) -> dict[str, Any]:
        return {"kind": "ge", "attribute": self.attribute, "value": self.value}


@dataclass
class Le(Filter):
    """attribute <= value."""

    attribute: str
    value: Any

    def matches(self, attributes: dict[str, list[Any]]) -> bool:
        return any(_fold(v) <= _fold(self.value) for v in _values(attributes, self.attribute))

    def to_document(self) -> dict[str, Any]:
        return {"kind": "le", "attribute": self.attribute, "value": self.value}


@dataclass
class And(Filter):
    """All children match."""

    children: list[Filter]

    def matches(self, attributes: dict[str, list[Any]]) -> bool:
        return all(child.matches(attributes) for child in self.children)

    def to_document(self) -> dict[str, Any]:
        return {"kind": "and", "children": [c.to_document() for c in self.children]}


@dataclass
class Or(Filter):
    """At least one child matches."""

    children: list[Filter]

    def matches(self, attributes: dict[str, list[Any]]) -> bool:
        return any(child.matches(attributes) for child in self.children)

    def to_document(self) -> dict[str, Any]:
        return {"kind": "or", "children": [c.to_document() for c in self.children]}


@dataclass
class Not(Filter):
    """Child does not match."""

    child: Filter

    def matches(self, attributes: dict[str, list[Any]]) -> bool:
        return not self.child.matches(attributes)

    def to_document(self) -> dict[str, Any]:
        return {"kind": "not", "child": self.child.to_document()}


def parse_filter(text: str) -> Filter:
    """Parse an LDAP-style filter string into a :class:`Filter`."""
    parser = _Parser(text.strip())
    node = parser.parse()
    parser.expect_end()
    return node


class _Parser:
    def __init__(self, text: str) -> None:
        self._text = text
        self._pos = 0

    def parse(self) -> Filter:
        self._expect("(")
        char = self._peek()
        if char == "&":
            self._pos += 1
            node: Filter = And(self._parse_children())
        elif char == "|":
            self._pos += 1
            node = Or(self._parse_children())
        elif char == "!":
            self._pos += 1
            node = Not(self.parse())
        else:
            node = self._parse_simple()
        self._expect(")")
        return node

    def expect_end(self) -> None:
        if self._pos != len(self._text):
            raise DirectoryError(f"trailing characters in filter at position {self._pos}")

    def _parse_children(self) -> list[Filter]:
        children = []
        while self._peek() == "(":
            children.append(self.parse())
        if not children:
            raise DirectoryError("composite filter needs at least one child")
        return children

    def _parse_simple(self) -> Filter:
        end = self._text.find(")", self._pos)
        if end < 0:
            raise DirectoryError("unterminated filter component")
        body = self._text[self._pos:end]
        self._pos = end
        for op, builder in ((">=", Ge), ("<=", Le)):
            if op in body:
                attribute, _, value = body.partition(op)
                return builder(attribute.strip(), _convert(value.strip()))
        if "=" not in body:
            raise DirectoryError(f"filter component {body!r} has no operator")
        attribute, _, value = body.partition("=")
        attribute = attribute.strip()
        value = value.strip()
        if value == "*":
            return Present(attribute)
        if "*" in value:
            return Substr(attribute, value.split("*"))
        return Eq(attribute, _convert(value))

    def _peek(self) -> str:
        if self._pos >= len(self._text):
            raise DirectoryError("unexpected end of filter")
        return self._text[self._pos]

    def _expect(self, char: str) -> None:
        if self._peek() != char:
            raise DirectoryError(f"expected {char!r} at position {self._pos}")
        self._pos += 1


def _convert(value: str) -> Any:
    """Interpret numeric-looking filter values as numbers."""
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        return value
