"""Distinguished names for the X.500-style directory.

A distinguished name (DN) is a sequence of relative distinguished names
(RDNs), written little-endian like X.500/LDAP strings:
``cn=Ana,ou=AC,o=UPC,c=ES`` — the leftmost RDN is the leaf, the rightmost
hangs directly under the root.  Attribute types are case-insensitive;
values keep their case but compare case-insensitively, matching X.500's
caseIgnoreMatch for naming attributes.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering

from repro.util.errors import NameError_


@dataclass(frozen=True)
@total_ordering
class Rdn:
    """One relative distinguished name: an attribute=value pair."""

    attribute: str
    value: str

    def __post_init__(self) -> None:
        if not self.attribute or not self.value:
            raise NameError_("RDN attribute and value must be non-empty")
        if "," in self.value or "=" in self.value:
            raise NameError_(f"RDN value {self.value!r} contains reserved characters")

    @staticmethod
    def parse(text: str) -> "Rdn":
        """Parse ``attr=value``."""
        attribute, sep, value = text.partition("=")
        if not sep:
            raise NameError_(f"invalid RDN {text!r} (missing '=')")
        return Rdn(attribute.strip().lower(), value.strip())

    def normalized(self) -> tuple[str, str]:
        """Case-normalized key used for comparisons."""
        return (self.attribute.lower(), self.value.lower())

    def __str__(self) -> str:
        return f"{self.attribute}={self.value}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rdn):
            return NotImplemented
        return self.normalized() == other.normalized()

    def __lt__(self, other: "Rdn") -> bool:
        return self.normalized() < other.normalized()

    def __hash__(self) -> int:
        return hash(self.normalized())


@dataclass(frozen=True)
class DistinguishedName:
    """An immutable sequence of RDNs, leaf first.

    The empty DN (``DistinguishedName(())``) denotes the directory root.
    """

    rdns: tuple[Rdn, ...] = ()

    @staticmethod
    def parse(text: str) -> "DistinguishedName":
        """Parse a string like ``cn=Ana,ou=AC,o=UPC,c=ES``.

        An empty or whitespace-only string denotes the root.
        """
        stripped = text.strip()
        if not stripped:
            return DistinguishedName(())
        parts = [p.strip() for p in stripped.split(",")]
        return DistinguishedName(tuple(Rdn.parse(p) for p in parts))

    @property
    def is_root(self) -> bool:
        """True for the empty (root) name."""
        return not self.rdns

    @property
    def rdn(self) -> Rdn:
        """The leaf RDN."""
        if self.is_root:
            raise NameError_("the root has no RDN")
        return self.rdns[0]

    def parent(self) -> "DistinguishedName":
        """The name one level up (root's parent raises)."""
        if self.is_root:
            raise NameError_("the root has no parent")
        return DistinguishedName(self.rdns[1:])

    def child(self, rdn: Rdn | str) -> "DistinguishedName":
        """The name of a child entry under this one."""
        leaf = rdn if isinstance(rdn, Rdn) else Rdn.parse(rdn)
        return DistinguishedName((leaf,) + self.rdns)

    def is_descendant_of(self, ancestor: "DistinguishedName") -> bool:
        """True when *ancestor* is a proper prefix (suffix-wise) of self."""
        if len(self.rdns) <= len(ancestor.rdns):
            return False
        return self.rdns[len(self.rdns) - len(ancestor.rdns):] == ancestor.rdns

    def depth(self) -> int:
        """Number of RDNs (0 for the root)."""
        return len(self.rdns)

    def __str__(self) -> str:
        return ",".join(str(r) for r in self.rdns)

    def __lt__(self, other: "DistinguishedName") -> bool:
        return tuple(r.normalized() for r in reversed(self.rdns)) < tuple(
            r.normalized() for r in reversed(other.rdns)
        )


def dn(text: str) -> DistinguishedName:
    """Shorthand for :meth:`DistinguishedName.parse`.

    >>> dn("cn=Ana,o=UPC").depth()
    2
    """
    return DistinguishedName.parse(text)
