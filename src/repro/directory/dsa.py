"""The Directory Service Agent: a DIT served as an ODP object.

The DSA wraps a :class:`~repro.directory.dit.DirectoryInformationTree` in a
computational object offering the ``directory`` interface, so that the
directory is traded, bound and invoked exactly like any other ODP service —
the "smooth integration" of standard repositories the paper asks for.
"""

from __future__ import annotations

from typing import Any

from repro.directory.dit import SCOPE_SUBTREE, DirectoryInformationTree, Entry
from repro.directory.filters import Filter, parse_filter
from repro.directory.schema import Schema
from repro.odp.node_mgmt import Capsule
from repro.odp.objects import ComputationalObject, InterfaceRef, signature

#: the interface signature every DSA offers
DIRECTORY_SIGNATURE = signature(
    "directory",
    "read",
    "search",
    "add",
    "modify",
    "delete",
    "children",
    "changes_since",
    "csn",
)


class DirectoryServiceAgent:
    """One DSA: a named DIT deployable into a capsule."""

    def __init__(self, dsa_id: str, schema: Schema | None = None) -> None:
        self.dsa_id = dsa_id
        self.dit = DirectoryInformationTree(schema)
        self._object = ComputationalObject(dsa_id)
        self._object.offer(
            DIRECTORY_SIGNATURE,
            {
                "read": self._op_read,
                "search": self._op_search,
                "add": self._op_add,
                "modify": self._op_modify,
                "delete": self._op_delete,
                "children": self._op_children,
                "changes_since": self._op_changes_since,
                "csn": self._op_csn,
            },
        )

    def deploy(self, capsule: Capsule) -> InterfaceRef:
        """Activate this DSA in *capsule*; return its directory ref."""
        refs = capsule.deploy(self._object)
        return refs["directory"]

    # -- operation handlers (wire documents in, wire documents out) --------
    def _op_read(self, args: dict[str, Any]) -> dict[str, Any]:
        return self.dit.read(
            args["dn"],
            dereference=args.get("dereference", True),
            requestor=args.get("requestor", ""),
        ).to_document()

    def _op_search(self, args: dict[str, Any]) -> list[dict[str, Any]]:
        where: Filter | None = None
        if args.get("filter") is not None:
            where = Filter.from_document(args["filter"])
        entries = self.dit.search(
            args.get("base", ""),
            scope=args.get("scope", SCOPE_SUBTREE),
            where=where,
            limit=args.get("limit"),
            requestor=args.get("requestor", ""),
        )
        return [entry.to_document() for entry in entries]

    def _op_add(self, args: dict[str, Any]) -> dict[str, Any]:
        return self.dit.add(
            args["dn"], args["attributes"], requestor=args.get("requestor", "")
        ).to_document()

    def _op_modify(self, args: dict[str, Any]) -> dict[str, Any]:
        return self.dit.modify(
            args["dn"],
            add=args.get("add"),
            replace=args.get("replace"),
            delete=args.get("delete"),
            requestor=args.get("requestor", ""),
        ).to_document()

    def _op_delete(self, args: dict[str, Any]) -> bool:
        self.dit.delete(args["dn"], requestor=args.get("requestor", ""))
        return True

    def _op_children(self, args: dict[str, Any]) -> list[dict[str, Any]]:
        return [entry.to_document() for entry in self.dit.children_of(args.get("dn", ""))]

    def _op_changes_since(self, args: dict[str, Any]) -> list[dict[str, Any]]:
        return [
            {
                "csn": change.csn,
                "operation": change.operation,
                "name": change.name,
                "attributes": change.attributes,
            }
            for change in self.dit.changes_since(args["csn"])
        ]

    def _op_csn(self, args: dict[str, Any]) -> int:
        return self.dit.csn


def parse_where(where: "Filter | str | None") -> Filter | None:
    """Accept a Filter, an LDAP-style string, or None."""
    if where is None or isinstance(where, Filter):
        return where
    return parse_filter(where)


def entries_from_documents(documents: list[dict[str, Any]]) -> list[Entry]:
    """Convert a list of wire documents back to entries."""
    return [Entry.from_document(d) for d in documents]
