"""The Directory Information Tree: entries, modification and search.

The DIT holds entries keyed by distinguished name, validates them against
a :class:`~repro.directory.schema.Schema`, enforces tree structure (an
entry's parent must exist; only leaves may be deleted), and implements the
three X.500 search scopes (base / one-level / subtree).

Every mutation bumps a change sequence number and appends to a changelog,
which the shadowing protocol (:mod:`repro.directory.replication`) consumes
for incremental replication.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.directory.filters import Filter
from repro.directory.names import DistinguishedName, dn
from repro.directory.schema import Schema, standard_schema
from repro.util.errors import (
    AccessDeniedError,
    DirectoryError,
    EntryExistsError,
    NoSuchEntryError,
)

#: search scopes
SCOPE_BASE = "base"
SCOPE_ONE = "one"
SCOPE_SUBTREE = "subtree"
_SCOPES = (SCOPE_BASE, SCOPE_ONE, SCOPE_SUBTREE)


def _normalize_attributes(attributes: dict[str, Any]) -> dict[str, list[Any]]:
    """Lower-case attribute names; wrap scalars in lists; copy lists."""
    normalized: dict[str, list[Any]] = {}
    for name, value in attributes.items():
        if isinstance(value, (list, tuple)):
            normalized[name.lower()] = list(value)
        else:
            normalized[name.lower()] = [value]
    return normalized


@dataclass(frozen=True)
class Entry:
    """An immutable snapshot of one directory entry."""

    name: DistinguishedName
    attributes: dict[str, list[Any]] = field(default_factory=dict)

    def get(self, attribute: str) -> list[Any]:
        """Values of an attribute ([] when absent)."""
        return list(self.attributes.get(attribute.lower(), []))

    def first(self, attribute: str, default: Any = None) -> Any:
        """First value of an attribute, or *default*."""
        values = self.get(attribute)
        return values[0] if values else default

    def to_document(self) -> dict[str, Any]:
        """Serialize for transport."""
        return {"dn": str(self.name), "attributes": {k: list(v) for k, v in self.attributes.items()}}

    @staticmethod
    def from_document(document: dict[str, Any]) -> "Entry":
        """Deserialize from transport form."""
        return Entry(dn(document["dn"]), _normalize_attributes(document["attributes"]))


@dataclass(frozen=True)
class ChangeRecord:
    """One entry in the DIT changelog (consumed by shadowing)."""

    csn: int
    operation: str  # add | modify | delete
    name: str
    attributes: dict[str, list[Any]] | None = None


class DirectoryInformationTree:
    """An in-memory DIT with schema validation and scoped search."""

    def __init__(self, schema: Schema | None = None) -> None:
        self.schema = schema if schema is not None else standard_schema()
        self._entries: dict[str, Entry] = {}
        self._children: dict[str, set[str]] = {"": set()}
        self._csn = 0
        self._changelog: list[ChangeRecord] = []
        #: subtree access control: key -> (readers, writers); None = open
        self._protections: dict[str, tuple[set[str], set[str]]] = {}

    # -- bookkeeping ---------------------------------------------------------
    @property
    def csn(self) -> int:
        """Change sequence number of the latest mutation."""
        return self._csn

    def changes_since(self, csn: int) -> list[ChangeRecord]:
        """All change records with csn strictly greater than *csn*."""
        return [c for c in self._changelog if c.csn > csn]

    def __len__(self) -> int:
        return len(self._entries)

    def _key(self, name: DistinguishedName) -> str:
        return ",".join("=".join(r.normalized()) for r in name.rdns)

    def _record(self, operation: str, name: DistinguishedName, attributes: dict[str, list[Any]] | None) -> None:
        self._csn += 1
        self._changelog.append(
            ChangeRecord(self._csn, operation, str(name), attributes)
        )

    # -- access control --------------------------------------------------------
    def protect(
        self,
        base: DistinguishedName | str,
        readers: set[str],
        writers: set[str],
    ) -> None:
        """Protect the subtree at *base*: only listed requestors may act.

        ``"*"`` in a set means anyone.  The most specific protected
        ancestor of an entry governs it; unprotected subtrees are open
        (backwards compatible).  The anonymous requestor is ``""``.
        """
        target = dn(base) if isinstance(base, str) else base
        if not target.is_root and not self.exists(target):
            raise NoSuchEntryError(f"cannot protect missing entry {target}")
        self._protections[self._key(target)] = (set(readers), set(writers))

    def _governing_protection(self, name: DistinguishedName) -> tuple[set[str], set[str]] | None:
        current = name
        while True:
            protection = self._protections.get(self._key(current))
            if protection is not None:
                return protection
            if current.is_root:
                return None
            current = current.parent()

    def can_read(self, name: DistinguishedName | str, requestor: str = "") -> bool:
        """True when *requestor* may read the entry at *name*."""
        target = dn(name) if isinstance(name, str) else name
        protection = self._governing_protection(target)
        if protection is None:
            return True
        readers, _ = protection
        return "*" in readers or requestor in readers

    def can_write(self, name: DistinguishedName | str, requestor: str = "") -> bool:
        """True when *requestor* may modify the entry at *name*."""
        target = dn(name) if isinstance(name, str) else name
        protection = self._governing_protection(target)
        if protection is None:
            return True
        _, writers = protection
        return "*" in writers or requestor in writers

    def _require_read(self, name: DistinguishedName, requestor: str) -> None:
        if not self.can_read(name, requestor):
            raise AccessDeniedError(f"{requestor or 'anonymous'} may not read {name}")

    def _require_write(self, name: DistinguishedName, requestor: str) -> None:
        if not self.can_write(name, requestor):
            raise AccessDeniedError(f"{requestor or 'anonymous'} may not write {name}")

    # -- reads ---------------------------------------------------------------
    def exists(self, name: DistinguishedName | str) -> bool:
        """True when an entry with this DN exists."""
        target = dn(name) if isinstance(name, str) else name
        return self._key(target) in self._entries

    def read(
        self,
        name: DistinguishedName | str,
        dereference: bool = True,
        requestor: str = "",
    ) -> Entry:
        """Fetch one entry by DN, following alias entries by default.

        An alias entry (object class ``alias``) points at another DN via
        ``aliasedObjectName``; chains are followed up to 8 hops, after
        which a :class:`DirectoryError` is raised (alias loop).  Subtree
        protections are enforced against *requestor* at every hop.
        """
        target = dn(name) if isinstance(name, str) else name
        for _ in range(8):
            self._require_read(target, requestor)
            entry = self._entries.get(self._key(target))
            if entry is None:
                raise NoSuchEntryError(f"no entry {target}")
            aliased = entry.first("aliasedobjectname")
            if not dereference or aliased is None:
                return entry
            target = dn(str(aliased))
        raise DirectoryError(f"alias chain too long resolving {name}")

    def children_of(self, name: DistinguishedName | str) -> list[Entry]:
        """Immediate children of an entry (or of the root)."""
        target = dn(name) if isinstance(name, str) else name
        if not target.is_root and not self.exists(target):
            raise NoSuchEntryError(f"no entry {target}")
        keys = self._children.get(self._key(target), set())
        return sorted((self._entries[k] for k in keys), key=lambda e: e.name)

    # -- writes ---------------------------------------------------------------
    def add(
        self,
        name: DistinguishedName | str,
        attributes: dict[str, Any],
        requestor: str = "",
    ) -> Entry:
        """Add an entry; the parent must already exist (except under root)."""
        target = dn(name) if isinstance(name, str) else name
        if target.is_root:
            raise DirectoryError("cannot add an entry at the root DN")
        self._require_write(target, requestor)
        key = self._key(target)
        if key in self._entries:
            raise EntryExistsError(f"entry {target} already exists")
        parent = target.parent()
        parent_key = self._key(parent)
        if not parent.is_root and parent_key not in self._entries:
            raise NoSuchEntryError(f"parent {parent} does not exist")
        normalized = _normalize_attributes(attributes)
        # The naming attribute must appear among the entry's attributes.
        naming_attr = target.rdn.attribute.lower()
        naming_value = target.rdn.value
        existing = [str(v).lower() for v in normalized.get(naming_attr, [])]
        if naming_value.lower() not in existing:
            normalized.setdefault(naming_attr, []).append(naming_value)
        self.schema.validate_entry(normalized)
        entry = Entry(target, normalized)
        self._entries[key] = entry
        self._children.setdefault(parent_key, set()).add(key)
        self._children.setdefault(key, set())
        self._record("add", target, normalized)
        return entry

    def modify(
        self,
        name: DistinguishedName | str,
        add: dict[str, Any] | None = None,
        replace: dict[str, Any] | None = None,
        delete: Iterable[str] | None = None,
        requestor: str = "",
    ) -> Entry:
        """Apply attribute changes to an entry, re-validating the result."""
        target = dn(name) if isinstance(name, str) else name
        self._require_write(target, requestor)
        current = self.read(target, dereference=False, requestor=requestor)
        attributes = {k: list(v) for k, v in current.attributes.items()}
        for attribute in delete or []:
            attributes.pop(attribute.lower(), None)
        for attribute, values in _normalize_attributes(replace or {}).items():
            attributes[attribute] = values
        for attribute, values in _normalize_attributes(add or {}).items():
            attributes.setdefault(attribute, [])
            for value in values:
                if value not in attributes[attribute]:
                    attributes[attribute].append(value)
        self.schema.validate_entry(attributes)
        entry = Entry(target, attributes)
        self._entries[self._key(target)] = entry
        self._record("modify", target, attributes)
        return entry

    def delete(self, name: DistinguishedName | str, requestor: str = "") -> None:
        """Remove a leaf entry (X.500 forbids deleting interior nodes)."""
        target = dn(name) if isinstance(name, str) else name
        self._require_write(target, requestor)
        key = self._key(target)
        if key not in self._entries:
            raise NoSuchEntryError(f"no entry {target}")
        if self._children.get(key):
            raise DirectoryError(f"entry {target} has children; delete them first")
        del self._entries[key]
        self._children.pop(key, None)
        parent_key = self._key(target.parent())
        self._children.get(parent_key, set()).discard(key)
        self._record("delete", target, None)

    def apply_change(self, change: ChangeRecord) -> None:
        """Replay a change record (used by shadow DSAs).

        Replay is idempotent-ish: adds overwrite, deletes ignore missing
        entries, so a shadow can re-consume an overlapping changelog.
        """
        target = dn(change.name)
        if change.operation == "add" or change.operation == "modify":
            assert change.attributes is not None
            key = self._key(target)
            entry = Entry(target, {k: list(v) for k, v in change.attributes.items()})
            if key not in self._entries:
                parent_key = self._key(target.parent())
                self._children.setdefault(parent_key, set()).add(key)
                self._children.setdefault(key, set())
            self._entries[key] = entry
            self._csn = max(self._csn, change.csn)
        elif change.operation == "delete":
            key = self._key(target)
            if key in self._entries:
                del self._entries[key]
                self._children.pop(key, None)
                self._children.get(self._key(target.parent()), set()).discard(key)
            self._csn = max(self._csn, change.csn)
        else:
            raise DirectoryError(f"unknown change operation {change.operation!r}")

    # -- search ---------------------------------------------------------------
    def search(
        self,
        base: DistinguishedName | str,
        scope: str = SCOPE_SUBTREE,
        where: Filter | None = None,
        limit: int | None = None,
        requestor: str = "",
    ) -> list[Entry]:
        """Scoped, filtered search returning matching entries.

        ``scope`` is ``"base"`` (the base entry only), ``"one"`` (immediate
        children) or ``"subtree"`` (base and all descendants).  Entries the
        *requestor* may not read are silently omitted (X.500 directories
        hide, rather than reveal, protected subtrees).
        """
        if scope not in _SCOPES:
            raise DirectoryError(f"unknown search scope {scope!r}")
        target = dn(base) if isinstance(base, str) else base
        if not target.is_root and not self.exists(target):
            raise NoSuchEntryError(f"search base {target} does not exist")
        candidates: list[Entry]
        if scope == SCOPE_BASE:
            candidates = [] if target.is_root else [self._entries[self._key(target)]]
        elif scope == SCOPE_ONE:
            candidates = self.children_of(target)
        else:
            candidates = []
            if not target.is_root:
                candidates.append(self._entries[self._key(target)])
            candidates.extend(
                entry
                for entry in self._entries.values()
                if entry.name.is_descendant_of(target)
            )
        matched = [
            entry
            for entry in sorted(candidates, key=lambda e: e.name)
            if (where is None or where.matches(entry.attributes))
            and self.can_read(entry.name, requestor)
        ]
        if limit is not None:
            return matched[:limit]
        return matched
