"""X.500-style directory service: DIT, schema, filters, DSA/DUA, shadowing.

Built per the paper's requirement of "smooth integration and utilization of
standard information repositories, for example, the X.500 directory
service" (section 4) and reference [14]'s analysis of X.500's relevance to
CSCW.
"""

from repro.directory.dit import (
    SCOPE_BASE,
    SCOPE_ONE,
    SCOPE_SUBTREE,
    ChangeRecord,
    DirectoryInformationTree,
    Entry,
)
from repro.directory.dsa import DIRECTORY_SIGNATURE, DirectoryServiceAgent
from repro.directory.dua import DirectoryUserAgent
from repro.directory.filters import (
    And,
    Eq,
    Filter,
    Ge,
    Le,
    Not,
    Or,
    Present,
    Substr,
    parse_filter,
)
from repro.directory.names import DistinguishedName, Rdn, dn
from repro.directory.replication import ShadowingAgreement
from repro.directory.schema import AttributeType, ObjectClass, Schema, standard_schema

__all__ = [
    "SCOPE_BASE",
    "SCOPE_ONE",
    "SCOPE_SUBTREE",
    "ChangeRecord",
    "DirectoryInformationTree",
    "Entry",
    "DIRECTORY_SIGNATURE",
    "DirectoryServiceAgent",
    "DirectoryUserAgent",
    "And",
    "Eq",
    "Filter",
    "Ge",
    "Le",
    "Not",
    "Or",
    "Present",
    "Substr",
    "parse_filter",
    "DistinguishedName",
    "Rdn",
    "dn",
    "ShadowingAgreement",
    "AttributeType",
    "ObjectClass",
    "Schema",
    "standard_schema",
]
