"""Directory shadowing: consumer-initiated incremental replication.

A shadow DSA periodically pulls the master's changelog (``changes_since``)
over an ODP channel and replays it into its own DIT.  This models X.525
DISP shadowing closely enough for the experiments: reads can be served
locally at each site while writes go to the master, and the staleness
window equals the pull period.
"""

from __future__ import annotations

from typing import Any

from repro.directory.dit import ChangeRecord
from repro.directory.dsa import DirectoryServiceAgent
from repro.odp.binding import BindingFactory, Channel
from repro.odp.objects import InterfaceRef
from repro.sim.engine import PeriodicTask
from repro.sim.world import World


class ShadowingAgreement:
    """Keeps one shadow DSA in sync with a master DSA.

    The agreement runs on simulated time: every *period_s* the shadow asks
    the master for changes after its high-water mark and replays them.
    Failed pulls (master down, partition) are skipped silently and retried
    at the next tick — shadowing is eventually consistent by design.
    """

    def __init__(
        self,
        world: World,
        factory: BindingFactory,
        shadow: DirectoryServiceAgent,
        shadow_node: str,
        master_ref: InterfaceRef,
        period_s: float = 30.0,
    ) -> None:
        self._world = world
        self._shadow = shadow
        self._channel: Channel = factory.bind(shadow_node, master_ref)
        self._period_s = period_s
        self._high_water = 0
        self._task: PeriodicTask | None = None
        self.pulls = 0
        self.changes_applied = 0
        self.failed_pulls = 0

    @property
    def high_water(self) -> int:
        """Highest master CSN the shadow has applied."""
        return self._high_water

    def start(self) -> "ShadowingAgreement":
        """Begin periodic pulling; returns self."""
        self._task = PeriodicTask(
            self._world.engine, self._period_s, self._pull, label="shadow-pull"
        ).start()
        return self

    def stop(self) -> None:
        """Stop pulling."""
        if self._task is not None:
            self._task.stop()

    def sync_now(self) -> None:
        """Trigger an immediate pull (in addition to the periodic ones)."""
        self._pull()

    def _pull(self) -> None:
        self.pulls += 1

        def apply(documents: Any) -> None:
            if isinstance(documents, dict) and "error" in documents:
                self.failed_pulls += 1
                return
            for document in documents:
                change = ChangeRecord(
                    csn=document["csn"],
                    operation=document["operation"],
                    name=document["name"],
                    attributes=document["attributes"],
                )
                if change.csn <= self._high_water:
                    continue
                self._shadow.dit.apply_change(change)
                self._high_water = change.csn
                self.changes_applied += 1

        self._channel.invoke(
            "changes_since",
            {"csn": self._high_water},
            on_reply=apply,
            on_error=lambda error: self._note_failure(),
        )

    def _note_failure(self) -> None:
        self.failed_pulls += 1
