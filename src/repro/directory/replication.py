"""Directory shadowing: consumer-initiated incremental replication.

A shadow DSA periodically pulls the master's changelog (``changes_since``)
over an ODP channel and replays it into its own DIT.  This models X.525
DISP shadowing closely enough for the experiments: reads can be served
locally at each site while writes go to the master, and the staleness
window equals the pull period.

Failed pulls (master down, partition) back off exponentially — a dead
master is probed at ``period_s * backoff_factor ** streak`` (capped at
``max_backoff_s``) instead of hammered at full cadence — and the first
successful pull resets the cadence.  An optional
:class:`~repro.resilience.breaker.CircuitBreaker` gates each pull: while
it is open the pull is skipped outright (``skipped_pulls``) and the
cadence keeps ticking, so a dead master costs nothing but a breaker
check until its cooldown lets a trial pull through.  Pull activity is
exported as ``directory.shadow.*`` counters when a metrics registry is
attached.
"""

from __future__ import annotations

from typing import Any

from repro.directory.dit import ChangeRecord
from repro.directory.dsa import DirectoryServiceAgent
from repro.obs.events import KIND_SHADOW_PULL_FAILED, NULL_EVENTS, EventLog
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.odp.binding import BindingFactory, Channel
from repro.odp.objects import InterfaceRef
from repro.resilience.breaker import CircuitBreaker
from repro.sim.engine import EventHandle
from repro.sim.world import World
from repro.util.errors import ConfigurationError


class ShadowingAgreement:
    """Keeps one shadow DSA in sync with a master DSA.

    The agreement runs on simulated time: every *period_s* the shadow asks
    the master for changes after its high-water mark and replays them.
    Each periodic pull re-arms the next one when it completes, with the
    delay stretched by the current failure streak — shadowing stays
    eventually consistent while an unreachable master is left in peace.
    """

    def __init__(
        self,
        world: World,
        factory: BindingFactory,
        shadow: DirectoryServiceAgent,
        shadow_node: str,
        master_ref: InterfaceRef,
        period_s: float = 30.0,
        backoff_factor: float = 2.0,
        max_backoff_s: float | None = None,
        metrics: MetricsRegistry | None = None,
        breaker: CircuitBreaker | None = None,
        events: EventLog | None = None,
    ) -> None:
        self._world = world
        self._shadow = shadow
        self._channel: Channel = factory.bind(shadow_node, master_ref)
        self._period_s = period_s
        self._backoff_factor = backoff_factor
        self._max_backoff_s = (
            max_backoff_s if max_backoff_s is not None else period_s * 8
        )
        self._high_water = 0
        self._running = False
        self._pending: EventHandle | None = None
        self._fail_streak = 0
        self._obs: MetricsRegistry = metrics if metrics is not None else NULL_METRICS
        self._events: EventLog = events if events is not None else NULL_EVENTS
        self.breaker = breaker
        self.pulls = 0
        self.changes_applied = 0
        self.failed_pulls = 0
        #: pulls skipped because the breaker was open
        self.skipped_pulls = 0
        #: pulls that completed successfully (whether or not changes came)
        self.syncs = 0

    @property
    def high_water(self) -> int:
        """Highest master CSN the shadow has applied."""
        return self._high_water

    @property
    def current_period_s(self) -> float:
        """Delay until the next periodic pull, backoff included."""
        return min(
            self._period_s * (self._backoff_factor ** self._fail_streak),
            self._max_backoff_s,
        )

    @property
    def fail_streak(self) -> int:
        """Consecutive failed pulls since the last success."""
        return self._fail_streak

    @property
    def period_s(self) -> float:
        """The configured base pull period (before failure backoff)."""
        return self._period_s

    def set_period(self, period_s: float) -> None:
        """Re-balance the base pull cadence at runtime.

        The adaptive control plane slows shadowing down while the
        federation is shedding load (background replication should not
        compete with foreground exchanges) and restores the configured
        cadence after recovery.  A pull already armed keeps its old
        delay; the new period takes effect from the next re-arm.
        """
        if period_s <= 0:
            raise ConfigurationError("shadowing period_s must be > 0")
        self._period_s = period_s
        self._max_backoff_s = max(self._max_backoff_s, period_s)

    def attach_metrics(self, metrics: MetricsRegistry | None) -> None:
        """Report pull activity to *metrics* (``None`` detaches).

        Counters ``directory.shadow.pulls``/``syncs``/``failures``/
        ``changes_applied``.
        """
        self._obs = metrics if metrics is not None else NULL_METRICS

    def start(self) -> "ShadowingAgreement":
        """Begin periodic pulling; returns self."""
        self._running = True
        self._arm()
        return self

    def stop(self) -> None:
        """Stop pulling (a pull already in flight still completes)."""
        self._running = False
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def sync_now(self) -> None:
        """Trigger an immediate pull (in addition to the periodic ones)."""
        self._pull(periodic=False)

    def _arm(self) -> None:
        if not self._running:
            return
        self._pending = self._world.engine.schedule(
            self.current_period_s, self._tick, label="shadow-pull"
        )

    def _tick(self) -> None:
        self._pending = None
        if self._running:
            self._pull(periodic=True)

    def _pull(self, periodic: bool = False) -> None:
        if self.breaker is not None and not self.breaker.allow():
            self.skipped_pulls += 1
            if self._obs.enabled:
                self._obs.inc("directory.shadow.skipped")
            if periodic:
                self._arm()
            return
        self.pulls += 1
        if self._obs.enabled:
            self._obs.inc("directory.shadow.pulls")

        def apply(documents: Any) -> None:
            if isinstance(documents, dict) and "error" in documents:
                self._note_failure(periodic)
                return
            applied = 0
            for document in documents:
                change = ChangeRecord(
                    csn=document["csn"],
                    operation=document["operation"],
                    name=document["name"],
                    attributes=document["attributes"],
                )
                if change.csn <= self._high_water:
                    continue
                self._shadow.dit.apply_change(change)
                self._high_water = change.csn
                self.changes_applied += 1
                applied += 1
            self._note_success(applied, periodic)

        self._channel.invoke(
            "changes_since",
            {"csn": self._high_water},
            on_reply=apply,
            on_error=lambda error: self._note_failure(periodic),
        )

    def _note_success(self, applied: int, periodic: bool) -> None:
        self._fail_streak = 0
        self.syncs += 1
        if self.breaker is not None:
            self.breaker.record_success()
        if self._obs.enabled:
            self._obs.inc("directory.shadow.syncs")
            if applied:
                self._obs.inc("directory.shadow.changes_applied", applied)
        if periodic:
            self._arm()

    def _note_failure(self, periodic: bool = False) -> None:
        self.failed_pulls += 1
        self._fail_streak += 1
        if self.breaker is not None:
            self.breaker.record_failure()
        if self._obs.enabled:
            self._obs.inc("directory.shadow.failures")
        if self._events.enabled:
            self._events.record(
                self._world.now,
                KIND_SHADOW_PULL_FAILED,
                shadow=self._shadow.name,
                streak=self._fail_streak,
            )
        if periodic:
            self._arm()
