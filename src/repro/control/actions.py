"""Typed, reversible reconfiguration actions the control plane applies.

Every action is a pair of idempotent state transitions over one managed
component: :meth:`ControlAction.apply` moves the component into its
remediation configuration, :meth:`ControlAction.revert` restores
exactly the configuration observed at apply time.  The base class owns
the edge-triggering bookkeeping (the ``applied`` flag — applying an
applied action or reverting an idle one is a no-op) and the
``last_transition`` timestamp the plane's hysteresis checks against,
so subclasses only state *what* changes:

* :class:`DrainGateway` — soft-drain a degrading gateway so failover
  routing prefers an intermediate path *before* the breaker opens,
* :class:`BoostRelayBudget` — open extra relay attempt capacity on a
  gateway carrying diverted traffic,
* :class:`TightenShed` — lower the environment's async shed limit so
  overload is refused early instead of queued,
* :class:`RebalanceShadowing` — slow a DSA shadowing agreement so
  background replication yields to foreground exchanges.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.util.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.directory.replication import ShadowingAgreement
    from repro.federation.gateway import Gateway


class ControlAction:
    """One reversible reconfiguration; subclasses define the transitions.

    State machine: idle → (``apply``) → applied → (``revert``) → idle.
    Both transitions are idempotent and return whether anything changed;
    ``last_transition`` records the simulated time of the latest real
    transition (``-inf`` before the first), which is what the control
    plane's cool-down compares against.
    """

    #: short action type tag, recorded with control events
    kind = "action"

    def __init__(self, target: str) -> None:
        self.target = target
        self.applied = False
        self.last_transition = float("-inf")
        self.applies = 0
        self.reverts = 0

    def apply(self, now: float) -> bool:
        """Apply the remediation (idempotent); True when state changed."""
        if self.applied or not self._do_apply():
            return False
        self.applied = True
        self.last_transition = now
        self.applies += 1
        return True

    def revert(self, now: float) -> bool:
        """Undo the remediation (idempotent); True when state changed."""
        if not self.applied:
            return False
        self._do_revert()
        self.applied = False
        self.last_transition = now
        self.reverts += 1
        return True

    def _do_apply(self) -> bool:
        """Subclass hook: perform the change; False declines (no-op)."""
        raise NotImplementedError

    def _do_revert(self) -> None:
        """Subclass hook: restore the configuration saved at apply."""
        raise NotImplementedError

    def describe(self) -> dict[str, Any]:
        """JSON-able state snapshot, for ``ControlPlane.describe()``."""
        return {
            "kind": self.kind,
            "target": self.target,
            "applied": self.applied,
            "applies": self.applies,
            "reverts": self.reverts,
        }


class DrainGateway(ControlAction):
    """Soft-drain a gateway: failover routing steers around it.

    Applies :meth:`~repro.federation.gateway.Gateway.drain`, making
    ``ready()`` report False while still admitting relays that have no
    alternative route — a pre-emptive, gentler cousin of the breaker
    tripping.
    """

    kind = "drain-gateway"

    def __init__(self, target: str, gateway: "Gateway") -> None:
        super().__init__(target)
        self._gateway = gateway

    def _do_apply(self) -> bool:
        self._gateway.drain()
        return True

    def _do_revert(self) -> None:
        self._gateway.undrain()


class BoostRelayBudget(ControlAction):
    """Grant a gateway extra relay attempts while it absorbs load."""

    kind = "boost-relay-budget"

    def __init__(self, target: str, gateway: "Gateway", extra_attempts: int = 2) -> None:
        if extra_attempts < 1:
            raise ConfigurationError("extra_attempts must be >= 1")
        super().__init__(target)
        self._gateway = gateway
        self._extra = extra_attempts
        self._saved: int | None = None

    def _do_apply(self) -> bool:
        self._saved = self._gateway.max_attempts
        self._gateway.set_attempt_budget(self._saved + self._extra)
        return True

    def _do_revert(self) -> None:
        if self._saved is not None:
            self._gateway.set_attempt_budget(self._saved)
            self._saved = None


class TightenShed(ControlAction):
    """Scale an environment's async shed limit down under pressure.

    Declines (stays idle) when the environment has no shed limit
    configured — the control plane tightens an existing admission
    policy, it does not invent one.
    """

    kind = "tighten-shed"

    def __init__(self, target: str, environment: Any, factor: float = 0.5) -> None:
        if not 0.0 < factor < 1.0:
            raise ConfigurationError("shed factor must be in (0, 1)")
        super().__init__(target)
        self._env = environment
        self._factor = factor
        self._saved: int | None = None

    def _do_apply(self) -> bool:
        limit = self._env.shed_limit
        if limit is None:
            return False
        self._saved = limit
        self._env.set_shed_limit(max(1, int(limit * self._factor)))
        return True

    def _do_revert(self) -> None:
        if self._saved is not None:
            self._env.set_shed_limit(self._saved)
            self._saved = None


class RebalanceShadowing(ControlAction):
    """Stretch a shadowing agreement's pull period while load is high."""

    kind = "rebalance-shadowing"

    def __init__(
        self, target: str, agreement: "ShadowingAgreement", slowdown: float = 4.0
    ) -> None:
        if slowdown <= 1.0:
            raise ConfigurationError("shadowing slowdown must be > 1")
        super().__init__(target)
        self._agreement = agreement
        self._slowdown = slowdown
        self._saved: float | None = None

    def _do_apply(self) -> bool:
        self._saved = self._agreement.period_s
        self._agreement.set_period(self._saved * self._slowdown)
        return True

    def _do_revert(self) -> None:
        if self._saved is not None:
            self._agreement.set_period(self._saved)
            self._saved = None
