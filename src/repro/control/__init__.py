"""Adaptive control plane: SLO-driven runtime reconfiguration.

PR 5's :class:`~repro.obs.slo.SLOEngine` *detects* error-budget burn;
this package *acts* on it — the management viewpoint RM-ODP prescribes
for an open distributed platform, closed into a feedback loop.  The
:class:`~repro.control.plane.ControlPlane` subscribes to three signal
surfaces:

* **SLO burn alerts** (edge-triggered, via
  :meth:`~repro.obs.slo.SLOEngine.add_burn_listener`),
* **health trends** (:meth:`~repro.resilience.health.HealthMonitor.trend`
  — success ratio and latency slope over a sliding sim-time window, so
  a *degrading* link is visible before its breaker trips),
* **gateway queue depth** (in-flight relays and per-tick retry surges).

It responds through a small set of typed, reversible
:class:`~repro.control.actions.ControlAction` s — soft-drain a
degrading gateway, boost relay attempt budgets, tighten load-shedding,
slow background shadowing — each applied with hysteresis (per-action
cool-down on the simulated clock, edge-triggered like the alerts),
logged to the :class:`~repro.obs.events.EventLog` with trace
correlation, and fully reverted after recovery.

Wire it with ``CSCWEnvironment.builder().with_control(policy)`` for a
single environment or ``Federation.attach_control()`` across domains;
experiment E15 (``benchmarks/bench_e11_control.py``) measures the loop
against the reactive and resilient baselines under identical chaos.
"""

from repro.control.actions import (
    BoostRelayBudget,
    ControlAction,
    DrainGateway,
    RebalanceShadowing,
    TightenShed,
)
from repro.control.plane import ControlPlane, ControlPolicy

__all__ = [
    "BoostRelayBudget",
    "ControlAction",
    "ControlPlane",
    "ControlPolicy",
    "DrainGateway",
    "RebalanceShadowing",
    "TightenShed",
]
