"""The feedback loop: signals in, reversible reconfiguration out.

The :class:`ControlPlane` runs one
:class:`~repro.sim.engine.PeriodicTask` on the simulated clock.  Each
tick it evaluates the signal surfaces of every managed component and
drives the matching :class:`~repro.control.actions.ControlAction`
transitions:

* a **gateway** is *degrading* when its per-tick retry delta reaches
  ``retry_surge`` with relays in flight (queue-depth signal), or when
  its health trend's success ratio falls to ``degrade_ratio`` — both
  fire *before* the circuit breaker's consecutive-failure threshold,
  which is the point: soft-drain the link while the breaker is still
  closed, and failover routing steers around it immediately,
* a drained gateway *recovers* when its trend is clean again (ratio at
  ``recover_ratio`` with the last probe healthy) and no surge is live,
* **SLO burn** (any watched objective alerting) applies the
  load-management set — boost relay budgets, tighten shedding, slow
  shadowing — and the alert clearing reverts it.

Every transition is **edge-triggered** (the action's ``applied`` flag)
and guarded by **hysteresis**: a transition within ``cooldown_s`` of
the action's last one is suppressed (counted as ``control.suppressed``)
so a flapping signal cannot ping-pong the configuration.  Applied and
reverted transitions are recorded as ``control-action`` /
``control-revert`` events with the trace id of the span the transition
ran under.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.control.actions import (
    BoostRelayBudget,
    ControlAction,
    DrainGateway,
    RebalanceShadowing,
    TightenShed,
)
from repro.obs.events import (
    KIND_CONTROL_ACTION,
    KIND_CONTROL_REVERT,
    NULL_EVENTS,
    EventLog,
)
from repro.obs.metrics import NULL_METRICS, GaugeFamily, MetricsRegistry
from repro.obs.tracing import NULL_TRACER, Tracer
from repro.obs.windows import WindowedCounter
from repro.util.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.directory.replication import ShadowingAgreement
    from repro.federation.gateway import Gateway
    from repro.obs.slo import SLOEngine
    from repro.resilience.health import HealthMonitor
    from repro.sim.engine import Engine, PeriodicTask


@dataclass(frozen=True)
class ControlPolicy:
    """Tuning knobs of the control loop (all times simulated seconds).

    The defaults detect a degrading gateway within roughly one exchange
    interval of the acceptance benchmark — fast enough to beat the
    breaker's consecutive-failure threshold — while ``cooldown_s``
    keeps a flapping link from ping-ponging the configuration.
    """

    #: evaluation cadence of the loop
    tick_s: float = 0.25
    #: minimum sim-time between two transitions of the same action
    cooldown_s: float = 5.0
    #: health-trend window consulted per gateway
    trend_window_s: float = 10.0
    #: trend success ratio at/below which a link counts as degrading
    degrade_ratio: float = 0.75
    #: trend success ratio at/above which a drained link may recover
    recover_ratio: float = 0.9
    #: windowed gateway retry count that flags a surge
    retry_surge: int = 1
    #: ticks of retry history the surge window spans (1 = per-tick delta)
    retry_window_ticks: int = 1
    #: in-flight relays required for a surge to count (depth signal)
    queue_depth_limit: int = 1
    #: extra relay attempts granted while SLOs burn
    extra_attempts: int = 2
    #: shed-limit multiplier applied while SLOs burn
    shed_factor: float = 0.5
    #: shadowing period multiplier applied while SLOs burn
    shadow_slowdown: float = 4.0

    def __post_init__(self) -> None:
        if self.tick_s <= 0:
            raise ConfigurationError("control tick_s must be > 0")
        if self.cooldown_s < 0:
            raise ConfigurationError("control cooldown_s must be >= 0")
        if self.trend_window_s <= 0:
            raise ConfigurationError("control trend_window_s must be > 0")
        if self.retry_window_ticks < 1:
            raise ConfigurationError("control retry_window_ticks must be >= 1")


@dataclass
class _ManagedGateway:
    """One gateway under management and its drain action + signal memo.

    ``retry_window`` holds the gateway's retry deltas over the last
    ``retry_window_ticks`` control ticks (one ring slot per tick), so
    the surge signal is a sliding-window count, not a cumulative
    difference kept by hand.
    """

    key: str
    gateway: "Gateway"
    health: "HealthMonitor | None"
    drain: DrainGateway
    retry_window: WindowedCounter | None = None
    last_retries: int = 0


@dataclass
class _BurnDriven:
    """One action applied while any watched SLO burns."""

    action: ControlAction
    reason: str = field(default="slo-burn")


class ControlPlane:
    """Subscribes to burn/health/queue signals; applies typed actions."""

    def __init__(
        self,
        engine: "Engine",
        policy: ControlPolicy | None = None,
        metrics: MetricsRegistry | None = None,
        events: EventLog | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self._engine = engine
        self.policy = policy if policy is not None else ControlPolicy()
        self._obs: MetricsRegistry = metrics if metrics is not None else NULL_METRICS
        self._events: EventLog = events if events is not None else NULL_EVENTS
        self._tracer: Tracer = tracer if tracer is not None else NULL_TRACER
        self._task: "PeriodicTask | None" = None
        self._gateways: dict[str, _ManagedGateway] = {}
        self._burn_driven: list[_BurnDriven] = []
        #: objectives currently in a burn episode (named by the SLOEngine)
        self.burning: set[str] = set()
        self.actions_applied = 0
        self.actions_reverted = 0
        self.suppressed = 0
        self._retry_gauges: GaugeFamily = self._obs.gauge(
            "control.gateway.windowed_retries", labels=("key",)
        )

    # -- signal sources ----------------------------------------------------
    def watch_slo(self, slo: "SLOEngine") -> "ControlPlane":
        """Subscribe to *slo*'s edge-triggered burn alerts."""
        slo.add_burn_listener(self._on_burn)
        return self

    def _on_burn(self, name: str, burning: bool, status: dict[str, Any]) -> None:
        if burning:
            self.burning.add(name)
        else:
            self.burning.discard(name)
        if self._obs.enabled:
            self._obs.set_gauge("control.burning", len(self.burning))

    # -- managed components ------------------------------------------------
    def manage_gateway(
        self,
        key: str,
        gateway: "Gateway",
        health: "HealthMonitor | None" = None,
    ) -> "ControlPlane":
        """Manage one directed gateway: pre-emptive drain plus burn-time
        attempt-budget boost.

        *health* (when given) must be probing *key*; its
        :meth:`~repro.resilience.health.HealthMonitor.trend` is the
        degradation/recovery signal.  Without it the loop falls back to
        the gateway's own retry-surge/queue-depth signals alone.
        """
        if key in self._gateways:
            raise ConfigurationError(f"already managing gateway {key!r}")
        ticks = self.policy.retry_window_ticks
        self._gateways[key] = _ManagedGateway(
            key=key,
            gateway=gateway,
            health=health,
            drain=DrainGateway(key, gateway),
            retry_window=WindowedCounter(ticks * self.policy.tick_s, ticks),
            last_retries=gateway.retries,
        )
        self._burn_driven.append(
            _BurnDriven(BoostRelayBudget(key, gateway, self.policy.extra_attempts))
        )
        return self

    def manage_environment(self, key: str, environment: Any) -> "ControlPlane":
        """Tighten *environment*'s shed limit while watched SLOs burn."""
        self._burn_driven.append(
            _BurnDriven(TightenShed(key, environment, self.policy.shed_factor))
        )
        return self

    def manage_shadowing(
        self, key: str, agreement: "ShadowingAgreement"
    ) -> "ControlPlane":
        """Slow *agreement*'s pull cadence while watched SLOs burn."""
        self._burn_driven.append(
            _BurnDriven(
                RebalanceShadowing(key, agreement, self.policy.shadow_slowdown)
            )
        )
        return self

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "ControlPlane":
        """Arm the periodic evaluation tick (idempotent); returns self.

        A running plane keeps the engine queue non-empty — prefer
        ``world.run_for`` over ``world.run`` while it is live.
        """
        from repro.sim.engine import PeriodicTask

        if self._task is None:
            self._task = PeriodicTask(
                self._engine, self.policy.tick_s, self._tick, label="control-tick"
            ).start()
        return self

    def stop(self) -> None:
        """Stop evaluating (applied actions stay applied)."""
        if self._task is not None:
            self._task.stop()
            self._task = None

    # -- the loop ----------------------------------------------------------
    def _tick(self) -> None:
        now = self._engine.now
        for managed in self._gateways.values():
            self._evaluate_gateway(managed, now)
        burning = bool(self.burning)
        reason = (
            f"slo-burn:{min(self.burning)}" if burning else "burn-cleared"
        )
        for entry in self._burn_driven:
            self._transition(entry.action, burning, reason, now)
        if self._obs.enabled:
            applied = sum(
                1 for a in self._all_actions() if a.applied
            )
            self._obs.set_gauge("control.active_actions", applied)

    def _evaluate_gateway(self, managed: _ManagedGateway, now: float) -> None:
        gateway = managed.gateway
        managed.retry_window.push(gateway.retries - managed.last_retries)
        managed.last_retries = gateway.retries
        windowed_retries = managed.retry_window.delta()
        if self._obs.enabled:
            self._retry_gauges.labels(key=managed.key).set(windowed_retries)
        surge = (
            windowed_retries >= self.policy.retry_surge
            and gateway.in_flight >= self.policy.queue_depth_limit
        )
        trend = (
            managed.health.trend(managed.key, self.policy.trend_window_s)
            if managed.health is not None
            else None
        )
        degrading = surge or (
            trend is not None
            and trend.samples > 0
            and trend.success_ratio <= self.policy.degrade_ratio
        )
        if degrading:
            self._transition(
                managed.drain,
                True,
                "retry-surge" if surge else "health-trend",
                now,
            )
            return
        if trend is not None and trend.samples > 0:
            recovered = (
                trend.success_ratio >= self.policy.recover_ratio
                and managed.health.healthy(managed.key)
            )
        else:
            recovered = gateway.in_flight == 0
        if recovered:
            self._transition(managed.drain, False, "recovered", now)

    def _transition(
        self, action: ControlAction, want_applied: bool, reason: str, now: float
    ) -> None:
        """Drive *action* towards *want_applied* under hysteresis."""
        if action.applied == want_applied:
            return
        if now - action.last_transition < self.policy.cooldown_s:
            self.suppressed += 1
            if self._obs.enabled:
                self._obs.inc("control.suppressed")
            return
        name = "control.apply" if want_applied else "control.revert"
        with self._tracer.span(
            name, action=action.kind, target=action.target, reason=reason
        ) as span:
            changed = (
                action.apply(now) if want_applied else action.revert(now)
            )
            if not changed:
                return
            if want_applied:
                self.actions_applied += 1
                if self._obs.enabled:
                    self._obs.inc("control.actions")
            else:
                self.actions_reverted += 1
                if self._obs.enabled:
                    self._obs.inc("control.reverts")
            if self._events.enabled:
                self._events.record(
                    now,
                    KIND_CONTROL_ACTION if want_applied else KIND_CONTROL_REVERT,
                    trace_id=span.trace_id,
                    action=action.kind,
                    target=action.target,
                    reason=reason,
                )

    # -- introspection -----------------------------------------------------
    def _all_actions(self) -> list[ControlAction]:
        actions: list[ControlAction] = [m.drain for m in self._gateways.values()]
        actions.extend(entry.action for entry in self._burn_driven)
        return actions

    def describe(self) -> dict[str, Any]:
        """JSON-able loop state: burning set, action states, counters."""
        return {
            "burning": sorted(self.burning),
            "actions": [action.describe() for action in self._all_actions()],
            "applied": self.actions_applied,
            "reverted": self.actions_reverted,
            "suppressed": self.suppressed,
        }

    def fully_reverted(self) -> bool:
        """True when no action is currently applied (post-recovery check)."""
        return not any(action.applied for action in self._all_actions())
