"""Organisational rules: role-based deontic access decisions.

Re-uses the enterprise-viewpoint deontic vocabulary
(:mod:`repro.odp.viewpoints`) but evaluates it against the organisational
model: a person is allowed an action when at least one role they play is
permitted (or obliged) to do it and no role they play is prohibited.

The paper (section 4): "appropriate access control mechanisms.
(Traditionally, roles have been used to signify different access rights of
users.)" — and warns against being "too rigid and procedural" (section
6.1), which is why rules support *exceptions*: a person-level override that
either grants or revokes regardless of roles, modelling the human factor
the office-procedure systems forgot.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.odp.viewpoints import DeonticModality, PolicyStatement
from repro.org.relations import RelationStore
from repro.util.errors import AccessDeniedError


@dataclass(frozen=True)
class RuleException:
    """A person-level override of the role-derived decision."""

    person_id: str
    action: str
    target: str
    grant: bool
    justification: str = ""


@dataclass(frozen=True)
class RoleDelegation:
    """A time-bounded handover of a role's rights.

    Cooperative work routinely needs "Ana covers for Joan this week";
    rigid role systems force out-of-band workarounds (the paper's office-
    procedure warning).  A delegation lets *to_person* act under
    *role_id* until simulated time *until*.
    """

    role_id: str
    from_person: str
    to_person: str
    until: float
    justification: str = ""


class RuleEngine:
    """Evaluates role-based rules plus person-level exceptions."""

    def __init__(self, relations: RelationStore) -> None:
        self._relations = relations
        self._statements: list[PolicyStatement] = []
        self._exceptions: list[RuleException] = []
        self._delegations: list[RoleDelegation] = []
        self.evaluations = 0

    # -- authoring ----------------------------------------------------------
    def permit(self, role_id: str, action: str, target: str = "*") -> None:
        """Permit a role to perform an action."""
        self._statements.append(
            PolicyStatement(DeonticModality.PERMISSION, role_id, action, target)
        )

    def oblige(self, role_id: str, action: str, target: str = "*") -> None:
        """Oblige (and hence permit) a role to perform an action."""
        self._statements.append(
            PolicyStatement(DeonticModality.OBLIGATION, role_id, action, target)
        )

    def prohibit(self, role_id: str, action: str, target: str = "*") -> None:
        """Prohibit a role from performing an action."""
        self._statements.append(
            PolicyStatement(DeonticModality.PROHIBITION, role_id, action, target)
        )

    def add_exception(
        self, person_id: str, action: str, target: str, grant: bool, justification: str = ""
    ) -> None:
        """Add a person-level override (the 'human factor' escape hatch)."""
        self._exceptions.append(
            RuleException(person_id, action, target, grant, justification)
        )

    def statements(self) -> list[PolicyStatement]:
        """All role statements authored so far."""
        return list(self._statements)

    def delegate_role(
        self,
        role_id: str,
        from_person: str,
        to_person: str,
        until: float,
        justification: str = "",
    ) -> RoleDelegation:
        """Delegate a role's rights until simulated time *until*.

        The delegator must actually play the role (you cannot hand over
        rights you do not hold).
        """
        if role_id not in self._relations.roles_of(from_person):
            raise AccessDeniedError(
                f"{from_person} does not play role {role_id!r} and cannot delegate it"
            )
        delegation = RoleDelegation(role_id, from_person, to_person, until, justification)
        self._delegations.append(delegation)
        return delegation

    def revoke_delegation(self, role_id: str, to_person: str) -> bool:
        """Remove any active delegation of *role_id* to *to_person*."""
        before = len(self._delegations)
        self._delegations = [
            d
            for d in self._delegations
            if not (d.role_id == role_id and d.to_person == to_person)
        ]
        return len(self._delegations) < before

    def effective_roles(
        self, person_id: str, project: str | None = None, now: float = 0.0
    ) -> list[str]:
        """Played roles plus unexpired delegations at time *now*."""
        roles = set(self._relations.roles_of(person_id, project=project))
        for delegation in self._delegations:
            if delegation.to_person == person_id and now < delegation.until:
                roles.add(delegation.role_id)
        return sorted(roles)

    # -- evaluation -----------------------------------------------------------
    def allowed(
        self,
        person_id: str,
        action: str,
        target: str = "*",
        project: str | None = None,
        now: float = 0.0,
    ) -> bool:
        """Decide whether a person may perform *action* on *target*.

        *now* is the simulated time used to evaluate role delegations.
        """
        self.evaluations += 1
        for exception in self._exceptions:
            if exception.person_id == person_id and exception.action == action and (
                exception.target in ("*", target)
            ):
                return exception.grant
        roles = self.effective_roles(person_id, project=project, now=now)
        relevant = [
            s
            for s in self._statements
            if s.role in roles and s.action == action and s.target in ("*", target)
        ]
        if any(s.modality is DeonticModality.PROHIBITION for s in relevant):
            return False
        return any(
            s.modality in (DeonticModality.PERMISSION, DeonticModality.OBLIGATION)
            for s in relevant
        )

    def require(
        self,
        person_id: str,
        action: str,
        target: str = "*",
        project: str | None = None,
        now: float = 0.0,
    ) -> None:
        """Raise :class:`AccessDeniedError` unless allowed."""
        if not self.allowed(person_id, action, target, project=project, now=now):
            raise AccessDeniedError(
                f"{person_id} may not {action} on {target}"
                + (f" in project {project}" if project else "")
            )

    def obligations_of(self, person_id: str, project: str | None = None) -> list[PolicyStatement]:
        """Obligations implied by the roles a person plays."""
        roles = self._relations.roles_of(person_id, project=project)
        return [
            s
            for s in self._statements
            if s.role in roles and s.modality is DeonticModality.OBLIGATION
        ]
