"""Typed organisational relations.

The organisational model is "constructed from a set of organisational
objects ..., organisational relations and rules" (paper section 5).  A
:class:`RelationStore` holds typed edges between object ids and answers the
queries the environment needs: which roles does a person play (optionally
scoped to a project), who is in a unit, who manages whom, which resources a
project uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.util.errors import ConfigurationError


class RelationKind(Enum):
    """The relation vocabulary of the organisational model."""

    MEMBER_OF = "member-of"          # person -> unit | project
    PLAYS_ROLE = "plays-role"        # person -> role (scope: project or "")
    REPORTS_TO = "reports-to"        # person -> person
    MANAGES = "manages"              # person -> unit | project
    OWNS = "owns"                    # unit | project -> resource
    USES = "uses"                    # project -> resource
    PART_OF = "part-of"              # unit -> unit


@dataclass(frozen=True)
class Relation:
    """One typed, optionally scoped edge between organisational objects."""

    kind: RelationKind
    source: str
    target: str
    scope: str = ""

    def __post_init__(self) -> None:
        if not self.source or not self.target:
            raise ConfigurationError("relation endpoints must be non-empty")


class RelationStore:
    """Holds relations and answers structural queries."""

    def __init__(self) -> None:
        self._relations: list[Relation] = []
        self._index: set[Relation] = set()

    def relate(self, kind: RelationKind, source: str, target: str, scope: str = "") -> Relation:
        """Add a relation (idempotent — duplicates are ignored)."""
        relation = Relation(kind, source, target, scope)
        if relation not in self._index:
            self._relations.append(relation)
            self._index.add(relation)
        return relation

    def unrelate(self, kind: RelationKind, source: str, target: str, scope: str = "") -> bool:
        """Remove a relation; True when it existed."""
        relation = Relation(kind, source, target, scope)
        if relation in self._index:
            self._index.discard(relation)
            self._relations.remove(relation)
            return True
        return False

    def exists(self, kind: RelationKind, source: str, target: str, scope: str = "") -> bool:
        """True when the exact relation is present."""
        return Relation(kind, source, target, scope) in self._index

    def targets(self, kind: RelationKind, source: str, scope: str | None = None) -> list[str]:
        """All targets related from *source* by *kind* (any scope when None)."""
        return [
            r.target
            for r in self._relations
            if r.kind is kind and r.source == source and (scope is None or r.scope == scope)
        ]

    def sources(self, kind: RelationKind, target: str, scope: str | None = None) -> list[str]:
        """All sources related to *target* by *kind*."""
        return [
            r.source
            for r in self._relations
            if r.kind is kind and r.target == target and (scope is None or r.scope == scope)
        ]

    # -- convenience queries ---------------------------------------------------
    def roles_of(self, person_id: str, project: str | None = None) -> list[str]:
        """Role ids a person plays; *project* scoping includes global roles."""
        if project is None:
            return self.targets(RelationKind.PLAYS_ROLE, person_id)
        scoped = self.targets(RelationKind.PLAYS_ROLE, person_id, scope=project)
        global_ = self.targets(RelationKind.PLAYS_ROLE, person_id, scope="")
        return sorted(set(scoped) | set(global_))

    def players_of(self, role_id: str, project: str | None = None) -> list[str]:
        """Person ids playing a role."""
        if project is None:
            return self.sources(RelationKind.PLAYS_ROLE, role_id)
        scoped = self.sources(RelationKind.PLAYS_ROLE, role_id, scope=project)
        global_ = self.sources(RelationKind.PLAYS_ROLE, role_id, scope="")
        return sorted(set(scoped) | set(global_))

    def members_of(self, container_id: str) -> list[str]:
        """Person ids that are members of a unit or project."""
        return self.sources(RelationKind.MEMBER_OF, container_id)

    def memberships_of(self, person_id: str) -> list[str]:
        """Units/projects a person is a member of."""
        return self.targets(RelationKind.MEMBER_OF, person_id)

    def management_chain(self, person_id: str, limit: int = 32) -> list[str]:
        """The person's reports-to chain, nearest manager first."""
        chain: list[str] = []
        current = person_id
        while len(chain) < limit:
            managers = self.targets(RelationKind.REPORTS_TO, current)
            if not managers:
                break
            manager = managers[0]
            if manager in chain or manager == person_id:
                break  # defensive against cycles
            chain.append(manager)
            current = manager
        return chain

    def resources_of(self, project_id: str) -> list[str]:
        """Resources a project owns or uses."""
        return sorted(
            set(self.targets(RelationKind.OWNS, project_id))
            | set(self.targets(RelationKind.USES, project_id))
        )

    def shared_resources(self, project_a: str, project_b: str) -> list[str]:
        """Resources used by both projects (the paper's 'common resources')."""
        return sorted(set(self.resources_of(project_a)) & set(self.resources_of(project_b)))
