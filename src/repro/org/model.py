"""Organisational objects: people, roles, units, resources, projects.

Paper section 5, "The Organisational Model": *"The aim of the
organisational model is to make explicit the sharing of organisational
resources, policies and regulations.  The model is constructed from a set
of organisational objects (e.g. resources, projects, people, roles),
organisational relations and rules."*

This module defines those objects and the :class:`Organisation` aggregate;
relations live in :mod:`repro.org.relations`, rules in
:mod:`repro.org.rules`, inter-organisational policy in
:mod:`repro.org.policy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any

from repro.messaging.names import OrName
from repro.util.errors import ConfigurationError, UnknownObjectError


@dataclass(frozen=True)
class Person:
    """A member of an organisation."""

    person_id: str
    name: str
    organisation: str
    site: str = ""
    or_name: OrName | None = None
    directory_dn: str = ""

    def __post_init__(self) -> None:
        if not self.person_id or not self.name:
            raise ConfigurationError("person needs an id and a name")


@dataclass(frozen=True)
class Role:
    """A named organisational role (signifies access rights — section 4)."""

    role_id: str
    name: str
    organisation: str
    description: str = ""


class ResourceKind(Enum):
    """Classes of shareable organisational resources."""

    EQUIPMENT = "equipment"
    ROOM = "room"
    BUDGET = "budget"
    DOCUMENT_STORE = "document-store"
    SERVICE = "service"


@dataclass(frozen=True)
class Resource:
    """A shareable resource with finite capacity."""

    resource_id: str
    name: str
    organisation: str
    kind: ResourceKind = ResourceKind.EQUIPMENT
    capacity: int = 1

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigurationError("resource capacity must be >= 1")


@dataclass(frozen=True)
class OrgUnit:
    """A department/section within an organisation (may nest)."""

    unit_id: str
    name: str
    organisation: str
    parent_unit: str = ""


@dataclass(frozen=True)
class Project:
    """An ongoing programme of cooperative activities."""

    project_id: str
    name: str
    organisation: str
    description: str = ""


class Organisation:
    """One organisation: a registry of its objects.

    The organisation is the unit of policy: inter-organisational
    cooperation is governed by :mod:`repro.org.policy`.
    """

    def __init__(self, org_id: str, name: str) -> None:
        if not org_id:
            raise ConfigurationError("organisation id must be non-empty")
        self.org_id = org_id
        self.name = name
        self._persons: dict[str, Person] = {}
        self._roles: dict[str, Role] = {}
        self._units: dict[str, OrgUnit] = {}
        self._resources: dict[str, Resource] = {}
        self._projects: dict[str, Project] = {}

    # -- registration -------------------------------------------------------
    def add_person(self, person: Person) -> Person:
        """Register a person; they must belong to this organisation."""
        self._check_owner(person.organisation, person.person_id)
        self._check_new(self._persons, person.person_id)
        self._persons[person.person_id] = person
        return person

    def remove_person(self, person_id: str) -> Person:
        """Deregister a person (they left or moved organisation)."""
        try:
            return self._persons.pop(person_id)
        except KeyError:
            raise UnknownObjectError(f"unknown person {person_id!r}") from None

    def add_role(self, role: Role) -> Role:
        """Register a role."""
        self._check_owner(role.organisation, role.role_id)
        self._check_new(self._roles, role.role_id)
        self._roles[role.role_id] = role
        return role

    def add_unit(self, unit: OrgUnit) -> OrgUnit:
        """Register a unit; a non-empty parent must already exist."""
        self._check_owner(unit.organisation, unit.unit_id)
        self._check_new(self._units, unit.unit_id)
        if unit.parent_unit and unit.parent_unit not in self._units:
            raise UnknownObjectError(f"parent unit {unit.parent_unit!r} unknown")
        self._units[unit.unit_id] = unit
        return unit

    def add_resource(self, resource: Resource) -> Resource:
        """Register a resource."""
        self._check_owner(resource.organisation, resource.resource_id)
        self._check_new(self._resources, resource.resource_id)
        self._resources[resource.resource_id] = resource
        return resource

    def add_project(self, project: Project) -> Project:
        """Register a project."""
        self._check_owner(project.organisation, project.project_id)
        self._check_new(self._projects, project.project_id)
        self._projects[project.project_id] = project
        return project

    def _check_owner(self, organisation: str, object_id: str) -> None:
        if organisation != self.org_id:
            raise ConfigurationError(
                f"object {object_id!r} belongs to {organisation!r}, not {self.org_id!r}"
            )

    @staticmethod
    def _check_new(registry: dict[str, Any], object_id: str) -> None:
        if object_id in registry:
            raise ConfigurationError(f"object {object_id!r} already registered")

    # -- lookup ---------------------------------------------------------------
    def person(self, person_id: str) -> Person:
        """Look up a person."""
        return self._get(self._persons, person_id, "person")

    def role(self, role_id: str) -> Role:
        """Look up a role."""
        return self._get(self._roles, role_id, "role")

    def unit(self, unit_id: str) -> OrgUnit:
        """Look up a unit."""
        return self._get(self._units, unit_id, "unit")

    def resource(self, resource_id: str) -> Resource:
        """Look up a resource."""
        return self._get(self._resources, resource_id, "resource")

    def project(self, project_id: str) -> Project:
        """Look up a project."""
        return self._get(self._projects, project_id, "project")

    @staticmethod
    def _get(registry: dict[str, Any], object_id: str, kind: str) -> Any:
        try:
            return registry[object_id]
        except KeyError:
            raise UnknownObjectError(f"unknown {kind} {object_id!r}") from None

    def persons(self) -> list[Person]:
        """All registered persons."""
        return list(self._persons.values())

    def roles(self) -> list[Role]:
        """All registered roles."""
        return list(self._roles.values())

    def units(self) -> list[OrgUnit]:
        """All registered units."""
        return list(self._units.values())

    def resources(self) -> list[Resource]:
        """All registered resources."""
        return list(self._resources.values())

    def projects(self) -> list[Project]:
        """All registered projects."""
        return list(self._projects.values())
