"""The organisational knowledge base.

Paper section 4: the environment must "maintain a knowledge base of
people, resources and on-going activities" and provide "mechanisms for
modelling organisations".  Section 6.1 proposes that this knowledge base
"will be associated to the trader, containing or dictating among other the
trading policy" — realised here by :meth:`OrganisationalKnowledgeBase.trader_policy_hook`
and measured by experiment E5.

The knowledge base aggregates organisations, their relations, rules and
inter-org policies, and can publish its contents into the X.500-style
directory so that non-CSCW applications find the same data.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable

from repro.directory.dit import DirectoryInformationTree
from repro.odp.trader import ImportContext, PolicyHook, ServiceOffer
from repro.org.model import Organisation, Person
from repro.org.policy import INTERACTION_SERVICE_IMPORT, PolicyRegistry
from repro.org.relations import RelationStore
from repro.org.rules import RuleEngine
from repro.util.errors import UnknownObjectError


class OrganisationalKnowledgeBase:
    """Aggregated organisational knowledge for one CSCW environment."""

    def __init__(self) -> None:
        self._organisations: dict[str, Organisation] = {}
        self.relations = RelationStore()
        self.rules = RuleEngine(self.relations)
        self.policies = PolicyRegistry()
        self._listeners: list[Callable[[str, str, str], None]] = []
        self.policies.add_listener(self._policies_changed)

    # -- change notification -----------------------------------------------
    def add_listener(self, listener: Callable[[str, str, str], None]) -> None:
        """Call *listener*(kind, entity_id, org) after KB mutations.

        *kind* is ``"organisation"``, ``"person"`` or ``"policy"``; the
        other two arguments scope the mutation so listeners can evict by
        key instead of flushing wholesale:

        * ``"person"`` — *entity_id* is the person id, *org* the
          organisation they now (or last) belonged to;
        * ``"organisation"`` — both are the organisation id;
        * ``"policy"`` — *entity_id*/*org* are the two organisation ids
          of the mutated policy pair.

        The environment's exchange resolution cache subscribes here so
        that memoised org/policy verdicts never outlive the facts they
        were derived from.
        """
        self._listeners.append(listener)

    def _notify(self, kind: str, entity_id: str = "", org: str = "") -> None:
        for listener in self._listeners:
            listener(kind, entity_id, org)

    def _policies_changed(self, from_org: str, to_org: str) -> None:
        self._notify("policy", from_org, to_org)

    # -- organisations -----------------------------------------------------
    def add_organisation(self, organisation: Organisation) -> Organisation:
        """Register an organisation."""
        self._organisations[organisation.org_id] = organisation
        self._notify("organisation", organisation.org_id, organisation.org_id)
        return organisation

    def organisation(self, org_id: str) -> Organisation:
        """Look up an organisation."""
        try:
            return self._organisations[org_id]
        except KeyError:
            raise UnknownObjectError(f"unknown organisation {org_id!r}") from None

    def organisations(self) -> list[Organisation]:
        """All registered organisations."""
        return list(self._organisations.values())

    def find_person(self, person_id: str) -> Person:
        """Find a person across all organisations."""
        for organisation in self._organisations.values():
            try:
                return organisation.person(person_id)
            except UnknownObjectError:
                continue
        raise UnknownObjectError(f"person {person_id!r} not found in any organisation")

    def organisation_of(self, person_id: str) -> str:
        """The organisation id a person belongs to."""
        return self.find_person(person_id).organisation

    def add_person(self, person: Person) -> Person:
        """Register a person with their (already registered) organisation.

        Prefer this over ``Organisation.add_person`` for mid-run joins —
        it fires the KB change listeners so memoised resolution state is
        invalidated.
        """
        self.organisation(person.organisation).add_person(person)
        self._notify("person", person.person_id, person.organisation)
        return person

    def remove_person(self, person_id: str) -> Person:
        """Deregister a person from the knowledge base entirely.

        The inverse of :meth:`add_person`: the person leaves their
        organisation and listeners fire so memoised routes touching them
        are evicted.  Returns the removed :class:`Person` record.
        """
        person = self.find_person(person_id)
        self.organisation(person.organisation).remove_person(person_id)
        self._notify("person", person_id, person.organisation)
        return person

    def move_person(self, person_id: str, to_org: str) -> Person:
        """Move a person to another organisation mid-run.

        The person is removed from their current organisation and
        re-registered (same id/name) under *to_org*; listeners fire so
        the next exchange resolves against the new membership.
        """
        person = self.find_person(person_id)
        destination = self.organisation(to_org)
        self.organisation(person.organisation).remove_person(person_id)
        moved = replace(person, organisation=to_org)
        destination.add_person(moved)
        self._notify("person", person_id, to_org)
        return moved

    # -- trader integration (paper section 6.1) ------------------------------
    def trader_policy_hook(self, exporter_org: "dict[str, str] | None" = None) -> PolicyHook:
        """Build the trading-policy predicate for an ODP trader.

        An offer is visible to an importer only when the importer's
        organisation and the exporter's organisation have compatible
        policies for service import.  *exporter_org* optionally maps
        exporter names to organisation ids; by default the offer's
        ``exporter`` field is taken to be the organisation id itself.
        """
        mapping = dict(exporter_org or {})

        def hook(offer: ServiceOffer, context: ImportContext) -> bool:
            if not context.organisation:
                return True  # anonymous imports see everything (plain ODP)
            offer_org = mapping.get(offer.exporter, offer.exporter)
            if not offer_org:
                return True
            return self.policies.compatible(
                context.organisation, offer_org, INTERACTION_SERVICE_IMPORT
            )

        return hook

    # -- directory publication ----------------------------------------------
    def publish_expertise(
        self,
        dit: DirectoryInformationTree,
        expertise: "Any",
        country: str = "ES",
    ) -> int:
        """Annotate published person entries with their capabilities.

        *expertise* is an :class:`~repro.expertise.model.ExpertiseRegistry`;
        capabilities become multi-valued ``capability`` attributes of the
        form ``skill:level`` so the white pages double as yellow pages
        ("find me an expert").  Returns the number of entries annotated.
        """
        annotated = 0
        for organisation in self._organisations.values():
            for person in organisation.persons():
                if not expertise.known(person.person_id):
                    continue
                profile = expertise.get(person.person_id)
                capabilities = [
                    f"{c.skill}:{c.level}" for c in profile.capabilities()
                ]
                if not capabilities:
                    continue
                person_dn = f"cn={person.name},o={organisation.name},c={country}"
                if not dit.exists(person_dn):
                    continue
                dit.modify(person_dn, replace={"capability": capabilities})
                annotated += 1
        return annotated

    def publish_to_directory(self, dit: DirectoryInformationTree, country: str = "ES") -> int:
        """Write organisations, units and people into a DIT.

        Returns the number of entries created.  Layout:
        ``c=<country>`` / ``o=<org>`` / ``ou=<unit>`` and people under
        their organisation.  Existing entries are left in place.
        """
        created = 0
        country_dn = f"c={country}"
        if not dit.exists(country_dn):
            dit.add(country_dn, {"objectclass": ["country"]})
            created += 1
        for organisation in self._organisations.values():
            org_dn = f"o={organisation.name},{country_dn}"
            if not dit.exists(org_dn):
                dit.add(org_dn, {"objectclass": ["organization"]})
                created += 1
            for unit in organisation.units():
                unit_dn = f"ou={unit.name},{org_dn}"
                if not dit.exists(unit_dn):
                    dit.add(unit_dn, {"objectclass": ["organizationalunit"]})
                    created += 1
            for person in organisation.persons():
                person_dn = f"cn={person.name},{org_dn}"
                if dit.exists(person_dn):
                    continue
                attributes = {
                    "objectclass": ["person"],
                    "sn": [person.name.split()[-1]],
                    "role": self.relations.roles_of(person.person_id),
                }
                if person.or_name is not None:
                    attributes["mail"] = [str(person.or_name)]
                dit.add(person_dn, attributes)
                created += 1
        return created
