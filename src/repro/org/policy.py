"""Inter-organisational policies and compatibility.

Paper, section 4 ("Transparency of organisation"): *"Inter-organisational
connections should/could hide the complexity of different organisational
... and inter-organisational (free market or other) policies.  Sometimes,
interaction is not possible due to incompatible policies (or cost too
high)."*

An :class:`InterOrgPolicy` states, between an ordered pair of
organisations, which interaction kinds are allowed and at what cost.  The
:class:`PolicyRegistry` answers compatibility questions; organisation
transparency (:mod:`repro.environment.transparency`) and the trader policy
hook (experiment E5) are its two consumers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.util.errors import PolicyViolationError

#: common interaction kinds used across the library
INTERACTION_MESSAGE = "message"
INTERACTION_REALTIME = "realtime"
INTERACTION_SHARE_DOCUMENT = "share-document"
INTERACTION_SHARE_RESOURCE = "share-resource"
INTERACTION_SERVICE_IMPORT = "service-import"


@dataclass(frozen=True)
class InterOrgPolicy:
    """What one organisation permits toward another.

    ``allowed`` lists interaction kinds; ``"*"`` allows everything.
    ``cost`` is an abstract per-interaction cost (0 = free); interactions
    whose cost exceeds a participant's budget are treated as incompatible
    ("or cost too high").
    """

    from_org: str
    to_org: str
    allowed: frozenset[str] = frozenset()
    cost: float = 0.0

    def permits(self, interaction: str) -> bool:
        """True when the interaction kind is allowed by this policy."""
        return "*" in self.allowed or interaction in self.allowed


class PolicyRegistry:
    """All inter-organisational policies, with compatibility queries.

    Policies are directional; cooperation requires both directions to
    permit the interaction.  Intra-organisational interaction is always
    permitted at zero cost.
    """

    def __init__(self) -> None:
        self._policies: dict[tuple[str, str], InterOrgPolicy] = {}
        self.checks = 0
        self.denials = 0
        self._listeners: list[Callable[[str, str], None]] = []

    def add_listener(self, listener: Callable[[str, str], None]) -> None:
        """Call *listener*(from_org, to_org) after every policy mutation.

        Consumers that memoise compatibility verdicts (the environment's
        exchange resolution cache) subscribe here to invalidate.  The org
        pair scopes the mutation: only verdicts touching *both*
        organisations can have changed, so listeners may evict by key
        instead of flushing wholesale.  A ``symmetric`` declare or revoke
        fires once — the unordered pair is the same.
        """
        self._listeners.append(listener)

    def _notify(self, from_org: str, to_org: str) -> None:
        for listener in self._listeners:
            listener(from_org, to_org)

    def declare(
        self,
        from_org: str,
        to_org: str,
        allowed: set[str] | list[str],
        cost: float = 0.0,
        symmetric: bool = False,
    ) -> None:
        """Declare (or replace) a policy; optionally both directions."""
        self._policies[(from_org, to_org)] = InterOrgPolicy(
            from_org, to_org, frozenset(allowed), cost
        )
        if symmetric:
            self._policies[(to_org, from_org)] = InterOrgPolicy(
                to_org, from_org, frozenset(allowed), cost
            )
        self._notify(from_org, to_org)

    def revoke(self, from_org: str, to_org: str, symmetric: bool = False) -> int:
        """Remove a declared policy; returns how many directions existed.

        Revoking a direction that was never declared is a no-op (returns
        0 for it), so tearing down a partnership is idempotent.
        """
        removed = 0
        if self._policies.pop((from_org, to_org), None) is not None:
            removed += 1
        if symmetric and self._policies.pop((to_org, from_org), None) is not None:
            removed += 1
        if removed:
            self._notify(from_org, to_org)
        return removed

    def policy_between(self, from_org: str, to_org: str) -> InterOrgPolicy | None:
        """The declared policy, or None when nothing is declared."""
        return self._policies.get((from_org, to_org))

    def compatible(
        self,
        org_a: str,
        org_b: str,
        interaction: str,
        budget: float | None = None,
    ) -> bool:
        """Can *org_a* and *org_b* perform *interaction* together?

        Both directions must permit it; when *budget* is given, the summed
        directional cost must not exceed it.
        """
        self.checks += 1
        if org_a == org_b:
            return True
        forward = self._policies.get((org_a, org_b))
        backward = self._policies.get((org_b, org_a))
        if forward is None or backward is None:
            self.denials += 1
            return False
        if not (forward.permits(interaction) and backward.permits(interaction)):
            self.denials += 1
            return False
        if budget is not None and forward.cost + backward.cost > budget:
            self.denials += 1
            return False
        return True

    def require_compatible(
        self, org_a: str, org_b: str, interaction: str, budget: float | None = None
    ) -> None:
        """Raise :class:`PolicyViolationError` unless compatible."""
        if not self.compatible(org_a, org_b, interaction, budget=budget):
            raise PolicyViolationError(
                f"organisations {org_a!r} and {org_b!r} have no compatible policy "
                f"for {interaction!r}"
            )

    def interaction_cost(self, org_a: str, org_b: str) -> float:
        """Summed directional cost between two organisations (0 within one)."""
        if org_a == org_b:
            return 0.0
        forward = self._policies.get((org_a, org_b))
        backward = self._policies.get((org_b, org_a))
        if forward is None or backward is None:
            raise PolicyViolationError(f"no policy between {org_a!r} and {org_b!r}")
        return forward.cost + backward.cost

    def partners_of(self, org: str, interaction: str) -> list[str]:
        """Organisations with which *org* can perform *interaction*."""
        candidates = {
            p.to_org for (from_org, _), p in self._policies.items() if from_org == org
        }
        return sorted(c for c in candidates if self.compatible(org, c, interaction))
