"""The Organisational Model (paper section 5).

Organisational objects (people, roles, units, resources, projects),
typed relations, role-based deontic rules with person-level exceptions,
inter-organisational policies, and the organisational knowledge base that
feeds the trader and the directory.
"""

from repro.org.knowledge_base import OrganisationalKnowledgeBase
from repro.org.model import (
    Organisation,
    OrgUnit,
    Person,
    Project,
    Resource,
    ResourceKind,
    Role,
)
from repro.org.policy import (
    INTERACTION_MESSAGE,
    INTERACTION_REALTIME,
    INTERACTION_SERVICE_IMPORT,
    INTERACTION_SHARE_DOCUMENT,
    INTERACTION_SHARE_RESOURCE,
    InterOrgPolicy,
    PolicyRegistry,
)
from repro.org.relations import Relation, RelationKind, RelationStore
from repro.org.rules import RoleDelegation, RuleEngine, RuleException

__all__ = [
    "OrganisationalKnowledgeBase",
    "Organisation",
    "OrgUnit",
    "Person",
    "Project",
    "Resource",
    "ResourceKind",
    "Role",
    "INTERACTION_MESSAGE",
    "INTERACTION_REALTIME",
    "INTERACTION_SERVICE_IMPORT",
    "INTERACTION_SHARE_DOCUMENT",
    "INTERACTION_SHARE_RESOURCE",
    "InterOrgPolicy",
    "PolicyRegistry",
    "Relation",
    "RelationKind",
    "RelationStore",
    "RoleDelegation",
    "RuleEngine",
    "RuleException",
]
