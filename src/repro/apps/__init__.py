"""Groupware applications covering the time-space matrix (Figure 1).

Workalikes of the systems the paper cites: COM-style conferencing,
Object-Lens-style messaging, Shared-X-style WYSIWIS editing, COLAB-style
meeting rooms, DOMINO-style workflow, plus a deliberately non-CSCW
document processor (section 6.2).
"""

from repro.apps.base import Delivery, GroupwareApp
from repro.apps.conferencing import Conference, ConferenceEntry, ConferencingSystem
from repro.apps.document import DocumentProcessor
from repro.apps.meeting_room import AgendaPoint, BoardItem, MeetingRoom
from repro.apps.message_system import Memo, MessageSystem, Rule
from repro.apps.shared_editor import EditOp, SharedEditor
from repro.apps.workflow import Case, ParallelSteps, Procedure, ProcedureStep, WorkflowSystem

__all__ = [
    "Delivery",
    "GroupwareApp",
    "Conference",
    "ConferenceEntry",
    "ConferencingSystem",
    "DocumentProcessor",
    "AgendaPoint",
    "BoardItem",
    "MeetingRoom",
    "Memo",
    "MessageSystem",
    "Rule",
    "EditOp",
    "SharedEditor",
    "Case",
    "ParallelSteps",
    "Procedure",
    "ProcedureStep",
    "WorkflowSystem",
]
