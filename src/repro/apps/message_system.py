"""Semi-structured message system (Object Lens workalike).

Paper reference [7] (Malone & Lai, *Object Lens: a spreadsheet for
cooperative work*): messages are typed templates with named fields, and
user-authored **rules** process incoming messages automatically (file
into a folder, forward, mark urgent).  This is the app that most benefits
from the environment's interchange: its typed fields survive translation
through the common form's ``attributes``.

Quadrant: different time / different place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.apps.base import GroupwareApp
from repro.environment.registry import Q_DIFFERENT_TIME_DIFFERENT_PLACE
from repro.information.interchange import FormatConverter, make_common
from repro.util.errors import ConfigurationError, UnknownObjectError
from repro.util.ids import IdFactory


@dataclass
class Memo:
    """One semi-structured message."""

    memo_id: str
    template: str
    subject: str
    text: str
    fields: dict[str, Any]
    sender: str = ""
    folder: str = "inbox"
    flags: set[str] = field(default_factory=set)


@dataclass(frozen=True)
class Rule:
    """An Object-Lens-style processing rule.

    ``condition`` maps field names to required values (all must match;
    the pseudo-fields ``template`` and ``sender`` are also matchable).
    ``action`` is ``("file", folder)``, ``("flag", flag)`` or
    ``("forward", person_id)``.
    """

    name: str
    condition: dict[str, Any]
    action: tuple[str, str]

    def matches(self, memo: Memo) -> bool:
        """True when every condition entry matches the memo."""
        for key, expected in self.condition.items():
            if key == "template":
                actual: Any = memo.template
            elif key == "sender":
                actual = memo.sender
            else:
                actual = memo.fields.get(key)
            if actual != expected:
                return False
        return True


class MessageSystem(GroupwareApp):
    """An Object-Lens-style semi-structured message application."""

    app_name = "message-system"
    quadrants = [Q_DIFFERENT_TIME_DIFFERENT_PLACE]

    def __init__(self, instance_name: str = "") -> None:
        super().__init__(instance_name)
        #: person -> folder -> memos
        self._folders: dict[str, dict[str, list[Memo]]] = {}
        self._templates: dict[str, list[str]] = {
            "plain": [],
            "action-request": ["action", "deadline"],
            "meeting-announcement": ["where", "when"],
        }
        self._rules: dict[str, list[Rule]] = {}
        self._forward_hook: Callable[[str, str, Memo], None] | None = None
        self._ids = IdFactory()
        self.auto_processed = 0

    def converter(self) -> FormatConverter:
        """Native format ``memo``: subject/text/template/fields."""
        return FormatConverter(
            "memo",
            to_common=lambda d: make_common(
                "note",
                d.get("subject", ""),
                d.get("text", ""),
                template=d.get("template", "plain"),
                **d.get("fields", {}),
            ),
            from_common=lambda c: {
                "subject": c["title"],
                "text": c["body"],
                "template": c["attributes"].get("template", "plain"),
                "fields": {
                    k: v for k, v in c["attributes"].items() if k != "template"
                },
            },
        )

    # -- templates -------------------------------------------------------------
    def define_template(self, name: str, required_fields: list[str]) -> None:
        """Add a message template (user-tailorable structure)."""
        if name in self._templates:
            raise ConfigurationError(f"template {name!r} already defined")
        self._templates[name] = list(required_fields)

    def templates(self) -> list[str]:
        """All template names, sorted."""
        return sorted(self._templates)

    # -- rules ---------------------------------------------------------------------
    def add_rule(self, person_id: str, rule: Rule) -> None:
        """Install a processing rule for a person's incoming memos."""
        self._rules.setdefault(person_id, []).append(rule)

    def set_forward_hook(self, hook: Callable[[str, str, Memo], None]) -> None:
        """Set how 'forward' actions are executed: hook(from, to, memo)."""
        self._forward_hook = hook

    # -- messaging --------------------------------------------------------------------
    def write_memo(
        self,
        sender: str,
        template: str,
        subject: str,
        text: str,
        fields: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Author a native memo document (validating template fields)."""
        required = self._templates.get(template)
        if required is None:
            raise UnknownObjectError(f"unknown template {template!r}")
        given = dict(fields or {})
        missing = [f for f in required if f not in given]
        if missing:
            raise ConfigurationError(f"template {template!r} requires fields {missing}")
        return {
            "subject": subject,
            "text": text,
            "template": template,
            "fields": given,
            "sender": sender,
        }

    def place(self, person_id: str, memo: Memo) -> Memo:
        """File a memo for a person, running their rules."""
        folders = self._folders.setdefault(person_id, {})
        for rule in self._rules.get(person_id, []):
            if not rule.matches(memo):
                continue
            kind, argument = rule.action
            self.auto_processed += 1
            if kind == "file":
                memo.folder = argument
            elif kind == "flag":
                memo.flags.add(argument)
            elif kind == "forward" and self._forward_hook is not None:
                self._forward_hook(person_id, argument, memo)
        folders.setdefault(memo.folder, []).append(memo)
        return memo

    def folder(self, person_id: str, folder: str = "inbox") -> list[Memo]:
        """Memos in one of a person's folders."""
        return list(self._folders.get(person_id, {}).get(folder, []))

    def folders_of(self, person_id: str) -> list[str]:
        """A person's folder names, sorted."""
        return sorted(self._folders.get(person_id, {}))

    # -- environment integration -----------------------------------------------------
    def on_receive(self, person_id: str, document: dict[str, Any], info: dict[str, Any]) -> None:
        """Environment deliveries become memos and flow through rules."""
        memo = Memo(
            memo_id=self._ids.next("memo"),
            template=document.get("template", "plain"),
            subject=document.get("subject", ""),
            text=document.get("text", ""),
            fields=dict(document.get("fields", {})),
            sender=document.get("sender") or info.get("sender", ""),
        )
        self.place(person_id, memo)
