"""A plain document processor — deliberately NOT a CSCW application.

Paper section 6.2: *"even applications which are not typically regarded
as CSCW applications, like document processing systems, might use the
CSCW environment when they are used in a cooperative context."*  This app
is a single-user editor; attaching it to the environment lets its
documents flow to and from groupware without the app itself knowing
anything about cooperation.
"""

from __future__ import annotations

from typing import Any

from repro.apps.base import GroupwareApp
from repro.environment.registry import Q_DIFFERENT_TIME_SAME_PLACE
from repro.information.interchange import FormatConverter, make_common
from repro.util.errors import UnknownObjectError


class DocumentProcessor(GroupwareApp):
    """A single-user document editor with titled, paragraph-based files."""

    app_name = "document-processor"
    quadrants = [Q_DIFFERENT_TIME_SAME_PLACE]
    is_cscw = False

    def __init__(self, instance_name: str = "") -> None:
        super().__init__(instance_name)
        #: person -> title -> paragraphs
        self._files: dict[str, dict[str, list[str]]] = {}

    def converter(self) -> FormatConverter:
        """Native format ``document``: title + paragraphs."""
        return FormatConverter(
            "document",
            to_common=lambda d: make_common(
                "document", d.get("title", ""), "\n\n".join(d.get("paragraphs", []))
            ),
            from_common=lambda c: {
                "title": c["title"],
                "paragraphs": c["body"].split("\n\n") if c["body"] else [],
            },
        )

    # -- single-user editing ----------------------------------------------------
    def create(self, person_id: str, title: str) -> None:
        """Create an empty document."""
        self._files.setdefault(person_id, {})[title] = []

    def append_paragraph(self, person_id: str, title: str, text: str) -> None:
        """Append a paragraph."""
        self._document(person_id, title).append(text)

    def paragraphs(self, person_id: str, title: str) -> list[str]:
        """The document's paragraphs."""
        return list(self._document(person_id, title))

    def titles(self, person_id: str) -> list[str]:
        """A person's documents, sorted."""
        return sorted(self._files.get(person_id, {}))

    def as_native(self, person_id: str, title: str) -> dict[str, Any]:
        """A native document (for sending through the environment)."""
        return {"title": title, "paragraphs": self.paragraphs(person_id, title)}

    def _document(self, person_id: str, title: str) -> list[str]:
        try:
            return self._files[person_id][title]
        except KeyError:
            raise UnknownObjectError(f"{person_id!r} has no document {title!r}") from None

    # -- environment integration -------------------------------------------------
    def on_receive(self, person_id: str, document: dict[str, Any], info: dict[str, Any]) -> None:
        """Arriving documents are saved as files (dedup by title suffix)."""
        title = document.get("title") or "untitled"
        files = self._files.setdefault(person_id, {})
        if title in files:
            title = f"{title} (received)"
        files[title] = list(document.get("paragraphs", []))
