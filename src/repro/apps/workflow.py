"""Office-procedure workflow (DOMINO workalike).

Paper reference [13] (Kreifelts et al., *Experiences with the DOMINO
office procedure system*): structured procedures route forms between
roles step by step.  The paper's own warning (section 6.1) about systems
"too rigid and procedural" is honoured with *deviations*: a step may be
delegated or skipped with a recorded justification — the human factor.

Quadrant: different time / same place (the classic intra-office case),
and different time / different place when used across sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.apps.base import GroupwareApp
from repro.environment.registry import (
    Q_DIFFERENT_TIME_DIFFERENT_PLACE,
    Q_DIFFERENT_TIME_SAME_PLACE,
)
from repro.information.interchange import FormatConverter, make_common
from repro.util.errors import ConfigurationError, ModelError, UnknownObjectError
from repro.util.ids import IdFactory


@dataclass(frozen=True)
class ProcedureStep:
    """One step: a named task performed by a role."""

    name: str
    role: str
    #: slots this step must fill in before completing
    fills: tuple[str, ...] = ()


@dataclass(frozen=True)
class ParallelSteps:
    """An AND-split: all branch steps run concurrently, then join.

    DOMINO-style procedures routinely fork — e.g. legal review and
    technical review of the same proposal proceed in parallel and the
    case advances only when both complete.
    """

    branches: tuple[ProcedureStep, ...]

    def __post_init__(self) -> None:
        if len(self.branches) < 2:
            raise ConfigurationError("a parallel block needs at least two branches")
        names = [step.name for step in self.branches]
        if len(set(names)) != len(names):
            raise ConfigurationError("parallel branch names must be distinct")


@dataclass
class Procedure:
    """An office procedure definition.

    ``steps`` is a sequence of :class:`ProcedureStep` (sequential) and
    :class:`ParallelSteps` (AND-split/join) elements.
    """

    name: str
    steps: "list[ProcedureStep | ParallelSteps]"

    def __post_init__(self) -> None:
        if not self.steps:
            raise ConfigurationError("a procedure needs at least one step")


@dataclass
class CaseRecord:
    """One step's completion record in a running case."""

    step: str
    performed_by: str
    time: float
    deviation: str = ""


@dataclass
class Case:
    """A running instance of a procedure carrying a form."""

    case_id: str
    procedure: str
    form: dict[str, Any]
    step_index: int = 0
    completed: bool = False
    records: list[CaseRecord] = field(default_factory=list)
    #: branch names already completed in the current parallel block
    completed_branches: set[str] = field(default_factory=set)


class WorkflowSystem(GroupwareApp):
    """A DOMINO-style procedure system."""

    app_name = "workflow"
    quadrants = [Q_DIFFERENT_TIME_SAME_PLACE, Q_DIFFERENT_TIME_DIFFERENT_PLACE]

    def __init__(self, instance_name: str = "") -> None:
        super().__init__(instance_name)
        self._procedures: dict[str, Procedure] = {}
        #: person -> roles they can perform
        self._performers: dict[str, set[str]] = {}
        self._cases: dict[str, Case] = {}
        self._ids = IdFactory()
        self.deviations = 0

    def converter(self) -> FormatConverter:
        """Native format ``form``: form_name + slots (structured only)."""
        return FormatConverter(
            "form",
            to_common=lambda d: make_common(
                "form", d.get("form_name", ""), "", **d.get("slots", {})
            ),
            from_common=lambda c: {
                "form_name": c["title"],
                "slots": dict(c["attributes"]),
            },
            fidelity=0.9,  # free text does not survive into a form
        )

    # -- definitions -----------------------------------------------------------
    def define_procedure(self, procedure: Procedure) -> None:
        """Install a procedure definition."""
        if procedure.name in self._procedures:
            raise ConfigurationError(f"procedure {procedure.name!r} already defined")
        self._procedures[procedure.name] = procedure

    def grant_role(self, person_id: str, role: str) -> None:
        """Let a person perform steps of *role*."""
        self._performers.setdefault(person_id, set()).add(role)

    # -- cases ---------------------------------------------------------------------
    def start_case(self, procedure_name: str, form: dict[str, Any]) -> Case:
        """Instantiate a procedure with an initial form."""
        if procedure_name not in self._procedures:
            raise UnknownObjectError(f"unknown procedure {procedure_name!r}")
        case = Case(self._ids.next("case"), procedure_name, dict(form))
        self._cases[case.case_id] = case
        return case

    def case(self, case_id: str) -> Case:
        """Look up a running case."""
        try:
            return self._cases[case_id]
        except KeyError:
            raise UnknownObjectError(f"unknown case {case_id!r}") from None

    def pending_steps(self, case_id: str) -> list[ProcedureStep]:
        """Every step the case is currently waiting on.

        One element for a sequential step; the unfinished branches for a
        parallel block.
        """
        case = self.case(case_id)
        if case.completed:
            raise ModelError(f"case {case_id} is already completed")
        element = self._procedures[case.procedure].steps[case.step_index]
        if isinstance(element, ParallelSteps):
            return [
                step
                for step in element.branches
                if step.name not in case.completed_branches
            ]
        return [element]

    def current_step(self, case_id: str) -> ProcedureStep:
        """The single step a case waits on (ambiguous in a parallel block)."""
        pending = self.pending_steps(case_id)
        if len(pending) > 1:
            raise ModelError(
                f"case {case_id} waits on {len(pending)} parallel steps; "
                "name one explicitly"
            )
        return pending[0]

    def work_list(self, person_id: str) -> list[Case]:
        """Cases with a pending step this person may perform."""
        roles = self._performers.get(person_id, set())
        result = []
        for case in self._cases.values():
            if case.completed:
                continue
            if any(step.role in roles for step in self.pending_steps(case.case_id)):
                result.append(case)
        return result

    def _select_step(self, case_id: str, person_id: str, step_name: str | None) -> ProcedureStep:
        pending = self.pending_steps(case_id)
        if step_name is not None:
            for step in pending:
                if step.name == step_name:
                    return step
            raise ModelError(f"step {step_name!r} is not pending in case {case_id}")
        roles = self._performers.get(person_id, set())
        eligible = [step for step in pending if step.role in roles]
        if len(pending) == 1:
            return pending[0]
        if len(eligible) == 1:
            return eligible[0]
        raise ModelError(
            f"case {case_id} has {len(pending)} pending parallel steps; "
            "pass step_name to pick one"
        )

    def perform_step(
        self,
        case_id: str,
        person_id: str,
        fills: dict[str, Any] | None = None,
        time: float = 0.0,
        step_name: str | None = None,
    ) -> Case:
        """Complete a pending step, filling its slots; advances the case.

        In a parallel block, *step_name* selects the branch (optional when
        the performer's roles make it unambiguous); the case advances only
        when every branch has completed (AND-join).
        """
        case = self.case(case_id)
        step = self._select_step(case_id, person_id, step_name)
        if step.role not in self._performers.get(person_id, set()):
            raise ModelError(f"{person_id!r} cannot perform role {step.role!r}")
        provided = dict(fills or {})
        missing = [slot for slot in step.fills if slot not in provided]
        if missing:
            raise ModelError(f"step {step.name!r} must fill slots {missing}")
        case.form.update(provided)
        case.records.append(CaseRecord(step.name, person_id, time))
        self._complete_step(case, step)
        return case

    def skip_step(
        self,
        case_id: str,
        person_id: str,
        justification: str,
        time: float = 0.0,
        step_name: str | None = None,
    ) -> Case:
        """Deviation: skip a pending step with a recorded justification."""
        if not justification:
            raise ModelError("a deviation needs a justification")
        case = self.case(case_id)
        step = self._select_step(case_id, person_id, step_name)
        case.records.append(
            CaseRecord(step.name, person_id, time, deviation=f"skipped: {justification}")
        )
        self.deviations += 1
        self._complete_step(case, step)
        return case

    def _complete_step(self, case: Case, step: ProcedureStep) -> None:
        element = self._procedures[case.procedure].steps[case.step_index]
        if isinstance(element, ParallelSteps):
            case.completed_branches.add(step.name)
            if case.completed_branches >= {s.name for s in element.branches}:
                case.completed_branches = set()
                self._advance(case)
        else:
            self._advance(case)

    def delegate_step(
        self, case_id: str, from_person: str, to_person: str, time: float = 0.0
    ) -> None:
        """Deviation: let someone without the role perform this one step."""
        step = self.current_step(case_id)
        self._performers.setdefault(to_person, set())
        if step.role in self._performers[to_person]:
            return  # already able; not a deviation
        self._performers[to_person].add(step.role)
        self.case(case_id).records.append(
            CaseRecord(step.name, from_person, time, deviation=f"delegated to {to_person}")
        )
        self.deviations += 1

    def _advance(self, case: Case) -> None:
        case.step_index += 1
        if case.step_index >= len(self._procedures[case.procedure].steps):
            case.completed = True

    # -- environment integration ---------------------------------------------------
    def on_receive(self, person_id: str, document: dict[str, Any], info: dict[str, Any]) -> None:
        """A form arriving via the environment starts (or feeds) a case.

        When the form names a known procedure it starts a case; otherwise
        it is kept in the person's inbox only (already done by the base).
        """
        form_name = document.get("form_name", "")
        if form_name in self._procedures:
            self.start_case(form_name, document.get("slots", {}))
