"""Computer conferencing (COM/PortaCOM workalike).

Paper section 2: "The majority of asynchronous systems are based around
either message systems or computer conferencing systems [9]" — [9] is
Palme's COM.  Conferences are named, membership-controlled topic streams;
members post entries and read news (entries they have not seen), possibly
as replies forming threads.

Quadrant: different time / different place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.apps.base import GroupwareApp
from repro.environment.registry import Q_DIFFERENT_TIME_DIFFERENT_PLACE
from repro.information.interchange import FormatConverter, make_common
from repro.util.errors import ConfigurationError, UnknownObjectError
from repro.util.ids import IdFactory


@dataclass
class ConferenceEntry:
    """One contribution to a conference."""

    entry_id: str
    conference: str
    author: str
    topic: str
    text: str
    time: float
    in_reply_to: str = ""


@dataclass
class Conference:
    """A named discussion stream with membership."""

    name: str
    organizer: str
    members: set[str] = field(default_factory=set)
    entries: list[ConferenceEntry] = field(default_factory=list)
    #: per-member high-water mark: index of first unseen entry
    read_marks: dict[str, int] = field(default_factory=dict)
    #: moderated conferences hold non-organizer posts for approval
    moderated: bool = False
    pending: list[ConferenceEntry] = field(default_factory=list)


class ConferencingSystem(GroupwareApp):
    """A COM-style conferencing application."""

    app_name = "conferencing"
    quadrants = [Q_DIFFERENT_TIME_DIFFERENT_PLACE]

    def __init__(self, instance_name: str = "") -> None:
        super().__init__(instance_name)
        self._conferences: dict[str, Conference] = {}
        self._ids = IdFactory()

    def converter(self) -> FormatConverter:
        """Native format ``conference``: topic/entry/conference/author."""
        return FormatConverter(
            "conference",
            to_common=lambda d: make_common(
                "note",
                d.get("topic", ""),
                d.get("entry", ""),
                conference=d.get("conference", ""),
                author=d.get("author", ""),
            ),
            from_common=lambda c: {
                "topic": c["title"],
                "entry": c["body"],
                "conference": c["attributes"].get("conference", "imported"),
                "author": c["attributes"].get("author", ""),
            },
        )

    # -- conference management ------------------------------------------------
    def create_conference(self, name: str, organizer: str, moderated: bool = False) -> Conference:
        """Open a new conference; the organizer is its first member.

        A *moderated* conference holds posts from ordinary members in a
        pending queue until the organizer approves or rejects them.
        """
        if name in self._conferences:
            raise ConfigurationError(f"conference {name!r} already exists")
        conference = Conference(
            name=name, organizer=organizer, members={organizer}, moderated=moderated
        )
        self._conferences[name] = conference
        return conference

    def conference(self, name: str) -> Conference:
        """Look up a conference."""
        try:
            return self._conferences[name]
        except KeyError:
            raise UnknownObjectError(f"unknown conference {name!r}") from None

    def join(self, name: str, person_id: str) -> None:
        """Join a conference."""
        self.conference(name).members.add(person_id)

    def leave(self, name: str, person_id: str) -> None:
        """Leave a conference (the organizer may not leave)."""
        conference = self.conference(name)
        if person_id == conference.organizer:
            raise ConfigurationError("the organizer cannot leave their conference")
        conference.members.discard(person_id)

    # -- posting and reading -----------------------------------------------------
    def post(
        self, name: str, author: str, topic: str, text: str, time: float = 0.0,
        in_reply_to: str = "",
    ) -> ConferenceEntry:
        """Add an entry; only members may post."""
        conference = self.conference(name)
        if author not in conference.members:
            raise ConfigurationError(f"{author!r} is not a member of {name!r}")
        if in_reply_to and not any(e.entry_id == in_reply_to for e in conference.entries):
            raise UnknownObjectError(f"no entry {in_reply_to!r} in {name!r}")
        entry = ConferenceEntry(
            entry_id=self._ids.next(f"entry-{name}"),
            conference=name,
            author=author,
            topic=topic,
            text=text,
            time=time,
            in_reply_to=in_reply_to,
        )
        if conference.moderated and author != conference.organizer:
            conference.pending.append(entry)
        else:
            conference.entries.append(entry)
        return entry

    # -- moderation --------------------------------------------------------------
    def pending_entries(self, name: str, moderator: str) -> list[ConferenceEntry]:
        """Posts awaiting approval (organizer only)."""
        conference = self.conference(name)
        if moderator != conference.organizer:
            raise ConfigurationError(f"{moderator!r} does not moderate {name!r}")
        return list(conference.pending)

    def approve(self, name: str, entry_id: str, moderator: str) -> ConferenceEntry:
        """Publish a pending entry (organizer only)."""
        conference = self.conference(name)
        if moderator != conference.organizer:
            raise ConfigurationError(f"{moderator!r} does not moderate {name!r}")
        for entry in conference.pending:
            if entry.entry_id == entry_id:
                conference.pending.remove(entry)
                conference.entries.append(entry)
                return entry
        raise UnknownObjectError(f"no pending entry {entry_id!r} in {name!r}")

    def reject(self, name: str, entry_id: str, moderator: str) -> None:
        """Discard a pending entry (organizer only)."""
        conference = self.conference(name)
        if moderator != conference.organizer:
            raise ConfigurationError(f"{moderator!r} does not moderate {name!r}")
        before = len(conference.pending)
        conference.pending = [e for e in conference.pending if e.entry_id != entry_id]
        if len(conference.pending) == before:
            raise UnknownObjectError(f"no pending entry {entry_id!r} in {name!r}")

    def news_for(self, name: str, person_id: str) -> list[ConferenceEntry]:
        """Unseen entries for a member; advances their read mark."""
        conference = self.conference(name)
        if person_id not in conference.members:
            raise ConfigurationError(f"{person_id!r} is not a member of {name!r}")
        mark = conference.read_marks.get(person_id, 0)
        fresh = conference.entries[mark:]
        conference.read_marks[person_id] = len(conference.entries)
        return fresh

    def thread(self, name: str, root_id: str) -> list[ConferenceEntry]:
        """An entry and all (transitive) replies, in posting order."""
        conference = self.conference(name)
        wanted = {root_id}
        thread = []
        for entry in conference.entries:
            if entry.entry_id in wanted or entry.in_reply_to in wanted:
                wanted.add(entry.entry_id)
                thread.append(entry)
        if not thread:
            raise UnknownObjectError(f"no entry {root_id!r} in {name!r}")
        return thread

    # -- environment integration ----------------------------------------------------
    def on_receive(self, person_id: str, document: dict[str, Any], info: dict[str, Any]) -> None:
        """Documents arriving via the environment post into a conference.

        Cross-application cooperation: a memo or form translated into the
        ``conference`` format lands as an entry in the person's inbox
        conference (created on demand).
        """
        name = document.get("conference") or "imported"
        if name not in self._conferences:
            self.create_conference(name, organizer=person_id)
        conference = self.conference(name)
        conference.members.add(person_id)
        author = document.get("author") or info.get("sender", "external")
        conference.members.add(author)
        self.post(
            name,
            author=author,
            topic=document.get("topic", ""),
            text=document.get("entry", ""),
            time=info.get("time", 0.0),
        )
