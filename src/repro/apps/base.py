"""Base machinery shared by all groupware applications.

Every application in :mod:`repro.apps` is a workalike of a system the
paper cites (COM conferencing, Object Lens, Shared X, COLAB, DOMINO) plus
one deliberately non-CSCW document processor.  Each:

* has a native document format with a :class:`FormatConverter` to the
  environment's common form,
* claims one or more quadrants of the time-space matrix (Figure 1),
* keeps a per-person inbox of documents delivered through the
  environment,
* can run **open** (attached to a :class:`CSCWEnvironment` — Figure 3) or
  **closed** (stand-alone — Figure 2; the baseline of experiment E2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.environment.environment import CSCWEnvironment
from repro.environment.registry import AppDescriptor
from repro.information.interchange import FormatConverter
from repro.util.errors import ConfigurationError


@dataclass
class Delivery:
    """One document that arrived in a person's application inbox."""

    person_id: str
    document: dict[str, Any]
    info: dict[str, Any] = field(default_factory=dict)


class GroupwareApp:
    """Base class: inboxes, converter, open/closed attachment."""

    #: subclasses set these
    app_name = "app"
    quadrants: list[str] = []
    is_cscw = True

    def __init__(self, instance_name: str = "") -> None:
        self.name = instance_name or self.app_name
        self._inboxes: dict[str, list[Delivery]] = {}
        self._environment: CSCWEnvironment | None = None
        self.received_count = 0

    # -- format ------------------------------------------------------------
    def converter(self) -> FormatConverter:
        """The app's bridge to the common form (subclasses implement)."""
        raise NotImplementedError

    @property
    def format_name(self) -> str:
        """Native format name."""
        return self.converter().format_name

    # -- environment attachment ---------------------------------------------
    def attach(self, environment: CSCWEnvironment, exporter_org: str = "") -> None:
        """Run open: register with the environment (one step, O(1))."""
        if self._environment is not None:
            raise ConfigurationError(f"{self.name} is already attached")
        descriptor = AppDescriptor(
            name=self.name,
            quadrants=list(self.quadrants),
            converter=self.converter(),
            is_cscw=self.is_cscw,
        )
        environment.register_application(descriptor, self.deliver, exporter_org=exporter_org)
        self._environment = environment

    @property
    def is_open(self) -> bool:
        """True when attached to an environment."""
        return self._environment is not None

    @property
    def environment(self) -> CSCWEnvironment:
        """The attached environment (raises when closed)."""
        if self._environment is None:
            raise ConfigurationError(f"{self.name} runs closed (no environment)")
        return self._environment

    # -- delivery ------------------------------------------------------------
    def deliver(self, person_id: str, document: dict[str, Any], info: dict[str, Any]) -> None:
        """Receive a document for *person_id* (called by the environment)."""
        self._inboxes.setdefault(person_id, []).append(Delivery(person_id, document, info))
        self.received_count += 1
        self.on_receive(person_id, document, info)

    def on_receive(self, person_id: str, document: dict[str, Any], info: dict[str, Any]) -> None:
        """Subclass hook: react to an incoming document (default: no-op)."""

    def inbox(self, person_id: str) -> list[Delivery]:
        """All deliveries for a person, oldest first."""
        return list(self._inboxes.get(person_id, []))

    def clear_inbox(self, person_id: str) -> None:
        """Drop a person's deliveries."""
        self._inboxes.pop(person_id, None)
