"""WYSIWIS shared editor (Shared X workalike).

Paper references [5, 6]: synchronous desktop conferencing through shared
windows — every participant sees the identical document ("What You See Is
What I See").  Edits fan out over the simulated network through a
:class:`~repro.communication.realtime.RealTimeSession`; causal ordering is
kept with Lamport clocks and a deterministic total order (time, author) so
concurrent edits converge at every replica.

Quadrant: same time / different place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.apps.base import GroupwareApp
from repro.communication.realtime import RealTimeSession
from repro.environment.registry import Q_SAME_TIME_DIFFERENT_PLACE
from repro.information.interchange import FormatConverter, make_common
from repro.sim.world import World
from repro.util.clock import LamportClock
from repro.util.errors import ModelError


@dataclass(frozen=True)
class EditOp:
    """One edit: insert or delete a line at a position."""

    op: str  # "insert" | "delete"
    position: int
    text: str
    author: str
    stamp: tuple[int, str]

    def to_document(self) -> dict[str, Any]:
        """Serialize for fan-out."""
        return {
            "op": self.op,
            "position": self.position,
            "text": self.text,
            "author": self.author,
            "stamp": list(self.stamp),
        }

    @staticmethod
    def from_document(document: dict[str, Any]) -> "EditOp":
        """Deserialize a fanned-out edit."""
        stamp = document["stamp"]
        return EditOp(
            op=document["op"],
            position=document["position"],
            text=document.get("text", ""),
            author=document.get("author", ""),
            stamp=(stamp[0], stamp[1]),
        )


class _Replica:
    """One participant's copy of the shared document."""

    def __init__(self, person_id: str) -> None:
        self.person_id = person_id
        self.clock = LamportClock(person_id)
        self._ops: list[EditOp] = []

    def local_edit(self, op: str, position: int, text: str) -> EditOp:
        edit = EditOp(op, position, text, self.person_id, self.clock.stamp())
        self._ops.append(edit)
        return edit

    def remote_edit(self, edit: EditOp) -> None:
        self.clock.observe(edit.stamp[0])
        self._ops.append(edit)

    def operations(self) -> list[EditOp]:
        """The full operation history (for state transfer)."""
        return list(self._ops)

    def last_op_by(self, author: str) -> EditOp | None:
        """The author's latest operation in total order, if any."""
        authored = [op for op in self._ops if op.author == author]
        if not authored:
            return None
        return max(authored, key=lambda op: op.stamp)

    def lines(self) -> list[str]:
        """Materialise the document: replay ops in total stamp order."""
        return [text for text, _ in self._replay()[0]]

    def _replay(self) -> tuple[list[tuple[str, tuple[int, str]]], dict[tuple[int, str], str]]:
        """Replay ops; returns (lines tagged with their insert stamp,
        map of delete-op stamp -> the text that delete removed)."""
        lines: list[tuple[str, tuple[int, str]]] = []
        removed: dict[tuple[int, str], str] = {}
        for edit in sorted(self._ops, key=lambda e: e.stamp):
            position = max(0, min(edit.position, len(lines)))
            if edit.op == "insert":
                lines.insert(position, (edit.text, edit.stamp))
            elif edit.op == "delete" and position < len(lines):
                removed[edit.stamp] = lines[position][0]
                del lines[position]
        return lines, removed

    def current_index_of(self, insert_stamp: tuple[int, str]) -> int | None:
        """Where the line inserted by *insert_stamp* currently sits."""
        for index, (_, stamp) in enumerate(self._replay()[0]):
            if stamp == insert_stamp:
                return index
        return None

    def text_removed_by(self, delete_stamp: tuple[int, str]) -> str | None:
        """The text a past delete op removed, if it removed anything."""
        return self._replay()[1].get(delete_stamp)


class SharedEditor(GroupwareApp):
    """A WYSIWIS multi-replica editor over a real-time session."""

    app_name = "shared-editor"
    quadrants = [Q_SAME_TIME_DIFFERENT_PLACE]

    def __init__(self, world: World, session_id: str = "shared-doc", instance_name: str = "") -> None:
        super().__init__(instance_name)
        self._world = world
        self._session = RealTimeSession(world, session_id)
        self._replicas: dict[str, _Replica] = {}

    def converter(self) -> FormatConverter:
        """Native format ``editor``: title + lines.

        WYSIWIS means view transparency is deliberately *not* applied to
        the live document (everyone sees the same rendering); the
        converter exists so document *snapshots* can travel to other
        applications through the environment.
        """
        return FormatConverter(
            "editor",
            to_common=lambda d: make_common(
                "document", d.get("title", ""), "\n".join(d.get("lines", []))
            ),
            from_common=lambda c: {
                "title": c["title"],
                "lines": c["body"].split("\n") if c["body"] else [],
            },
        )

    # -- participation -----------------------------------------------------------
    def open_document(self, person_id: str, node: str, state_transfer: bool = True) -> None:
        """Join the editing session from a workstation.

        With *state_transfer* (the default) the newcomer receives the full
        operation history from an existing replica before going live, so
        late joiners see the same document as everyone else — without it
        they only see edits made after they joined.
        """
        replica = _Replica(person_id)
        if state_transfer and self._replicas:
            donor = next(iter(self._replicas.values()))
            for edit in donor.operations():
                replica.remote_edit(edit)
        self._replicas[person_id] = replica
        self._session.join(
            person_id,
            node,
            lambda sender, body: replica.remote_edit(EditOp.from_document(body)),
        )

    def close_document(self, person_id: str) -> None:
        """Leave the session (the replica's history is kept)."""
        self._session.leave(person_id)

    def participants(self) -> list[str]:
        """Everyone currently editing."""
        return self._session.participants()

    # -- editing --------------------------------------------------------------------
    def insert(self, person_id: str, position: int, text: str) -> EditOp:
        """Insert a line and fan the edit out to all participants."""
        return self._edit(person_id, "insert", position, text)

    def delete(self, person_id: str, position: int) -> EditOp:
        """Delete a line and fan the edit out."""
        return self._edit(person_id, "delete", position, "")

    def _edit(self, person_id: str, op: str, position: int, text: str) -> EditOp:
        replica = self._replicas.get(person_id)
        if replica is None:
            raise ModelError(f"{person_id!r} has not opened the document")
        edit = replica.local_edit(op, position, text)
        self._session.say(person_id, edit.to_document())
        return edit

    def undo(self, person_id: str) -> EditOp:
        """Undo the person's latest edit with a compensating operation.

        Undoing an insert deletes the line *where it currently is* (later
        edits may have moved it); undoing a delete re-inserts the removed
        text.  Raises :class:`ModelError` when there is nothing to undo
        (no own ops, or the inserted line was already deleted by someone).
        """
        replica = self._replicas.get(person_id)
        if replica is None:
            raise ModelError(f"{person_id!r} has not opened the document")
        last = replica.last_op_by(person_id)
        if last is None:
            raise ModelError(f"{person_id!r} has nothing to undo")
        if last.op == "insert":
            index = replica.current_index_of(last.stamp)
            if index is None:
                raise ModelError("the inserted line was already deleted")
            return self._edit(person_id, "delete", index, "")
        removed = replica.text_removed_by(last.stamp)
        if removed is None:
            raise ModelError("the delete removed nothing; cannot undo")
        return self._edit(person_id, "insert", last.position, removed)

    def view(self, person_id: str) -> list[str]:
        """The document as *person_id* currently sees it."""
        replica = self._replicas.get(person_id)
        if replica is None:
            raise ModelError(f"{person_id!r} has not opened the document")
        return replica.lines()

    def converged(self) -> bool:
        """WYSIWIS invariant: all replicas show identical lines."""
        views = [r.lines() for r in self._replicas.values()]
        return all(v == views[0] for v in views) if views else True

    def snapshot(self, person_id: str, title: str) -> dict[str, Any]:
        """A native document snapshot (for exchange with other apps)."""
        return {"title": title, "lines": self.view(person_id)}
