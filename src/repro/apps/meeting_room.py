"""Electronic meeting room (COLAB workalike).

Paper reference [10] (Stefik et al., *Beyond the chalkboard*): a purpose
built co-located meeting room where participants brainstorm onto a shared
board, organise items, and vote.  Floor control disciplines the "chalk";
brainstorm mode suspends it (free-for-all), mirroring COLAB's Cognoter
phases.

Quadrant: same time / same place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.apps.base import GroupwareApp
from repro.communication.realtime import RealTimeSession
from repro.environment.registry import Q_SAME_TIME_SAME_PLACE
from repro.information.interchange import FormatConverter, make_common
from repro.sim.world import World
from repro.util.errors import ModelError
from repro.util.ids import IdFactory


@dataclass
class BoardItem:
    """One item on the shared board."""

    item_id: str
    author: str
    text: str
    category: str = ""
    votes: set[str] = field(default_factory=set)


@dataclass
class AgendaPoint:
    """One agenda point with its phase."""

    title: str
    phase: str = "pending"  # pending | brainstorm | organise | evaluate | done


class MeetingRoom(GroupwareApp):
    """A COLAB-style co-located meeting support application."""

    app_name = "meeting-room"
    quadrants = [Q_SAME_TIME_SAME_PLACE]

    def __init__(self, world: World, room_id: str = "colab", instance_name: str = "") -> None:
        super().__init__(instance_name)
        self._world = world
        self._session = RealTimeSession(world, room_id, floor_controlled=True)
        self._board: dict[str, BoardItem] = {}
        self._agenda: list[AgendaPoint] = []
        self._ids = IdFactory()
        self._brainstorming = False

    def converter(self) -> FormatConverter:
        """Native format ``meeting``: item text + category + author."""
        return FormatConverter(
            "meeting",
            to_common=lambda d: make_common(
                "note",
                d.get("category", "board item"),
                d.get("text", ""),
                author=d.get("author", ""),
            ),
            from_common=lambda c: {
                "text": c["body"] or c["title"],
                "category": c["attributes"].get("category", "imported"),
                "author": c["attributes"].get("author", ""),
            },
        )

    # -- attendance ----------------------------------------------------------
    def enter_room(self, person_id: str, workstation: str) -> None:
        """Sit down at a meeting-room workstation."""
        self._session.join(person_id, workstation, lambda sender, body: None)

    def leave_room(self, person_id: str) -> None:
        """Leave the room."""
        self._session.leave(person_id)

    def attendees(self) -> list[str]:
        """Everyone in the room."""
        return self._session.participants()

    # -- agenda ---------------------------------------------------------------
    def add_agenda_point(self, title: str) -> AgendaPoint:
        """Append an agenda point."""
        point = AgendaPoint(title)
        self._agenda.append(point)
        return point

    def agenda(self) -> list[AgendaPoint]:
        """The agenda in order."""
        return list(self._agenda)

    def begin_brainstorm(self, point_title: str) -> None:
        """Enter free-for-all mode for an agenda point (no floor needed)."""
        point = self._find_point(point_title)
        point.phase = "brainstorm"
        self._brainstorming = True

    def end_brainstorm(self, point_title: str) -> None:
        """Back to floor-controlled organise phase."""
        point = self._find_point(point_title)
        point.phase = "organise"
        self._brainstorming = False

    def _find_point(self, title: str) -> AgendaPoint:
        for point in self._agenda:
            if point.title == title:
                return point
        raise ModelError(f"no agenda point {title!r}")

    # -- the board ----------------------------------------------------------------
    def take_floor(self, person_id: str) -> bool:
        """Request the chalk."""
        return self._session.request_floor(person_id)

    def release_floor(self, person_id: str) -> None:
        """Hand the chalk back."""
        self._session.release_floor(person_id)

    def add_item(self, person_id: str, text: str) -> BoardItem:
        """Write on the board.

        During brainstorm anyone writes; otherwise the floor holder only.
        """
        if person_id not in self._session.participants():
            raise ModelError(f"{person_id!r} is not in the room")
        if not self._brainstorming and self._session.floor_holder != person_id:
            raise ModelError(f"{person_id!r} does not hold the floor")
        item = BoardItem(self._ids.next("item"), person_id, text)
        self._board[item.item_id] = item
        return item

    def categorise(self, item_id: str, category: str) -> None:
        """Organise phase: group an item under a category."""
        self._item(item_id).category = category

    def vote(self, person_id: str, item_id: str) -> None:
        """Evaluate phase: one vote per attendee per item."""
        if person_id not in self._session.participants():
            raise ModelError(f"{person_id!r} is not in the room")
        self._item(item_id).votes.add(person_id)

    def _item(self, item_id: str) -> BoardItem:
        try:
            return self._board[item_id]
        except KeyError:
            raise ModelError(f"no board item {item_id!r}") from None

    def board(self, category: str | None = None) -> list[BoardItem]:
        """Board items, optionally one category, by id."""
        items = sorted(self._board.values(), key=lambda i: i.item_id)
        if category is None:
            return items
        return [i for i in items if i.category == category]

    def ranking(self) -> list[tuple[str, int]]:
        """Items by vote count, best first."""
        return sorted(
            ((item.text, len(item.votes)) for item in self._board.values()),
            key=lambda pair: (-pair[1], pair[0]),
        )

    def export_minutes(self, title: str = "meeting minutes") -> dict[str, Any]:
        """Render the meeting as a native ``meeting`` document.

        The minutes carry the agenda with phases, the board grouped by
        category, and the vote ranking.  Being a native document, it can
        be exchanged through the environment into any other application
        (e.g. the document processor receives it as titled paragraphs).
        """
        paragraphs = [f"Attendees: {', '.join(self.attendees()) or 'none'}"]
        for point in self._agenda:
            paragraphs.append(f"Agenda: {point.title} [{point.phase}]")
        categories: dict[str, list[BoardItem]] = {}
        for item in self.board():
            categories.setdefault(item.category or "uncategorised", []).append(item)
        for category in sorted(categories):
            lines = "; ".join(
                f"{item.text} ({item.author})" for item in categories[category]
            )
            paragraphs.append(f"{category}: {lines}")
        ranking = self.ranking()
        if any(votes for _, votes in ranking):
            decisions = ", ".join(f"{text} [{votes}]" for text, votes in ranking if votes)
            paragraphs.append(f"Decisions by vote: {decisions}")
        return {
            "text": "\n\n".join(paragraphs),
            "category": title,
            "author": self._session.floor_holder or "scribe",
        }

    # -- environment integration -------------------------------------------------
    def on_receive(self, person_id: str, document: dict[str, Any], info: dict[str, Any]) -> None:
        """Documents delivered via the environment land on the board."""
        item = BoardItem(
            self._ids.next("item"),
            author=document.get("author") or info.get("sender", "external"),
            text=document.get("text", ""),
            category=document.get("category", "imported"),
        )
        self._board[item.item_id] = item
