"""repro - an open CSCW environment on an ODP substrate.

A full reproduction of the system envisioned by Navarro, Prinz and Rodden
in *Open CSCW Systems: Will ODP help?* (ICDCS 1992): the "MOCCA"-style CSCW
environment (five models, four transparencies, common services) layered on
an RM-ODP platform, with X.500-style directory and X.400-style messaging
substrates, all running on a deterministic discrete-event simulator.

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.sim` - discrete-event simulator (engine, network, failures)
- :mod:`repro.odp` - RM-ODP platform (viewpoints, trader, bindings)
- :mod:`repro.directory` - X.500-style directory service
- :mod:`repro.messaging` - X.400-style message handling system
- :mod:`repro.org`, :mod:`repro.activity`, :mod:`repro.information`,
  :mod:`repro.communication`, :mod:`repro.expertise` - the five models
- :mod:`repro.environment` - the CSCW environment (the paper's core)
- :mod:`repro.apps` - groupware covering the time-space matrix
- :mod:`repro.baselines` - the closed-world baseline (Figure 2)
"""

__version__ = "1.0.0"
