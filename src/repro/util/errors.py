"""Exception hierarchy for the repro library.

Every subsystem raises exceptions derived from :class:`ReproError` so that
applications embedding the CSCW environment can catch library failures with
a single ``except`` clause while still being able to discriminate between
subsystems.  The hierarchy mirrors the package layout (simulator, ODP
platform, directory, messaging, environment, models).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was constructed or wired with invalid parameters."""


class SimulationError(ReproError):
    """Base class for discrete-event simulator errors."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or on a stopped engine."""


class NetworkError(SimulationError):
    """A message could not be moved across the simulated network."""


class NodeDownError(NetworkError):
    """The destination (or source) node has crashed."""


class PartitionError(NetworkError):
    """Source and destination are in different network partitions."""


class OdpError(ReproError):
    """Base class for ODP platform errors."""


class BindingError(OdpError):
    """A binding between computational interfaces could not be established."""


class TradingError(OdpError):
    """The trader could not satisfy an import request."""


class NoOfferError(TradingError):
    """No exported service offer matched the import criteria."""


class PolicyViolationError(OdpError):
    """An operation violated an organisational or trading policy."""


class TransparencyError(OdpError):
    """A requested distribution transparency could not be provided."""


class DirectoryError(ReproError):
    """Base class for X.500-style directory errors."""


class NameError_(DirectoryError):
    """A distinguished name is syntactically invalid or does not resolve.

    The trailing underscore avoids shadowing the builtin ``NameError``.
    """


class NoSuchEntryError(DirectoryError):
    """The requested directory entry does not exist."""


class EntryExistsError(DirectoryError):
    """An entry with the same distinguished name already exists."""


class SchemaViolationError(DirectoryError):
    """An entry does not conform to its object class schema."""


class MessagingError(ReproError):
    """Base class for X.400-style messaging errors."""


class NoRouteError(MessagingError):
    """No MTA route exists toward the recipient's domain."""


class UnknownRecipientError(MessagingError):
    """The recipient O/R name is not known to any MTA."""


class MessageTooLargeError(MessagingError):
    """The message exceeded a transfer agent's size limit."""


class ModelError(ReproError):
    """Base class for errors in the five CSCW models."""


class UnknownObjectError(ModelError):
    """A referenced model object (person, role, activity...) is unknown."""


class AccessDeniedError(ModelError):
    """Role-based access control denied the operation."""


class NegotiationError(ModelError):
    """A responsibility/competence negotiation failed or was rejected."""


class DependencyCycleError(ModelError):
    """Activity or information dependencies would form a cycle."""


class EnvironmentError_(ReproError):
    """Base class for CSCW environment errors.

    The trailing underscore avoids shadowing the builtin ``EnvironmentError``.
    """


class NotRegisteredError(EnvironmentError_):
    """An application or service is not registered with the environment."""


class InteropError(EnvironmentError_):
    """No interchange path exists between two applications' formats."""


class FidelityError(InteropError):
    """A conversion route exists, but none meets the caller's ``min_fidelity``.

    Carries the negotiation facts so callers can retry with a lower
    floor: ``best_fidelity`` is the best plan on offer, ``min_fidelity``
    the floor that rejected it.
    """

    def __init__(
        self, message: str, best_fidelity: float = 0.0, min_fidelity: float = 0.0
    ) -> None:
        super().__init__(message)
        self.best_fidelity = best_fidelity
        self.min_fidelity = min_fidelity


class TailoringError(EnvironmentError_):
    """A tailoring operation was rejected (out of bounds, bad scope...)."""
