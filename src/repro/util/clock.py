"""Logical clocks for ordering events in the simulated distributed system.

The CSCW environment integrates synchronous and asynchronous cooperation
("transparency of time", paper section 4).  To reason about causality across
both modes we provide classic Lamport scalar clocks and vector clocks.  The
simulator itself keeps *simulated* physical time (a float, seconds); these
logical clocks complement it for causality tracking in replicated state
(e.g. the shared editor and conferencing applications).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class Ordering(Enum):
    """Causal relation between two vector timestamps."""

    BEFORE = "before"
    AFTER = "after"
    EQUAL = "equal"
    CONCURRENT = "concurrent"


class LamportClock:
    """A Lamport scalar clock.

    ``tick()`` advances local time, ``observe(remote)`` merges a received
    timestamp.  Timestamps are ints; ties are broken by the owner id so that
    ``stamp()`` yields a total order usable as a sort key.
    """

    def __init__(self, owner: str) -> None:
        self.owner = owner
        self._time = 0

    @property
    def time(self) -> int:
        """Current scalar time (number of observed causal steps)."""
        return self._time

    def tick(self) -> int:
        """Advance for a local event; return the new time."""
        self._time += 1
        return self._time

    def observe(self, remote_time: int) -> int:
        """Merge a timestamp received from another process, then tick."""
        if remote_time < 0:
            raise ValueError("remote_time must be >= 0")
        self._time = max(self._time, remote_time)
        return self.tick()

    def stamp(self) -> tuple[int, str]:
        """Tick and return a totally-ordered (time, owner) stamp."""
        return (self.tick(), self.owner)


@dataclass(frozen=True)
class VectorTimestamp:
    """An immutable vector timestamp: mapping of process id -> count."""

    counts: tuple[tuple[str, int], ...] = ()

    @staticmethod
    def of(mapping: dict[str, int]) -> "VectorTimestamp":
        """Build a timestamp from a dict, dropping zero entries."""
        items = tuple(sorted((k, v) for k, v in mapping.items() if v > 0))
        return VectorTimestamp(items)

    def as_dict(self) -> dict[str, int]:
        """Return the timestamp as a plain dict."""
        return dict(self.counts)

    def get(self, process: str) -> int:
        """Return this process's component (0 when absent)."""
        return dict(self.counts).get(process, 0)

    def compare(self, other: "VectorTimestamp") -> Ordering:
        """Return the causal relation of ``self`` to ``other``."""
        mine = self.as_dict()
        theirs = other.as_dict()
        keys = set(mine) | set(theirs)
        less = any(mine.get(k, 0) < theirs.get(k, 0) for k in keys)
        greater = any(mine.get(k, 0) > theirs.get(k, 0) for k in keys)
        if less and greater:
            return Ordering.CONCURRENT
        if less:
            return Ordering.BEFORE
        if greater:
            return Ordering.AFTER
        return Ordering.EQUAL

    def merge(self, other: "VectorTimestamp") -> "VectorTimestamp":
        """Return the component-wise maximum of the two timestamps."""
        mine = self.as_dict()
        for key, value in other.counts:
            mine[key] = max(mine.get(key, 0), value)
        return VectorTimestamp.of(mine)

    def dominates(self, other: "VectorTimestamp") -> bool:
        """True when ``self`` is causally >= ``other``."""
        return self.compare(other) in (Ordering.AFTER, Ordering.EQUAL)


@dataclass
class VectorClock:
    """A mutable vector clock owned by one process."""

    owner: str
    _counts: dict[str, int] = field(default_factory=dict)

    def tick(self) -> VectorTimestamp:
        """Advance the owner's component and return the new timestamp."""
        self._counts[self.owner] = self._counts.get(self.owner, 0) + 1
        return self.snapshot()

    def observe(self, remote: VectorTimestamp) -> VectorTimestamp:
        """Merge a received timestamp, then tick."""
        for key, value in remote.counts:
            self._counts[key] = max(self._counts.get(key, 0), value)
        return self.tick()

    def snapshot(self) -> VectorTimestamp:
        """Return the current timestamp without advancing."""
        return VectorTimestamp.of(self._counts)
