"""Shared utilities: ids, logical clocks, events, errors, serialization."""

from repro.util.clock import LamportClock, Ordering, VectorClock, VectorTimestamp
from repro.util.events import Event, EventBus, EventRecorder, topic_matches
from repro.util.ids import IdFactory, next_id, reset_ids
from repro.util.serialization import (
    TYPE_KEY,
    CodecRegistry,
    canonical_json,
    deep_merge,
    document_size,
)

__all__ = [
    "LamportClock",
    "Ordering",
    "VectorClock",
    "VectorTimestamp",
    "Event",
    "EventBus",
    "EventRecorder",
    "topic_matches",
    "IdFactory",
    "next_id",
    "reset_ids",
    "TYPE_KEY",
    "CodecRegistry",
    "canonical_json",
    "deep_merge",
    "document_size",
]
