"""Deterministic identifier generation.

The simulator must be fully reproducible, so identifiers are never derived
from ``uuid4`` or wall-clock time.  Instead each :class:`IdFactory` hands out
sequential ids within a namespace (``"act-0001"``, ``"act-0002"``, ...), and
a process-global factory is provided for convenience.  Tests can reset the
global factory to get stable ids across runs.
"""

from __future__ import annotations

import itertools
from collections import defaultdict


class IdFactory:
    """Hands out deterministic, namespaced, sequential identifiers.

    >>> ids = IdFactory()
    >>> ids.next("msg")
    'msg-0001'
    >>> ids.next("msg")
    'msg-0002'
    >>> ids.next("node")
    'node-0001'
    """

    def __init__(self, width: int = 4) -> None:
        if width < 1:
            raise ValueError("width must be >= 1")
        self._width = width
        self._counters: dict[str, itertools.count] = defaultdict(
            lambda: itertools.count(1)
        )

    def next(self, namespace: str) -> str:
        """Return the next id in *namespace*, e.g. ``"msg-0007"``."""
        if not namespace:
            raise ValueError("namespace must be non-empty")
        value = next(self._counters[namespace])
        return f"{namespace}-{value:0{self._width}d}"

    def peek(self, namespace: str) -> int:
        """Return the integer the next id in *namespace* would carry.

        Peeking does not consume an id.
        """
        counter = self._counters[namespace]
        value = next(counter)
        # Re-prime the counter so the peeked value is handed out next.
        self._counters[namespace] = itertools.count(value)
        return value

    def reset(self, namespace: str | None = None) -> None:
        """Reset one namespace, or every namespace when *namespace* is None."""
        if namespace is None:
            self._counters.clear()
        else:
            self._counters.pop(namespace, None)


_GLOBAL = IdFactory()


def next_id(namespace: str) -> str:
    """Return the next id from the process-global factory."""
    return _GLOBAL.next(namespace)


def reset_ids(namespace: str | None = None) -> None:
    """Reset the process-global factory (used by test fixtures)."""
    _GLOBAL.reset(namespace)
