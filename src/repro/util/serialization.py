"""Structured-value serialization used at interchange boundaries.

When information objects cross application boundaries through the CSCW
environment (paper section 4, "services for the access and exchange of
information between CSCW and non-CSCW applications"), they travel as plain
``dict`` documents.  This module provides a tiny codec registry so that
typed model objects can round-trip through that representation, plus a
canonical-form helper used to compare documents structurally.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Protocol, TypeVar

from repro.util.errors import ConfigurationError

T = TypeVar("T")

#: key under which the codec stores the registered type name
TYPE_KEY = "_type"


class Serializable(Protocol):
    """Objects that can serialize themselves to a plain document."""

    def to_document(self) -> dict[str, Any]:  # pragma: no cover - protocol
        """Return a plain-dict representation suitable for transport."""
        ...


class CodecRegistry:
    """Registry mapping type names to (encode, decode) functions."""

    def __init__(self) -> None:
        self._encoders: dict[type, tuple[str, Callable[[Any], dict[str, Any]]]] = {}
        self._decoders: dict[str, Callable[[dict[str, Any]], Any]] = {}

    def register(
        self,
        name: str,
        cls: type,
        encode: Callable[[Any], dict[str, Any]],
        decode: Callable[[dict[str, Any]], Any],
    ) -> None:
        """Register a codec for *cls* under *name*."""
        if name in self._decoders:
            raise ConfigurationError(f"codec {name!r} already registered")
        self._encoders[cls] = (name, encode)
        self._decoders[name] = decode

    def registered_names(self) -> list[str]:
        """Names of all registered codecs, sorted."""
        return sorted(self._decoders)

    def encode(self, obj: Any) -> dict[str, Any]:
        """Encode *obj* to a document tagged with its type name."""
        entry = self._encoders.get(type(obj))
        if entry is None:
            raise ConfigurationError(f"no codec registered for {type(obj).__name__}")
        name, encode = entry
        document = encode(obj)
        document[TYPE_KEY] = name
        return document

    def decode(self, document: dict[str, Any]) -> Any:
        """Decode a tagged document back to a typed object."""
        name = document.get(TYPE_KEY)
        if name is None:
            raise ConfigurationError("document carries no type tag")
        decode = self._decoders.get(name)
        if decode is None:
            raise ConfigurationError(f"no codec registered for type tag {name!r}")
        body = {k: v for k, v in document.items() if k != TYPE_KEY}
        return decode(body)


def canonical_json(document: Any) -> str:
    """Render a document as canonical JSON (sorted keys, no whitespace).

    Two documents are structurally equal iff their canonical JSON matches.
    """
    return json.dumps(document, sort_keys=True, separators=(",", ":"), default=str)


def document_size(document: Any) -> int:
    """Size in bytes of the canonical JSON encoding of *document*.

    Used by the simulated network and the messaging substrate to charge
    transmission time proportional to payload size.
    """
    return len(canonical_json(document).encode("utf-8"))


def deep_merge(base: dict[str, Any], overlay: dict[str, Any]) -> dict[str, Any]:
    """Return a new dict where *overlay* is merged recursively over *base*.

    Used by the tailoring toolkit to apply partial configuration overrides.
    """
    merged = dict(base)
    for key, value in overlay.items():
        if isinstance(value, dict) and isinstance(merged.get(key), dict):
            merged[key] = deep_merge(merged[key], value)
        else:
            merged[key] = value
    return merged
