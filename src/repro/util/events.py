"""In-process publish/subscribe event bus with hierarchical topics.

The CSCW environment's *activity transparency* (paper section 4) requires
that "a set of objects cooperating in one activity ... not be disturbed by
other unrelated activities".  We realise this by scoping event delivery to
topics: subscribers name a topic prefix and only see events published at or
below it.  Topics are ``/``-separated paths, e.g. ``activity/act-0001/chat``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.metrics import NULL_METRICS, MetricsRegistry


@dataclass(frozen=True)
class Event:
    """A published event: a topic, a payload, and the publisher's identity.

    ``time`` is the simulated time of publication: a bus with a bound
    clock (see :meth:`EventBus.bind_clock`) stamps it automatically, so
    events and trace spans agree on when things happened.
    """

    topic: str
    payload: Any
    source: str = ""
    time: float = 0.0


Handler = Callable[[Event], None]


def topic_matches(pattern: str, topic: str) -> bool:
    """Return True when *topic* falls under *pattern*.

    A pattern matches itself and any descendant topic.  The special pattern
    ``"*"`` matches every topic.

    >>> topic_matches("activity/a1", "activity/a1/chat")
    True
    >>> topic_matches("activity/a1", "activity/a2")
    False
    """
    if pattern == "*":
        return True
    if pattern == topic:
        return True
    return topic.startswith(pattern + "/")


@dataclass
class _Subscription:
    pattern: str
    handler: Handler
    subscriber: str
    token: int


class EventBus:
    """A synchronous, deterministic publish/subscribe bus.

    Handlers run inline in subscription order, which keeps simulations
    reproducible.  Exceptions in handlers propagate to the publisher (errors
    should never pass silently); callers that want isolation can wrap their
    handler.
    """

    def __init__(self) -> None:
        self._subs: list[_Subscription] = []
        self._next_token = 1
        self._delivered = 0
        self._published = 0
        self._clock: Callable[[], float] | None = None
        self._obs: MetricsRegistry = NULL_METRICS

    def bind_clock(self, clock: Callable[[], float] | None) -> None:
        """Stamp events published without an explicit time from *clock*.

        The environment binds its engine's simulated clock here so every
        publish carries the simulated time it happened at; an unbound bus
        keeps the historical default of 0.0.
        """
        self._clock = clock

    def attach_metrics(self, metrics: MetricsRegistry | None) -> None:
        """Report bus activity to *metrics* (``None`` detaches).

        Counters ``events.published``/``events.delivered`` and the
        ``events.fanout`` subscriber fan-out histogram.
        """
        self._obs = metrics if metrics is not None else NULL_METRICS

    @property
    def delivered_count(self) -> int:
        """Total number of handler invocations so far."""
        return self._delivered

    @property
    def published_count(self) -> int:
        """Total number of publish calls so far."""
        return self._published

    def subscribe(self, pattern: str, handler: Handler, subscriber: str = "") -> int:
        """Register *handler* for events under *pattern*; return a token."""
        if not pattern:
            raise ValueError("pattern must be non-empty")
        token = self._next_token
        self._next_token += 1
        self._subs.append(_Subscription(pattern, handler, subscriber, token))
        return token

    def unsubscribe(self, token: int) -> bool:
        """Remove the subscription with *token*; return True if it existed."""
        before = len(self._subs)
        self._subs = [s for s in self._subs if s.token != token]
        return len(self._subs) < before

    def subscriptions_for(self, subscriber: str) -> list[str]:
        """Return the patterns a subscriber is currently registered under."""
        return [s.pattern for s in self._subs if s.subscriber == subscriber]

    def publish(
        self, topic: str, payload: Any, source: str = "", time: float | None = None
    ) -> int:
        """Publish an event; return the number of handlers that saw it.

        When *time* is omitted the bus stamps the bound clock's current
        value (0.0 on an unbound bus), so publishers need not thread the
        simulated time through themselves.
        """
        if not topic:
            raise ValueError("topic must be non-empty")
        if time is None:
            time = self._clock() if self._clock is not None else 0.0
        event = Event(topic=topic, payload=payload, source=source, time=time)
        self._published += 1
        count = 0
        for sub in list(self._subs):
            if topic_matches(sub.pattern, topic):
                sub.handler(event)
                count += 1
        self._delivered += count
        obs = self._obs
        if obs.enabled:
            obs.inc("events.published")
            obs.inc("events.delivered", count)
            obs.observe("events.fanout", count)
        return count


@dataclass
class EventRecorder:
    """A handler that records events, handy in tests and metrics.

    >>> bus = EventBus()
    >>> rec = EventRecorder()
    >>> _ = bus.subscribe("a", rec)
    >>> _ = bus.publish("a/b", 1)
    >>> rec.topics()
    ['a/b']
    """

    events: list[Event] = field(default_factory=list)

    def __call__(self, event: Event) -> None:
        self.events.append(event)

    def topics(self) -> list[str]:
        """Topics of recorded events, in delivery order."""
        return [e.topic for e in self.events]

    def payloads(self) -> list[Any]:
        """Payloads of recorded events, in delivery order."""
        return [e.payload for e in self.events]

    def clear(self) -> None:
        """Forget all recorded events."""
        self.events.clear()
