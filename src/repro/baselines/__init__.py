"""Baselines the paper argues against: the closed world of Figure 2."""

from repro.baselines.closed import AdHocGateway, ClosedWorld, build_direct_gateway

__all__ = ["AdHocGateway", "ClosedWorld", "build_direct_gateway"]
