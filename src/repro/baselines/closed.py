"""The closed-world baseline: isolated applications, pairwise gateways.

Figure 2 of the paper: "These applications are often unaware of the
existence of other applications and provide few mechanisms for working in
conjunction with other applications."  In the closed world every pair of
applications that wants to interoperate needs a *hand-built ad-hoc
gateway* per direction; nothing works by default.

Experiment E2 compares this world with the environment world on two axes:
integration cost (gateways built: O(N^2) vs converters: O(N)) and
interoperability coverage (fraction of app pairs that can exchange).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.apps.base import GroupwareApp
from repro.util.errors import ConfigurationError, InteropError

Translator = Callable[[dict[str, Any]], dict[str, Any]]


@dataclass(frozen=True)
class AdHocGateway:
    """A hand-built one-directional translator between two apps."""

    source_app: str
    target_app: str
    translate: Translator
    #: hand-built gateways are typically lossier than going through a
    #: well-specified common form
    fidelity: float = 0.85


def build_direct_gateway(source: GroupwareApp, target: GroupwareApp) -> AdHocGateway:
    """Hand-build a gateway by composing the two apps' converters.

    In reality each such gateway was a bespoke engineering effort; here we
    compose converters (what a bespoke gateway would effectively do) but
    still *count* it as one built artifact, which is what E2 measures.
    """
    source_converter = source.converter()
    target_converter = target.converter()

    def translate(document: dict[str, Any]) -> dict[str, Any]:
        return target_converter.from_common(source_converter.to_common(document))

    return AdHocGateway(source.name, target.name, translate)


class ClosedWorld:
    """A population of isolated applications plus whatever gateways exist."""

    def __init__(self) -> None:
        self._apps: dict[str, GroupwareApp] = {}
        self._gateways: dict[tuple[str, str], AdHocGateway] = {}
        self.exchanges_attempted = 0
        self.exchanges_failed = 0

    # -- population -----------------------------------------------------------
    def add_app(self, app: GroupwareApp) -> None:
        """Add an isolated application."""
        if app.name in self._apps:
            raise ConfigurationError(f"app {app.name!r} already in the closed world")
        if app.is_open:
            raise ConfigurationError(
                f"app {app.name!r} is attached to an environment; it is not closed"
            )
        self._apps[app.name] = app

    def app(self, name: str) -> GroupwareApp:
        """Look up an application."""
        try:
            return self._apps[name]
        except KeyError:
            raise ConfigurationError(f"unknown app {name!r}") from None

    def app_names(self) -> list[str]:
        """All applications, sorted."""
        return sorted(self._apps)

    # -- gateways ---------------------------------------------------------------
    def build_gateway(self, source_name: str, target_name: str) -> AdHocGateway:
        """Hand-build a one-directional gateway between two apps."""
        key = (source_name, target_name)
        if key in self._gateways:
            raise ConfigurationError(f"gateway {source_name}->{target_name} already built")
        gateway = build_direct_gateway(self.app(source_name), self.app(target_name))
        self._gateways[key] = gateway
        return gateway

    def build_all_gateways(self) -> int:
        """Full pairwise integration: N*(N-1) gateways.  Returns the count."""
        built = 0
        for source in self._apps:
            for target in self._apps:
                if source != target and (source, target) not in self._gateways:
                    self.build_gateway(source, target)
                    built += 1
        return built

    def gateway_count(self) -> int:
        """Integration artifacts built so far."""
        return len(self._gateways)

    def interop_coverage(self) -> float:
        """Fraction of ordered app pairs that can exchange documents."""
        names = list(self._apps)
        if len(names) < 2:
            return 1.0
        total = len(names) * (len(names) - 1)
        reachable = 0
        for source in names:
            for target in names:
                if source == target:
                    continue
                same_format = (
                    self._apps[source].format_name == self._apps[target].format_name
                )
                if same_format or (source, target) in self._gateways:
                    reachable += 1
        return reachable / total

    # -- exchange -------------------------------------------------------------------
    def send(
        self, source_name: str, target_name: str, receiver: str, document: dict[str, Any]
    ) -> bool:
        """Attempt a cross-app exchange in the closed world.

        Succeeds only when the formats already match or a gateway was
        hand-built for this direction; otherwise the exchange is lost —
        the Figure 2 failure mode.
        """
        self.exchanges_attempted += 1
        source = self.app(source_name)
        target = self.app(target_name)
        if source.format_name == target.format_name:
            target.deliver(receiver, dict(document), {"via": "same-format"})
            return True
        gateway = self._gateways.get((source_name, target_name))
        if gateway is None:
            self.exchanges_failed += 1
            return False
        try:
            translated = gateway.translate(document)
        except Exception as exc:
            self.exchanges_failed += 1
            raise InteropError(f"gateway {source_name}->{target_name} failed: {exc}") from exc
        target.deliver(receiver, translated, {"via": "gateway", "fidelity": gateway.fidelity})
        return True
