"""Deterministic exporters: Chrome trace viewer, JSONL spans, metrics.

Three zero-dependency export formats for seeded runs:

* :func:`to_chrome_trace` — the Chrome trace-viewer / Perfetto JSON
  format (``chrome://tracing``, https://ui.perfetto.dev): one complete
  ("ph": "X") event per finished span, microsecond timestamps on the
  span's own clock, one pid per trace so multi-trace dumps render as
  separate process lanes,
* :func:`to_jsonl` — one JSON object per span per line, the shape log
  pipelines ingest,
* :func:`export_metrics` — a :class:`~repro.obs.metrics.MetricsRegistry`
  snapshot as pretty-printed JSON.

Everything is sorted and derived from span content only — no wall
clock, no randomness — so a seeded run exports byte-identical files.

>>> from repro.obs.tracing import Tracer
>>> tracer = Tracer()
>>> with tracer.span("outer"):
...     with tracer.span("inner"):
...         pass
>>> blob = to_chrome_trace(tracer.finished())
>>> [e["name"] for e in blob["traceEvents"] if e["ph"] == "X"]
['outer', 'inner']
"""

from __future__ import annotations

import json
from typing import Any, Iterable

#: sim seconds -> chrome trace microseconds
_MICROS = 1_000_000.0


def _as_dict(span: Any) -> dict[str, Any]:
    """Normalise a Span object or an already-exported dict."""
    return span.to_dict() if hasattr(span, "to_dict") else dict(span)


def to_chrome_trace(spans: Iterable[Any]) -> dict[str, Any]:
    """Spans as a Chrome trace-viewer / Perfetto JSON document.

    Each finished span becomes one complete event; traces map to pids in
    first-appearance order (with a ``process_name`` metadata record each,
    so the viewer labels the lane with the trace id).  Timestamps are
    non-negative microseconds on the span's recorded clock; events are
    emitted in (ts, pid) order so the document is stable for diffing.
    """
    records = [_as_dict(span) for span in spans]
    pids: dict[str, int] = {}
    for record in records:
        pids.setdefault(record["trace_id"], len(pids) + 1)
    events: list[dict[str, Any]] = []
    for trace_id, pid in pids.items():
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": trace_id},
            }
        )
    complete = []
    for record in records:
        if record["end"] is None:
            continue  # an open span has no duration yet
        start_us = max(record["start"], 0.0) * _MICROS
        complete.append(
            {
                "name": record["name"],
                "cat": record["clock"],
                "ph": "X",
                "ts": start_us,
                "dur": max(record["duration"], 0.0) * _MICROS,
                "pid": pids[record["trace_id"]],
                "tid": 0,
                "args": {
                    "span_id": record["span_id"],
                    "parent_id": record["parent_id"],
                    **record["tags"],
                },
            }
        )
    # Longer events first at equal (ts, pid): enclosing spans precede
    # their children, and span_id settles exact ties deterministically.
    complete.sort(
        key=lambda event: (
            event["ts"],
            event["pid"],
            -event["dur"],
            event["args"]["span_id"],
        )
    )
    events.extend(complete)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_json(spans: Iterable[Any]) -> str:
    """The Chrome trace document as a JSON string (sorted keys)."""
    return json.dumps(to_chrome_trace(spans), sort_keys=True, indent=2)


def export_chrome_trace(spans: Iterable[Any], path: str) -> str:
    """Write the Chrome trace JSON to *path*; returns *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(chrome_trace_json(spans) + "\n")
    return path


def to_jsonl(spans: Iterable[Any]) -> str:
    """Spans as JSONL: one sorted-key JSON object per line."""
    return "\n".join(
        json.dumps(_as_dict(span), sort_keys=True) for span in spans
    )


def export_jsonl(spans: Iterable[Any], path: str) -> str:
    """Write span JSONL to *path*; returns *path*."""
    content = to_jsonl(spans)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content + ("\n" if content else ""))
    return path


def export_metrics(registry: Any, path: str) -> str:
    """Write a metrics registry snapshot as JSON to *path*; returns *path*.

    Accepts anything with a ``snapshot()`` (a
    :class:`~repro.obs.metrics.MetricsRegistry`) or a pre-taken snapshot
    dict.
    """
    snapshot = registry.snapshot() if hasattr(registry, "snapshot") else registry
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(snapshot, sort_keys=True, indent=2) + "\n")
    return path
