"""Sim-clock-aware trace spans.

A :class:`Tracer` opens nested :class:`Span`\\ s through a context
manager; by default the span clock is the *simulated* clock (bind an
engine with :meth:`Tracer.bind_engine`), so durations measure how much
simulated time an operation covered — the quantity the paper's claims
are about.  Pass ``wall=True`` to profile the library itself instead
with ``time.perf_counter`` (the one sanctioned wall-clock escape hatch;
everything else in the repo stays deterministic).

Trace and span ids are drawn from deterministic counters — no wall
clock, no randomness — so a seeded run always produces the same ids.

**Sampling** (:meth:`Tracer.configure_sampling`) makes tracing cheap
enough to leave on at scale: a seeded hash of the trace id decides at
the *root* whether a trace is recorded, the decision rides along in
:class:`~repro.obs.context.TraceContext` so every hop agrees, and
tail-biased retention rescues any unsampled trace that turns out to
matter — spans buffer until the trace settles, and a span that errors,
misses a deadline, fails over (``federation.forward``) or dead-letters
promotes its whole trace into the retained set.  The decision hash is
pure integer avalanche mixing of the root's trace index with the seed,
so it is independent of ``PYTHONHASHSEED`` and identical across runs.

>>> sampler = Tracer().configure_sampling(0.5, seed=7)
>>> decisions = []
>>> for _ in range(8):
...     with sampler.span("op") as span:
...         decisions.append(span.sampled)
>>> 0 < sum(decisions) < 8      # some kept, some dropped
True
>>> len(sampler.finished()) == sum(decisions)
True

>>> tracer = Tracer()
>>> with tracer.span("outer", who="ana") as outer:
...     with tracer.span("inner") as inner:
...         same_trace = inner.trace_id == outer.trace_id
>>> same_trace
True
>>> [s.name for s in tracer.finished()]
['inner', 'outer']
>>> NULL_TRACER.enabled
False
"""

from __future__ import annotations

import itertools
import time
from typing import Any, Callable

from repro.obs.context import TraceContext


def _zero_clock() -> float:
    """The unbound default: every reading is 0.0 until a clock is bound."""
    return 0.0


#: span names that always promote an unsampled trace into retention
#: (a forward is the failover marker — the interesting hop by definition)
RETAIN_SPAN_NAMES = frozenset({"federation.forward"})

#: an ``outcome``/``reason_code``/``reason`` tag value that means the
#: operation completed well; anything else on a settled span is a
#: failure signal worth keeping the whole trace for
_HEALTHY_OUTCOME = "delivered"

#: how many finalized traces may sit drained-but-unswept before the
#: pending table is compacted (bounds sampler memory without finalizing
#: a trace that might still grow a late asynchronous hop)
_PENDING_LAG = 64

#: recycled-span free-list bound: deep enough to absorb a steady
#: sampled-out stream, small enough that a burst of wide traces cannot
#: pin memory through the pool
_POOL_LIMIT = 256


class Span:
    """One traced operation: a name, tags, and start/end clock readings.

    ``start``/``end`` are readings of the owning tracer's clock —
    simulated seconds in the default mode, wall seconds in ``wall``
    mode (``clock`` records which).
    """

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "tags", "start", "end",
        "clock", "sampled", "_tracer", "_pending_state",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: str = "",
        tags: dict[str, Any] | None = None,
        clock: str = "sim",
        tracer: "Tracer | None" = None,
        sampled: bool = True,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        # the span takes ownership of *tags* (tracers pass a fresh
        # kwargs dict; copying it again would double the per-span cost)
        self.tags = tags if tags is not None else {}
        self.start = 0.0
        self.end: float | None = None
        self.clock = clock
        self.sampled = sampled
        self._tracer = tracer
        #: the pending-table entry of an unsampled span's trace, stashed
        #: at registration so closing skips the table lookup
        self._pending_state: "list[Any] | None" = None

    # The span is its own context manager (one allocation per traced
    # operation; a separate guard object would double it on a hot path).
    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.start = tracer._clock()
        tracer._stack.append(self)
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        tracer = self._tracer
        self.end = tracer._clock()
        if exc is not None:
            self.tags["error"] = repr(exc)
        tracer._stack.pop()
        if self.sampled:
            tracer._finished.append(self)
        else:
            tracer._close_unsampled(self)
        return False

    @property
    def finished(self) -> bool:
        """True once the span's context manager has exited."""
        return self.end is not None

    @property
    def duration(self) -> float:
        """Elapsed clock between start and end (0.0 while open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def tag(self, **tags: Any) -> "Span":
        """Attach or overwrite tags; returns self for chaining."""
        self.tags.update(tags)
        return self

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able view of the span."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "tags": dict(self.tags),
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "clock": self.clock,
        }


class Tracer:
    """Produces nested spans timed on a pluggable clock.

    The clock defaults to a constant 0.0 until one is bound; in normal
    use :func:`repro.obs.instrument.instrument_environment` (or
    ``CSCWEnvironment.builder()``) binds the simulation engine, so
    durations are expressed in simulated seconds.  ``Tracer(wall=True)``
    instead reads ``time.perf_counter`` for profiling the library's own
    execution cost; such spans are *not* deterministic and belong in
    profiling scripts, never in tests or experiments.
    """

    #: real tracers record; the null tracer advertises False
    enabled = True

    __slots__ = (
        "wall", "_clock", "_mode", "_stack", "_finished",
        "_trace_ids", "_span_ids",
        "_sample_cut", "_sample_p", "_sample_seed", "_sample_salt",
        "_pending", "_retained_ids", "_pool", "sampled_in", "sampled_out",
        "tail_retained",
    )

    def __init__(self, clock: Callable[[], float] | None = None, wall: bool = False) -> None:
        self.wall = wall
        # the clock is never None so the hot enter/exit path can call it
        # without a guard (the unbound default pins every reading to 0.0)
        if wall:
            self._clock: Callable[[], float] = time.perf_counter
        else:
            self._clock = clock if clock is not None else _zero_clock
        self._mode = "wall" if wall else "sim"
        self._stack: list[Span] = []
        self._finished: list[Span] = []
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        # -- head-sampling state (inert until configure_sampling) ----------
        self._sample_cut: int | None = None
        self._sample_p = 1.0
        self._sample_seed = 0
        self._sample_salt = 0
        #: trace_id → [open_spans, retain, buffered spans] for unsampled
        #: traces still settling
        self._pending: dict[str, list[Any]] = {}
        #: unsampled traces already promoted into ``_finished``
        self._retained_ids: set[str] = set()
        #: recycled Span shells from dropped traces (see :meth:`_make_span`)
        self._pool: list[Span] = []
        self.sampled_in = 0
        self.sampled_out = 0
        self.tail_retained = 0

    @property
    def mode(self) -> str:
        """``"wall"`` for perf_counter tracers, ``"sim"`` otherwise."""
        return self._mode

    @property
    def depth(self) -> int:
        """Number of currently open (nested) spans."""
        return len(self._stack)

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Use *clock* (a zero-arg float callable) for span timestamps."""
        if not self.wall:
            self._clock = clock

    def bind_engine(self, engine: Any) -> None:
        """Bind the simulated clock of *engine* (anything with ``.now``)."""
        self.bind_clock(lambda: engine.now)

    # -- sampling ----------------------------------------------------------
    def configure_sampling(self, p: float | None, seed: int = 0) -> "Tracer":
        """Head-sample traces at probability *p*, seeded and deterministic.

        ``p=None`` or ``p=1.0`` disables sampling (record everything —
        the pre-sampling fast path, byte-identical behaviour).  The
        decision is made once per trace at its root by avalanche-mixing
        the root's trace index with the seed, so the same seed always
        keeps the same traces; hops that continue a propagated
        :class:`TraceContext` inherit the origin's verdict.
        """
        if p is not None and not 0.0 <= p <= 1.0:
            raise ValueError("sampling probability must be in [0, 1]")
        if p is None or p >= 1.0:
            self._sample_cut = None
            self._sample_p = 1.0
        else:
            self._sample_cut = int(p * 2**32)
            self._sample_p = p
        self._sample_seed = seed
        # pre-mix the seed once so the per-trace verdict is pure integer
        # arithmetic (the hot path pays no encode/concat/digest)
        salt = (seed * 0x85EBCA6B + 0xC2B2AE35) & 0xFFFFFFFF
        salt = ((salt ^ (salt >> 16)) * 0x45D9F3B) & 0xFFFFFFFF
        self._sample_salt = salt ^ (salt >> 16)
        return self

    @property
    def sampling(self) -> tuple[float, int] | None:
        """``(p, seed)`` while sampling is on, else ``None``."""
        if self._sample_cut is None:
            return None
        return (self._sample_p, self._sample_seed)

    def _decide(self, index: int) -> bool:
        """The seeded per-trace keep/drop verdict (made once, at the root).

        *index* is the root's draw from the trace-id counter, so the
        verdict is a pure-integer function of (index, seed): independent
        of ``PYTHONHASHSEED``, identical across runs.  Multiplying by an
        odd constant and avalanche-mixing breaks the linearity of the
        counter (and of the additive seed salt), so consecutive traces
        land uniformly and distinct seeds select effectively independent
        sample sets.  Every avoided statement here is paid once per
        exchange when sampling is on, which is why the input is the raw
        counter value and not the formatted trace id.
        """
        digest = (index * 0x9E3779B1 + self._sample_salt) & 0xFFFFFFFF
        digest = ((digest ^ (digest >> 16)) * 0x45D9F3B) & 0xFFFFFFFF
        digest ^= digest >> 16
        if digest < self._sample_cut:
            self.sampled_in += 1
            return True
        self.sampled_out += 1
        return False

    @staticmethod
    def _should_retain(span: Span) -> bool:
        """Tail-bias: does this settled span make its trace worth keeping?"""
        tags = span.tags
        if tags:
            if "error" in tags:
                return True
            for key in ("outcome", "reason_code", "reason"):
                value = tags.get(key)
                if value is not None and value != _HEALTHY_OUTCOME:
                    return True
            if tags.get("delivered") is False:
                return True
        return span.name in RETAIN_SPAN_NAMES

    def _register_unsampled(self, span: Span, trace_id: str) -> None:
        """Count one more open span on an unsampled, unsettled trace.

        The pending entry is stashed on the span so closing needs no
        second table lookup.  A trace already promoted by tail retention
        never re-enters the pending table: its late spans go straight to
        the retained set in :meth:`_close_unsampled` (re-registering
        would make the late hop's fate depend on its own tags, splitting
        the trace).
        """
        if trace_id in self._retained_ids:
            return
        state = self._pending.get(trace_id)
        if state is None:
            state = self._pending[trace_id] = [1, False, []]
        else:
            state[0] += 1
        span._pending_state = state

    def _close_unsampled(self, span: Span) -> None:
        """Buffer a closing unsampled span; settle its trace when done.

        Multi-span traces finalize lazily (the pending table is swept
        once it holds more than ``_PENDING_LAG`` traces): an async hop —
        a redriven letter, a forward opened during settlement — may join
        a trace whose span count transiently touched zero, and eager
        finalization would split it.  A single-span trace — a root no
        other span ever joined — settles right here instead: the only
        spans that could still join it are ones created after it fully
        closed, the same post-settlement corner the lazy sweep already
        concedes once a trace ages out of the table.
        """
        state = span._pending_state
        if state is None:
            trace_id = span.trace_id
            state = self._pending.get(trace_id)
            if state is None:
                if trace_id in self._retained_ids:
                    # late hop of an already-promoted trace: keep it too
                    self._finished.append(span)
                elif self._should_retain(span):
                    self._finished.append(span)
                    self._retained_ids.add(trace_id)
                    self.tail_retained += 1
                elif len(self._pool) < _POOL_LIMIT:
                    # dropped solo shells feed the free-list directly, so
                    # a sampled-out steady state stops allocating at all
                    self._pool.append(span)
                return
            # a deferred root whose trace gained only detached spans:
            # it was never counted, so buffer it without decrementing
        else:
            span._pending_state = None
            state[0] -= 1
        state[2].append(span)
        if not state[1] and self._should_retain(span):
            state[1] = True
        if len(self._pending) > _PENDING_LAG:
            self._drain_pending()

    def _drain_pending(self) -> None:
        """Finalize every settled pending trace: promote or drop.

        Dropped traces hand their span shells back to the free-list, so
        a sampled-out steady state allocates (almost) no Span objects —
        the pool bound keeps a burst of deep traces from pinning memory.
        """
        settled = [
            trace_id
            for trace_id, state in self._pending.items()
            if state[0] <= 0
        ]
        for trace_id in settled:
            state = self._pending.pop(trace_id)
            if state[1]:
                self._finished.extend(state[2])
                self._retained_ids.add(trace_id)
                self.tail_retained += 1
            else:
                budget = _POOL_LIMIT - len(self._pool)
                if budget > 0:
                    self._pool.extend(state[2][:budget])

    def _make_span(
        self,
        name: str,
        trace_id: str,
        parent_id: str,
        tags: dict[str, Any],
        sampled: bool,
    ) -> Span:
        """Build a span, reusing a recycled shell when one is available.

        Only spans of *dropped* unsampled traces enter the pool (see
        :meth:`_drain_pending`), so recorded spans are never mutated
        behind a reader's back; holding a span of a dropped trace past
        its settlement is not part of the API contract.
        """
        span_id = f"span-{next(self._span_ids):04d}"
        if self._pool:
            span = self._pool.pop()
            span.name = name
            span.trace_id = trace_id
            span.span_id = span_id
            span.parent_id = parent_id
            span.tags = tags
            span.start = 0.0
            span.end = None
            span.clock = self._mode
            span.sampled = sampled
            span._tracer = self
            span._pending_state = None
            return span
        return Span(
            name,
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            tags=tags,
            clock=self._mode,
            tracer=self,
            sampled=sampled,
        )

    def span(self, name: str, **tags: Any) -> Span:
        """Open a span as a context manager yielding the :class:`Span`.

        Nested calls inherit the enclosing span's ``trace_id`` and point
        their ``parent_id`` at it; a root span starts a fresh trace.
        """
        parent = self._stack[-1] if self._stack else None
        if parent is None:
            index = next(self._trace_ids)
            trace_id = f"trace-{index:04d}"
            parent_id = ""
            sampled = True if self._sample_cut is None else self._decide(index)
            # An unsampled root defers registration: if no other span ever
            # joins the trace, it settles solo at close with no table
            # traffic at all — the dominant shape of sampled-out traffic.
            return self._make_span(name, trace_id, parent_id, tags, sampled)
        trace_id = parent.trace_id
        parent_id = parent.span_id
        sampled = parent.sampled
        span = self._make_span(name, trace_id, parent_id, tags, sampled)
        if not sampled:
            state = parent._pending_state
            if state is None:
                # first company for a deferred root: register the trace
                # late and count the still-open root alongside the child
                state = self._pending.get(trace_id)
                if state is None:
                    state = self._pending[trace_id] = [0, False, []]
                state[0] += 1
                parent._pending_state = state
            state[0] += 1
            span._pending_state = state
        return span

    def span_from_context(
        self, name: str, context: TraceContext | None, **tags: Any
    ) -> Span:
        """Open a span continuing a trace shipped from another component.

        The span joins *context*'s trace with its ``parent_id`` pointing
        at the remote span — the receiving half of trace propagation: a
        gateway relay handler (or MTA) opens its work under the origin's
        trace instead of starting a fresh one.  Spans nested inside
        inherit normally.  A ``None`` context degrades to :meth:`span`
        (the sender had no tracing on).
        """
        if context is None:
            return self.span(name, **tags)
        sampled = context.sampled
        span = self._make_span(
            name, context.trace_id, context.span_id, tags, sampled
        )
        if not sampled:
            self._register_unsampled(span, context.trace_id)
        return span

    def current_context(self) -> TraceContext | None:
        """The innermost open span's identity, ready to serialize.

        ``None`` when no span is open — callers ship it as-is and the
        receiving side degrades gracefully (see :meth:`span_from_context`).
        """
        if not self._stack:
            return None
        top = self._stack[-1]
        return TraceContext(
            trace_id=top.trace_id, span_id=top.span_id, sampled=top.sampled
        )

    def start_span(
        self,
        name: str,
        context: TraceContext | None = None,
        **tags: Any,
    ) -> Span:
        """Start a *detached* span: clocked now, finished by :meth:`finish`.

        Detached spans never touch the nesting stack, so they are the
        right shape for asynchronous operations — a gateway relay or MTA
        transfer whose completion callback fires many events later, with
        unrelated spans opening and closing in between.  With *context*
        the span continues that trace; without, it parents under the
        currently open span (or roots a fresh trace).
        """
        if context is None:
            context = self.current_context()
        if context is None:
            index = next(self._trace_ids)
            trace_id = f"trace-{index:04d}"
            parent_id = ""
            sampled = True if self._sample_cut is None else self._decide(index)
        else:
            trace_id = context.trace_id
            parent_id = context.span_id
            sampled = context.sampled
        span = self._make_span(name, trace_id, parent_id, tags, sampled)
        if not sampled:
            self._register_unsampled(span, trace_id)
        span.start = self._clock()
        return span

    def finish(self, span: Span) -> Span:
        """Close a detached span from :meth:`start_span` (idempotent)."""
        if span.end is None:
            span.end = self._clock()
            if span.sampled:
                self._finished.append(span)
            else:
                self._close_unsampled(span)
        return span

    def finished(self) -> list[Span]:
        """All closed spans, in completion order.

        Settled unsampled-but-retained traces are swept in first, so a
        post-run reader never misses a promoted trace that had not hit
        the lazy drain threshold yet.
        """
        if self._pending:
            self._drain_pending()
        return list(self._finished)

    def drain(self) -> list[Span]:
        """Consume all closed spans: return them and clear the buffer.

        The exporter-loop primitive: a periodic in-process exporter
        calls ``drain()``, ships the batch, and releases the shells, so
        a long run holds memory proportional to the drain period rather
        than to its total span volume.  Unlike :meth:`reset` the id
        counters keep running, so draining never perturbs determinism.
        """
        if self._pending:
            self._drain_pending()
        spans = self._finished
        self._finished = []
        return spans

    def to_dicts(self) -> list[dict[str, Any]]:
        """All closed spans as JSON-able dicts."""
        return [span.to_dict() for span in self._finished]

    def reset(self, ids: bool = False) -> None:
        """Forget finished spans (open spans are unaffected).

        By default the trace/span id counters keep running, so ids stay
        unique across resets within one run.  ``reset(ids=True)``
        restarts them too — required for determinism when a reseeded run
        reuses the tracer: a reset-with-ids tracer emits exactly the ids
        a fresh one would.
        """
        self._finished.clear()
        self._pending.clear()
        self._retained_ids.clear()
        self.sampled_in = 0
        self.sampled_out = 0
        self.tail_retained = 0
        if ids:
            self._trace_ids = itertools.count(1)
            self._span_ids = itertools.count(1)


class _NullSpanContext:
    """Reusable no-op context manager yielding the shared null span."""

    __slots__ = ()

    def __enter__(self) -> Span:
        return NULL_SPAN

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False


class _NullSpan(Span):
    """The shared inert span handed out when tracing is disabled."""

    __slots__ = ()

    def tag(self, **tags: Any) -> "Span":
        """Discard the tags."""
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False


class NullTracer(Tracer):
    """The default, disabled tracer: ``span()`` costs one attribute load.

    Every component and environment starts with this attached, so code
    can open spans unconditionally; the shared context manager object is
    reused, so the disabled path allocates nothing.
    """

    enabled = False

    __slots__ = ("_null_context",)

    def __init__(self) -> None:
        super().__init__()
        self._null_context = _NullSpanContext()

    def span(self, name: str, **tags: Any) -> Span:
        """Return the shared no-op context manager."""
        return self._null_context  # type: ignore[return-value]

    def span_from_context(
        self, name: str, context: TraceContext | None, **tags: Any
    ) -> Span:
        """Return the shared no-op context manager (context discarded)."""
        return self._null_context  # type: ignore[return-value]

    def current_context(self) -> TraceContext | None:
        """A disabled tracer has no trace to propagate."""
        return None

    def start_span(
        self,
        name: str,
        context: TraceContext | None = None,
        **tags: Any,
    ) -> Span:
        """The shared inert span; :meth:`finish` on it is a no-op."""
        return NULL_SPAN

    def finish(self, span: Span) -> Span:
        """Discard the finish (the null span is shared and never ends)."""
        return span

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Ignore the clock; a disabled tracer never reads it."""

    def finished(self) -> list[Span]:
        """Always empty."""
        return []

    def drain(self) -> list[Span]:
        """Always empty (nothing is ever recorded)."""
        return []


#: the span yielded by a disabled tracer (empty ids, inert tag());
#: ``sampled=False`` so per-span enrichment guarded on ``span.sampled``
#: (shard resolution, relay re-stamps) costs nothing when tracing is off
NULL_SPAN = _NullSpan("", trace_id="", span_id="", sampled=False)

#: the shared disabled tracer every component starts with
NULL_TRACER = NullTracer()
