"""Sim-clock-aware trace spans.

A :class:`Tracer` opens nested :class:`Span`\\ s through a context
manager; by default the span clock is the *simulated* clock (bind an
engine with :meth:`Tracer.bind_engine`), so durations measure how much
simulated time an operation covered — the quantity the paper's claims
are about.  Pass ``wall=True`` to profile the library itself instead
with ``time.perf_counter`` (the one sanctioned wall-clock escape hatch;
everything else in the repo stays deterministic).

Trace and span ids are drawn from deterministic counters — no wall
clock, no randomness — so a seeded run always produces the same ids.

>>> tracer = Tracer()
>>> with tracer.span("outer", who="ana") as outer:
...     with tracer.span("inner") as inner:
...         same_trace = inner.trace_id == outer.trace_id
>>> same_trace
True
>>> [s.name for s in tracer.finished()]
['inner', 'outer']
>>> NULL_TRACER.enabled
False
"""

from __future__ import annotations

import itertools
import time
from typing import Any, Callable

from repro.obs.context import TraceContext


def _zero_clock() -> float:
    """The unbound default: every reading is 0.0 until a clock is bound."""
    return 0.0


class Span:
    """One traced operation: a name, tags, and start/end clock readings.

    ``start``/``end`` are readings of the owning tracer's clock —
    simulated seconds in the default mode, wall seconds in ``wall``
    mode (``clock`` records which).
    """

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "tags", "start", "end",
        "clock", "_tracer",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: str = "",
        tags: dict[str, Any] | None = None,
        clock: str = "sim",
        tracer: "Tracer | None" = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        # the span takes ownership of *tags* (tracers pass a fresh
        # kwargs dict; copying it again would double the per-span cost)
        self.tags = tags if tags is not None else {}
        self.start = 0.0
        self.end: float | None = None
        self.clock = clock
        self._tracer = tracer

    # The span is its own context manager (one allocation per traced
    # operation; a separate guard object would double it on a hot path).
    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.start = tracer._clock()
        tracer._stack.append(self)
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        tracer = self._tracer
        self.end = tracer._clock()
        if exc is not None:
            self.tags["error"] = repr(exc)
        tracer._stack.pop()
        tracer._finished.append(self)
        return False

    @property
    def finished(self) -> bool:
        """True once the span's context manager has exited."""
        return self.end is not None

    @property
    def duration(self) -> float:
        """Elapsed clock between start and end (0.0 while open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def tag(self, **tags: Any) -> "Span":
        """Attach or overwrite tags; returns self for chaining."""
        self.tags.update(tags)
        return self

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able view of the span."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "tags": dict(self.tags),
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "clock": self.clock,
        }


class Tracer:
    """Produces nested spans timed on a pluggable clock.

    The clock defaults to a constant 0.0 until one is bound; in normal
    use :func:`repro.obs.instrument.instrument_environment` (or
    ``CSCWEnvironment.builder()``) binds the simulation engine, so
    durations are expressed in simulated seconds.  ``Tracer(wall=True)``
    instead reads ``time.perf_counter`` for profiling the library's own
    execution cost; such spans are *not* deterministic and belong in
    profiling scripts, never in tests or experiments.
    """

    #: real tracers record; the null tracer advertises False
    enabled = True

    __slots__ = (
        "wall", "_clock", "_mode", "_stack", "_finished",
        "_trace_ids", "_span_ids",
    )

    def __init__(self, clock: Callable[[], float] | None = None, wall: bool = False) -> None:
        self.wall = wall
        # the clock is never None so the hot enter/exit path can call it
        # without a guard (the unbound default pins every reading to 0.0)
        if wall:
            self._clock: Callable[[], float] = time.perf_counter
        else:
            self._clock = clock if clock is not None else _zero_clock
        self._mode = "wall" if wall else "sim"
        self._stack: list[Span] = []
        self._finished: list[Span] = []
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)

    @property
    def mode(self) -> str:
        """``"wall"`` for perf_counter tracers, ``"sim"`` otherwise."""
        return self._mode

    @property
    def depth(self) -> int:
        """Number of currently open (nested) spans."""
        return len(self._stack)

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Use *clock* (a zero-arg float callable) for span timestamps."""
        if not self.wall:
            self._clock = clock

    def bind_engine(self, engine: Any) -> None:
        """Bind the simulated clock of *engine* (anything with ``.now``)."""
        self.bind_clock(lambda: engine.now)

    def span(self, name: str, **tags: Any) -> Span:
        """Open a span as a context manager yielding the :class:`Span`.

        Nested calls inherit the enclosing span's ``trace_id`` and point
        their ``parent_id`` at it; a root span starts a fresh trace.
        """
        parent = self._stack[-1] if self._stack else None
        if parent is None:
            trace_id = f"trace-{next(self._trace_ids):04d}"
            parent_id = ""
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        return Span(
            name,
            trace_id=trace_id,
            span_id=f"span-{next(self._span_ids):04d}",
            parent_id=parent_id,
            tags=tags,
            clock=self._mode,
            tracer=self,
        )

    def span_from_context(
        self, name: str, context: TraceContext | None, **tags: Any
    ) -> Span:
        """Open a span continuing a trace shipped from another component.

        The span joins *context*'s trace with its ``parent_id`` pointing
        at the remote span — the receiving half of trace propagation: a
        gateway relay handler (or MTA) opens its work under the origin's
        trace instead of starting a fresh one.  Spans nested inside
        inherit normally.  A ``None`` context degrades to :meth:`span`
        (the sender had no tracing on).
        """
        if context is None:
            return self.span(name, **tags)
        return Span(
            name,
            trace_id=context.trace_id,
            span_id=f"span-{next(self._span_ids):04d}",
            parent_id=context.span_id,
            tags=tags,
            clock=self._mode,
            tracer=self,
        )

    def current_context(self) -> TraceContext | None:
        """The innermost open span's identity, ready to serialize.

        ``None`` when no span is open — callers ship it as-is and the
        receiving side degrades gracefully (see :meth:`span_from_context`).
        """
        if not self._stack:
            return None
        top = self._stack[-1]
        return TraceContext(trace_id=top.trace_id, span_id=top.span_id)

    def start_span(
        self,
        name: str,
        context: TraceContext | None = None,
        **tags: Any,
    ) -> Span:
        """Start a *detached* span: clocked now, finished by :meth:`finish`.

        Detached spans never touch the nesting stack, so they are the
        right shape for asynchronous operations — a gateway relay or MTA
        transfer whose completion callback fires many events later, with
        unrelated spans opening and closing in between.  With *context*
        the span continues that trace; without, it parents under the
        currently open span (or roots a fresh trace).
        """
        if context is None:
            context = self.current_context()
        if context is None:
            trace_id = f"trace-{next(self._trace_ids):04d}"
            parent_id = ""
        else:
            trace_id = context.trace_id
            parent_id = context.span_id
        span = Span(
            name,
            trace_id=trace_id,
            span_id=f"span-{next(self._span_ids):04d}",
            parent_id=parent_id,
            tags=tags,
            clock=self._mode,
            tracer=self,
        )
        span.start = self._clock()
        return span

    def finish(self, span: Span) -> Span:
        """Close a detached span from :meth:`start_span` (idempotent)."""
        if span.end is None:
            span.end = self._clock()
            self._finished.append(span)
        return span

    def finished(self) -> list[Span]:
        """All closed spans, in completion order."""
        return list(self._finished)

    def to_dicts(self) -> list[dict[str, Any]]:
        """All closed spans as JSON-able dicts."""
        return [span.to_dict() for span in self._finished]

    def reset(self, ids: bool = False) -> None:
        """Forget finished spans (open spans are unaffected).

        By default the trace/span id counters keep running, so ids stay
        unique across resets within one run.  ``reset(ids=True)``
        restarts them too — required for determinism when a reseeded run
        reuses the tracer: a reset-with-ids tracer emits exactly the ids
        a fresh one would.
        """
        self._finished.clear()
        if ids:
            self._trace_ids = itertools.count(1)
            self._span_ids = itertools.count(1)


class _NullSpanContext:
    """Reusable no-op context manager yielding the shared null span."""

    __slots__ = ()

    def __enter__(self) -> Span:
        return NULL_SPAN

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False


class _NullSpan(Span):
    """The shared inert span handed out when tracing is disabled."""

    __slots__ = ()

    def tag(self, **tags: Any) -> "Span":
        """Discard the tags."""
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False


class NullTracer(Tracer):
    """The default, disabled tracer: ``span()`` costs one attribute load.

    Every component and environment starts with this attached, so code
    can open spans unconditionally; the shared context manager object is
    reused, so the disabled path allocates nothing.
    """

    enabled = False

    __slots__ = ("_null_context",)

    def __init__(self) -> None:
        super().__init__()
        self._null_context = _NullSpanContext()

    def span(self, name: str, **tags: Any) -> Span:
        """Return the shared no-op context manager."""
        return self._null_context  # type: ignore[return-value]

    def span_from_context(
        self, name: str, context: TraceContext | None, **tags: Any
    ) -> Span:
        """Return the shared no-op context manager (context discarded)."""
        return self._null_context  # type: ignore[return-value]

    def current_context(self) -> TraceContext | None:
        """A disabled tracer has no trace to propagate."""
        return None

    def start_span(
        self,
        name: str,
        context: TraceContext | None = None,
        **tags: Any,
    ) -> Span:
        """The shared inert span; :meth:`finish` on it is a no-op."""
        return NULL_SPAN

    def finish(self, span: Span) -> Span:
        """Discard the finish (the null span is shared and never ends)."""
        return span

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Ignore the clock; a disabled tracer never reads it."""

    def finished(self) -> list[Span]:
        """Always empty."""
        return []


#: the span yielded by a disabled tracer (empty ids, inert tag())
NULL_SPAN = _NullSpan("", trace_id="", span_id="")

#: the shared disabled tracer every component starts with
NULL_TRACER = NullTracer()
