"""Sim-clock-aware trace spans.

A :class:`Tracer` opens nested :class:`Span`\\ s through a context
manager; by default the span clock is the *simulated* clock (bind an
engine with :meth:`Tracer.bind_engine`), so durations measure how much
simulated time an operation covered — the quantity the paper's claims
are about.  Pass ``wall=True`` to profile the library itself instead
with ``time.perf_counter`` (the one sanctioned wall-clock escape hatch;
everything else in the repo stays deterministic).

Trace and span ids are drawn from deterministic counters — no wall
clock, no randomness — so a seeded run always produces the same ids.

>>> tracer = Tracer()
>>> with tracer.span("outer", who="ana") as outer:
...     with tracer.span("inner") as inner:
...         same_trace = inner.trace_id == outer.trace_id
>>> same_trace
True
>>> [s.name for s in tracer.finished()]
['inner', 'outer']
>>> NULL_TRACER.enabled
False
"""

from __future__ import annotations

import itertools
import time
from typing import Any, Callable


class Span:
    """One traced operation: a name, tags, and start/end clock readings.

    ``start``/``end`` are readings of the owning tracer's clock —
    simulated seconds in the default mode, wall seconds in ``wall``
    mode (``clock`` records which).
    """

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "tags", "start", "end", "clock")

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: str = "",
        tags: dict[str, Any] | None = None,
        clock: str = "sim",
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.tags = dict(tags or {})
        self.start = 0.0
        self.end: float | None = None
        self.clock = clock

    @property
    def finished(self) -> bool:
        """True once the span's context manager has exited."""
        return self.end is not None

    @property
    def duration(self) -> float:
        """Elapsed clock between start and end (0.0 while open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def tag(self, **tags: Any) -> "Span":
        """Attach or overwrite tags; returns self for chaining."""
        self.tags.update(tags)
        return self

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able view of the span."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "tags": dict(self.tags),
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "clock": self.clock,
        }


class _ActiveSpan:
    """Context manager that opens *span* on enter and closes it on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        span = self._span
        span.start = self._tracer._read_clock()
        self._tracer._stack.append(span)
        return span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        span = self._span
        span.end = self._tracer._read_clock()
        if exc is not None:
            span.tag(error=repr(exc))
        self._tracer._stack.pop()
        self._tracer._finished.append(span)
        return False


class Tracer:
    """Produces nested spans timed on a pluggable clock.

    The clock defaults to a constant 0.0 until one is bound; in normal
    use :func:`repro.obs.instrument.instrument_environment` (or
    ``CSCWEnvironment.builder()``) binds the simulation engine, so
    durations are expressed in simulated seconds.  ``Tracer(wall=True)``
    instead reads ``time.perf_counter`` for profiling the library's own
    execution cost; such spans are *not* deterministic and belong in
    profiling scripts, never in tests or experiments.
    """

    #: real tracers record; the null tracer advertises False
    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None, wall: bool = False) -> None:
        self.wall = wall
        if wall:
            self._clock: Callable[[], float] | None = time.perf_counter
        else:
            self._clock = clock
        self._stack: list[Span] = []
        self._finished: list[Span] = []
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)

    @property
    def mode(self) -> str:
        """``"wall"`` for perf_counter tracers, ``"sim"`` otherwise."""
        return "wall" if self.wall else "sim"

    @property
    def depth(self) -> int:
        """Number of currently open (nested) spans."""
        return len(self._stack)

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Use *clock* (a zero-arg float callable) for span timestamps."""
        if not self.wall:
            self._clock = clock

    def bind_engine(self, engine: Any) -> None:
        """Bind the simulated clock of *engine* (anything with ``.now``)."""
        self.bind_clock(lambda: engine.now)

    def _read_clock(self) -> float:
        clock = self._clock
        return clock() if clock is not None else 0.0

    def span(self, name: str, **tags: Any) -> _ActiveSpan:
        """Open a span as a context manager yielding the :class:`Span`.

        Nested calls inherit the enclosing span's ``trace_id`` and point
        their ``parent_id`` at it; a root span starts a fresh trace.
        """
        parent = self._stack[-1] if self._stack else None
        if parent is None:
            trace_id = f"trace-{next(self._trace_ids):04d}"
            parent_id = ""
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        span = Span(
            name,
            trace_id=trace_id,
            span_id=f"span-{next(self._span_ids):04d}",
            parent_id=parent_id,
            tags=tags,
            clock=self.mode,
        )
        return _ActiveSpan(self, span)

    def finished(self) -> list[Span]:
        """All closed spans, in completion order."""
        return list(self._finished)

    def to_dicts(self) -> list[dict[str, Any]]:
        """All closed spans as JSON-able dicts."""
        return [span.to_dict() for span in self._finished]

    def reset(self) -> None:
        """Forget finished spans (open spans are unaffected)."""
        self._finished.clear()


class _NullSpanContext:
    """Reusable no-op context manager yielding the shared null span."""

    __slots__ = ()

    def __enter__(self) -> Span:
        return NULL_SPAN

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False


class _NullSpan(Span):
    """The shared inert span handed out when tracing is disabled."""

    __slots__ = ()

    def tag(self, **tags: Any) -> "Span":
        """Discard the tags."""
        return self


class NullTracer(Tracer):
    """The default, disabled tracer: ``span()`` costs one attribute load.

    Every component and environment starts with this attached, so code
    can open spans unconditionally; the shared context manager object is
    reused, so the disabled path allocates nothing.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_context = _NullSpanContext()

    def span(self, name: str, **tags: Any) -> _ActiveSpan:
        """Return the shared no-op context manager."""
        return self._null_context  # type: ignore[return-value]

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Ignore the clock; a disabled tracer never reads it."""

    def finished(self) -> list[Span]:
        """Always empty."""
        return []


#: the span yielded by a disabled tracer (empty ids, inert tag())
NULL_SPAN = _NullSpan("", trace_id="", span_id="")

#: the shared disabled tracer every component starts with
NULL_TRACER = NullTracer()
