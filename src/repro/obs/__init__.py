"""Observability: metrics, sim-clock tracing, and layer instrumentation.

The management/monitoring function RM-ODP's engineering viewpoint
prescribes, realised for this library: a process-local
:class:`~repro.obs.metrics.MetricsRegistry` (counters, gauges,
fixed-bucket histograms), a :class:`~repro.obs.tracing.Tracer` whose
spans are timed on the *simulated* clock (wall-clock mode available for
profiling), and :mod:`repro.obs.instrument` hooks that wire both into
the five hot layers (engine, event bus, trader, MTA, exchange path).

Everything is opt-in: components default to :data:`NULL_METRICS` /
:data:`NULL_TRACER`, whose operations are no-ops behind a single
``enabled`` check.  The recommended way to switch collection on is the
environment builder::

    env = (CSCWEnvironment.builder()
           .with_world(world)
           .with_metrics(MetricsRegistry())
           .with_tracer(Tracer())
           .build())
"""

from repro.obs.analyze import TraceAnalyzer
from repro.obs.context import TRACE_KEY, TraceContext
from repro.obs.events import (
    NULL_EVENTS,
    Event,
    EventLog,
    NullEventLog,
)
from repro.obs.export import (
    chrome_trace_json,
    export_chrome_trace,
    export_jsonl,
    export_metrics,
    to_chrome_trace,
    to_jsonl,
)
from repro.obs.instrument import (
    BYTES_BUCKETS,
    COUNT_BUCKETS,
    Observability,
    instrument_engine,
    instrument_event_bus,
    instrument_environment,
    instrument_mta,
    instrument_trader,
)
from repro.obs.metrics import (
    CARDINALITY_LIMIT,
    DEFAULT_BUCKETS,
    NULL_METRICS,
    OVERFLOW_LABEL,
    Counter,
    CounterFamily,
    Gauge,
    GaugeFamily,
    Histogram,
    HistogramFamily,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.obs.profile import Profile, layer_of, profile_spans
from repro.obs.slo import LatencySLO, RatioSLO, SLOEngine
from repro.obs.tracing import NULL_SPAN, NULL_TRACER, NullTracer, Span, Tracer
from repro.obs.windows import (
    WindowedCounter,
    WindowedHistogram,
    WindowedTrend,
)

__all__ = [
    "BYTES_BUCKETS",
    "CARDINALITY_LIMIT",
    "COUNT_BUCKETS",
    "DEFAULT_BUCKETS",
    "NULL_EVENTS",
    "NULL_METRICS",
    "NULL_SPAN",
    "NULL_TRACER",
    "OVERFLOW_LABEL",
    "TRACE_KEY",
    "Counter",
    "CounterFamily",
    "Event",
    "EventLog",
    "Gauge",
    "GaugeFamily",
    "Histogram",
    "HistogramFamily",
    "LatencySLO",
    "MetricsRegistry",
    "NullEventLog",
    "NullMetricsRegistry",
    "NullTracer",
    "Observability",
    "Profile",
    "RatioSLO",
    "SLOEngine",
    "Span",
    "TraceAnalyzer",
    "TraceContext",
    "Tracer",
    "WindowedCounter",
    "WindowedHistogram",
    "WindowedTrend",
    "chrome_trace_json",
    "export_chrome_trace",
    "export_jsonl",
    "export_metrics",
    "instrument_engine",
    "instrument_event_bus",
    "instrument_environment",
    "instrument_mta",
    "instrument_trader",
    "layer_of",
    "profile_spans",
    "to_chrome_trace",
    "to_jsonl",
]
