"""Structured, trace-correlated events at load-bearing transitions.

Counters say *how often* a breaker opened; they cannot say *when*,
*in which order relative to the dead letters*, or *under which trace*.
An :class:`EventLog` fills that gap: a bounded ring buffer of
:class:`Event` records stamped with simulated time, an event ``kind``,
an optional ``trace_id`` correlating the event to a span tree, and
free-form attributes.

The library emits events at the transitions the resilience and
federation layers already count but could not sequence:

==========================  ==================================================
kind                        emitted by
==========================  ==================================================
``breaker-open``            :class:`~repro.resilience.breaker.CircuitBreaker`
``breaker-half-open``       breaker admitting a half-open trial call
``breaker-close``           breaker reclosing after a success
``gateway-dead-letter``     :class:`~repro.federation.gateway.Gateway` parking
``gateway-redrive``         operator redrive of parked dead letters
``shed``                    environment load shedding (``REASON_OVERLOAD``)
``deadline-exceeded``       environment/relay deadline expiry
``shadow-pull-failed``      directory shadowing pull failure
``slo-burn``                :class:`~repro.obs.slo.SLOEngine` burn-rate alert
``health-transition``       :class:`~repro.resilience.health.HealthMonitor`
                            key flipping healthy/unhealthy
``control-action``          :class:`~repro.control.plane.ControlPlane`
                            applying a reconfiguration action
``control-revert``          control plane reversing an applied action
                            after recovery
==========================  ==================================================

Like metrics and tracing, event logging is opt-in: components default to
:data:`NULL_EVENTS`, whose ``record`` is a no-op behind one ``enabled``
check.  Attach a real log through ``CSCWEnvironment.builder()
.with_event_log(...)`` or ``Federation(events=...)``.

>>> log = EventLog(capacity=2)
>>> log.record(0.0, "breaker-open", name="gw:a->b")
>>> log.record(1.0, "shed"); log.record(2.0, "shed")
>>> [e.kind for e in log.events()]  # capacity 2: oldest evicted
['shed', 'shed']
>>> NULL_EVENTS.enabled
False
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.util.errors import ConfigurationError

#: canonical event kinds (free-form kinds are allowed; these are emitted
#: by the library itself)
KIND_BREAKER_OPEN = "breaker-open"
KIND_BREAKER_HALF_OPEN = "breaker-half-open"
KIND_BREAKER_CLOSE = "breaker-close"
KIND_DEAD_LETTER = "gateway-dead-letter"
KIND_REDRIVE = "gateway-redrive"
KIND_SHED = "shed"
KIND_DEADLINE = "deadline-exceeded"
KIND_SHADOW_PULL_FAILED = "shadow-pull-failed"
KIND_SLO_BURN = "slo-burn"
KIND_HEALTH_TRANSITION = "health-transition"
KIND_CONTROL_ACTION = "control-action"
KIND_CONTROL_REVERT = "control-revert"


@dataclass(frozen=True)
class Event:
    """One structured occurrence, stamped in simulated time."""

    time: float
    kind: str
    trace_id: str = ""
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able view of the event."""
        return {
            "time": self.time,
            "kind": self.kind,
            "trace_id": self.trace_id,
            "attrs": dict(self.attrs),
        }


class EventLog:
    """A bounded ring buffer of events; oldest entries are evicted.

    The log never grows past *capacity*, so it is safe to leave attached
    for a whole soak run: memory is O(capacity), and the ``dropped``
    counter records how many events aged out.
    """

    #: real logs record; the null log advertises False
    enabled = True

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ConfigurationError("event log capacity must be >= 1")
        self.capacity = capacity
        self._events: deque[Event] = deque(maxlen=capacity)
        self.recorded = 0
        self._metrics: Any = None

    def attach_metrics(self, metrics: Any) -> "EventLog":
        """Surface ring-buffer evictions as the ``obs.events.dropped``
        counter on *metrics*.

        The :attr:`dropped` property already answers "how many aged
        out?", but only to someone holding the log; the counter puts the
        same signal next to every other health metric, where SLOs and
        dashboards can see a ring sized too small for the run.
        """
        self._metrics = metrics if metrics is not None and metrics.enabled else None
        return self

    @property
    def dropped(self) -> int:
        """Events evicted by the ring bound so far."""
        return self.recorded - len(self._events)

    def record(
        self, time: float, kind: str, trace_id: str = "", **attrs: Any
    ) -> None:
        """Append one event (evicting the oldest at capacity)."""
        events = self._events
        if self._metrics is not None and len(events) == self.capacity:
            self._metrics.inc("obs.events.dropped")
        events.append(Event(time=time, kind=kind, trace_id=trace_id, attrs=attrs))
        self.recorded += 1

    def events(
        self, kind: str | None = None, trace_id: str | None = None
    ) -> list[Event]:
        """Retained events in arrival order, optionally filtered."""
        return [
            event
            for event in self._events
            if (kind is None or event.kind == kind)
            and (trace_id is None or event.trace_id == trace_id)
        ]

    def kinds(self) -> dict[str, int]:
        """Retained event counts by kind (sorted for stable snapshots)."""
        counts: dict[str, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return dict(sorted(counts.items()))

    def to_dicts(self) -> list[dict[str, Any]]:
        """All retained events as JSON-able dicts."""
        return [event.to_dict() for event in self._events]

    def clear(self) -> None:
        """Forget all retained events (the ``recorded`` total keeps counting
        from zero again)."""
        self._events.clear()
        self.recorded = 0

    def extend(self, events: Iterable[Event]) -> None:
        """Append pre-built events (merging logs in analysis scripts)."""
        ring = self._events
        for event in events:
            if self._metrics is not None and len(ring) == self.capacity:
                self._metrics.inc("obs.events.dropped")
            ring.append(event)
            self.recorded += 1


class NullEventLog(EventLog):
    """The default, disabled log: ``record`` discards everything."""

    enabled = False

    def record(
        self, time: float, kind: str, trace_id: str = "", **attrs: Any
    ) -> None:
        """Discard the event."""

    def extend(self, events: Iterable[Event]) -> None:
        """Discard the events."""


#: a clock-reading callable, as bound by components that own an engine
Clock = Callable[[], float]

#: the shared disabled log every component starts with
NULL_EVENTS = NullEventLog()
