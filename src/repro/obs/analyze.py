"""Trace analysis: reassemble span trees, extract critical paths.

A cross-domain exchange leaves spans behind in *every* domain it
touched (origin, gateway objects, failover intermediates, the target
pipeline).  The :class:`TraceAnalyzer` puts them back together: feed it
the finished spans of one or more tracers and it groups them by
``trace_id``, links children to parents by ``span_id``, and answers the
questions the acceptance experiments ask —

* is this trace **connected**: one root, every span reachable from it?
* what is the **critical path**: the root-to-leaf chain that determined
  when the operation finished, with per-hop latency breakdown?
* which traces were the **slowest** end to end?

All inputs are Span objects or their ``to_dict()`` form; all outputs
are plain sorted data, deterministic for seeded runs.

>>> from repro.obs.tracing import Tracer
>>> tracer = Tracer()
>>> with tracer.span("outer"):
...     with tracer.span("inner"):
...         pass
>>> analyzer = TraceAnalyzer(tracer.finished())
>>> analyzer.is_connected(analyzer.trace_ids()[0])
True
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.util.errors import ConfigurationError


def _as_dict(span: Any) -> dict[str, Any]:
    """Normalise a Span object or an already-exported dict."""
    return span.to_dict() if hasattr(span, "to_dict") else dict(span)


def _interval_union(intervals: list[tuple[float, float]]) -> float:
    """Total length covered by a set of possibly-overlapping intervals."""
    covered = 0.0
    cursor = float("-inf")
    for start, end in sorted(intervals):
        if end <= cursor:
            continue
        covered += end - max(start, cursor)
        cursor = end
    return covered


class TraceAnalyzer:
    """Cross-tracer span reassembly and critical-path extraction."""

    def __init__(self, spans: Iterable[Any] = ()) -> None:
        #: trace_id -> spans in ingestion order
        self._traces: dict[str, list[dict[str, Any]]] = {}
        self.add(spans)

    @classmethod
    def from_tracers(cls, *tracers: Any) -> "TraceAnalyzer":
        """An analyzer over the finished spans of several tracers.

        The multi-domain case: each domain's tracer contributes the
        spans it recorded locally; the shared trace ids stitch them.
        """
        analyzer = cls()
        for tracer in tracers:
            analyzer.add(tracer.finished())
        return analyzer

    def add(self, spans: Iterable[Any]) -> "TraceAnalyzer":
        """Ingest more spans (open spans are skipped); returns self."""
        for span in spans:
            record = _as_dict(span)
            if record["end"] is None:
                continue
            self._traces.setdefault(record["trace_id"], []).append(record)
        return self

    # -- structure ---------------------------------------------------------
    def trace_ids(self) -> list[str]:
        """All trace ids, in first-appearance order."""
        return list(self._traces)

    def spans(self, trace_id: str) -> list[dict[str, Any]]:
        """One trace's spans, in ingestion order."""
        try:
            return list(self._traces[trace_id])
        except KeyError:
            raise ConfigurationError(f"unknown trace {trace_id!r}") from None

    def roots(self, trace_id: str) -> list[dict[str, Any]]:
        """Spans with no (known) parent — a connected trace has one."""
        records = self.spans(trace_id)
        known = {record["span_id"] for record in records}
        return [
            record
            for record in records
            if not record["parent_id"] or record["parent_id"] not in known
        ]

    def children(self, trace_id: str, span_id: str) -> list[dict[str, Any]]:
        """Direct children of one span, ordered by (start, span_id)."""
        return sorted(
            (r for r in self.spans(trace_id) if r["parent_id"] == span_id),
            key=lambda r: (r["start"], r["span_id"]),
        )

    def is_connected(self, trace_id: str) -> bool:
        """True when the trace has exactly one root and no orphans.

        This is the property gateway/envelope context propagation must
        preserve: a relay that *dropped* the context shows up here as a
        second root (the remote side started a fresh tree).
        """
        return len(self.roots(trace_id)) == 1

    def tree(self, trace_id: str) -> dict[str, Any]:
        """The trace as a nested ``{"span": ..., "children": [...]}`` dict.

        Requires a connected trace (one root).
        """
        roots = self.roots(trace_id)
        if len(roots) != 1:
            raise ConfigurationError(
                f"trace {trace_id!r} has {len(roots)} roots; cannot build one tree"
            )

        def build(record: dict[str, Any]) -> dict[str, Any]:
            return {
                "span": record,
                "children": [
                    build(child)
                    for child in self.children(trace_id, record["span_id"])
                ],
            }

        return build(roots[0])

    # -- the critical path -------------------------------------------------
    def critical_path(self, trace_id: str) -> list[dict[str, Any]]:
        """The root-to-leaf chain that determined the trace's end time.

        From the root, repeatedly descend into the child that finished
        last (ties broken by latest start, then span_id — deterministic).
        The returned spans are ordered root first.
        """
        roots = self.roots(trace_id)
        if len(roots) != 1:
            raise ConfigurationError(
                f"trace {trace_id!r} has {len(roots)} roots; no single critical path"
            )
        path = [roots[0]]
        while True:
            kids = self.children(trace_id, path[-1]["span_id"])
            if not kids:
                return path
            path.append(
                max(kids, key=lambda r: (r["end"], r["start"], r["span_id"]))
            )

    def critical_path_coverage(self, trace_id: str) -> float:
        """Fraction of the root's duration the path below it accounts for.

        1.0 means every simulated second of the end-to-end operation is
        inside some descendant span on the critical path — nothing
        happened in untraced gaps.  A root with no children scores 1.0
        (the root explains itself).
        """
        path = self.critical_path(trace_id)
        root = path[0]
        duration = root["end"] - root["start"]
        if duration <= 0.0 or len(path) == 1:
            return 1.0
        intervals = [
            (max(r["start"], root["start"]), min(r["end"], root["end"]))
            for r in path[1:]
            if r["end"] > root["start"] and r["start"] < root["end"]
        ]
        return min(_interval_union(intervals) / duration, 1.0)

    def hop_latency(self, trace_id: str) -> list[dict[str, Any]]:
        """Per-hop breakdown along the critical path.

        Each entry carries the span's total ``duration`` plus its
        ``exclusive`` share — the time not explained by the next span
        down the path — so the slow hop in a multi-domain relay is
        directly readable.
        """
        path = self.critical_path(trace_id)
        breakdown = []
        for index, record in enumerate(path):
            duration = record["end"] - record["start"]
            exclusive = duration
            if index + 1 < len(path):
                nxt = path[index + 1]
                overlap = min(record["end"], nxt["end"]) - max(
                    record["start"], nxt["start"]
                )
                exclusive = duration - max(overlap, 0.0)
            breakdown.append(
                {
                    "name": record["name"],
                    "span_id": record["span_id"],
                    "start": record["start"],
                    "end": record["end"],
                    "duration": duration,
                    "exclusive": max(exclusive, 0.0),
                    "tags": dict(record["tags"]),
                }
            )
        return breakdown

    # -- ranking -----------------------------------------------------------
    def duration(self, trace_id: str) -> float:
        """End-to-end duration: latest end minus earliest start."""
        records = self.spans(trace_id)
        return max(r["end"] for r in records) - min(r["start"] for r in records)

    def top_slowest(self, k: int = 5) -> list[dict[str, Any]]:
        """The *k* slowest traces by end-to-end duration, slowest first."""
        ranked = sorted(
            (
                {
                    "trace_id": trace_id,
                    "duration": self.duration(trace_id),
                    "spans": len(self.spans(trace_id)),
                    "connected": self.is_connected(trace_id),
                }
                for trace_id in self._traces
            ),
            key=lambda entry: (-entry["duration"], entry["trace_id"]),
        )
        return ranked[:k]

    def summary(self) -> dict[str, Any]:
        """Corpus-level counts: traces, spans, connectivity."""
        connected = sum(1 for t in self._traces if self.is_connected(t))
        return {
            "traces": len(self._traces),
            "spans": sum(len(spans) for spans in self._traces.values()),
            "connected": connected,
            "disconnected": len(self._traces) - connected,
        }
