"""Sim-time profiler: attribute span time to subsystem layers.

A span stream answers "what happened to this trace"; a profile answers
"where does the run's time go".  :class:`Profile` folds a stream of
finished spans (from :meth:`~repro.obs.tracing.Tracer.finished`, or
dicts from a JSONL export) into per-layer and per-path attributions:

* the **layer** of a span is its name's prefix before the first ``.``
  (``env.exchange`` -> ``env``, ``gateway.relay`` -> ``gateway``) — the
  subsystem naming convention every instrumented layer already follows,
* **total** time is the span's own duration,
* **self** (exclusive) time is the duration minus the parts covered by
  the span's children — computed as an interval union, so concurrent or
  overlapping children are never double-subtracted,
* a **path** is the tuple of span names from the trace root down to the
  span (``env.exchange_many > env.exchange``), the unit the hot-path
  ranking aggregates over.

Spans carry whichever clock their tracer ran on (``sim`` or ``wall``);
the profile keeps the two ledgers separate so a mixed stream — a
sim-mode tracer plus a wall-mode profiling tracer — attributes each
second to the right ledger instead of adding simulated seconds to wall
seconds.

Everything is derived from span content only and every table is sorted,
so a seeded run profiles byte-identically.

>>> from repro.obs.tracing import Tracer
>>> tracer = Tracer(clock=lambda: next(ticks))
>>> ticks = iter([0.0, 1.0, 3.0, 8.0])   # enter/enter/exit/exit
>>> with tracer.span("env.exchange"):
...     with tracer.span("gateway.relay"):
...         pass
>>> profile = Profile.from_spans(tracer.finished())
>>> [(row["layer"], row["self_s"], row["total_s"]) for row in profile.layers()]
[('env', 6.0, 8.0), ('gateway', 2.0, 2.0)]
>>> profile.hot_paths(2)[1]["path"]
'env.exchange > gateway.relay'
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.obs.export import to_chrome_trace

#: span-name layer separator: the prefix before the first one names the
#: owning subsystem (``env``, ``gateway``, ``mta``, ``control``, ...)
_LAYER_SEP = "."


def layer_of(name: str) -> str:
    """The subsystem layer a span name belongs to.

    >>> layer_of("env.exchange"), layer_of("flush")
    ('env', 'flush')
    """
    head, _, _ = name.partition(_LAYER_SEP)
    return head


def _interval_union(intervals: "list[tuple[float, float]]") -> float:
    """Total length covered by possibly-overlapping intervals."""
    if not intervals:
        return 0.0
    intervals.sort()
    covered = 0.0
    cursor_start, cursor_end = intervals[0]
    for start, end in intervals[1:]:
        if start > cursor_end:
            covered += cursor_end - cursor_start
            cursor_start, cursor_end = start, end
        elif end > cursor_end:
            cursor_end = end
    return covered + (cursor_end - cursor_start)


def _as_record(span: Any) -> dict[str, Any]:
    """Normalise a Span object or an exported dict."""
    return span.to_dict() if hasattr(span, "to_dict") else dict(span)


class Profile:
    """Per-layer and per-path time attribution over a span stream."""

    def __init__(self) -> None:
        #: (clock, layer) -> [span_count, total_s, self_s]
        self._layers: dict[tuple[str, str], list] = {}
        #: (clock, path tuple) -> [span_count, total_s, self_s]
        self._paths: dict[tuple[str, tuple], list] = {}
        self._records: list[dict[str, Any]] = []
        self.spans = 0
        self.skipped_open = 0

    @classmethod
    def from_spans(cls, spans: Iterable[Any]) -> "Profile":
        """Build a profile from finished spans (objects or dicts).

        Open spans (``end is None``) carry no duration yet and are
        skipped, counted in :attr:`skipped_open`.
        """
        profile = cls()
        profile.add(spans)
        return profile

    def add(self, spans: Iterable[Any]) -> "Profile":
        """Fold more spans in (streams may arrive tracer by tracer)."""
        records = [_as_record(span) for span in spans]
        # Children are grouped per trace: span ids are only unique within
        # the tracer that minted them, and parent links never cross traces.
        children: dict[tuple[str, str], list[dict[str, Any]]] = {}
        closed: list[dict[str, Any]] = []
        for record in records:
            if record["end"] is None:
                self.skipped_open += 1
                continue
            closed.append(record)
            if record["parent_id"]:
                key = (record["trace_id"], record["parent_id"])
                children.setdefault(key, []).append(record)
        by_id = {
            (record["trace_id"], record["span_id"]): record for record in closed
        }
        for record in closed:
            total = max(record["duration"], 0.0)
            own = children.get((record["trace_id"], record["span_id"]), ())
            covered = _interval_union(
                [
                    (max(child["start"], record["start"]),
                     min(child["end"], record["end"]))
                    for child in own
                    if child["end"] > record["start"]
                    and child["start"] < record["end"]
                ]
            )
            self_s = max(total - covered, 0.0)
            clock = record.get("clock", "sim")
            layer_cell = self._layers.setdefault(
                (clock, layer_of(record["name"])), [0, 0.0, 0.0]
            )
            layer_cell[0] += 1
            layer_cell[1] += total
            layer_cell[2] += self_s
            path = self._path_of(record, by_id)
            path_cell = self._paths.setdefault((clock, path), [0, 0.0, 0.0])
            path_cell[0] += 1
            path_cell[1] += total
            path_cell[2] += self_s
            self.spans += 1
        self._records.extend(closed)
        return self

    @staticmethod
    def _path_of(
        record: dict[str, Any],
        by_id: "dict[tuple[str, str], dict[str, Any]]",
    ) -> tuple:
        """Root-to-span name path (cross-boundary parents may be absent:
        the path then starts at the first span this stream holds)."""
        names = [record["name"]]
        seen = {record["span_id"]}
        cursor = record
        while cursor["parent_id"]:
            parent = by_id.get((cursor["trace_id"], cursor["parent_id"]))
            if parent is None or parent["span_id"] in seen:
                break
            names.append(parent["name"])
            seen.add(parent["span_id"])
            cursor = parent
        return tuple(reversed(names))

    # -- tables ------------------------------------------------------------
    def layers(self, clock: str = "sim") -> list[dict[str, Any]]:
        """Per-layer rows on *clock*, sorted by self time (descending,
        then layer name for deterministic ties)."""
        rows = [
            {
                "layer": layer,
                "count": cell[0],
                "total_s": cell[1],
                "self_s": cell[2],
            }
            for (cell_clock, layer), cell in self._layers.items()
            if cell_clock == clock
        ]
        rows.sort(key=lambda row: (-row["self_s"], row["layer"]))
        return rows

    def hot_paths(self, k: int = 10, clock: str = "sim") -> list[dict[str, Any]]:
        """The top-*k* root-to-span paths by self time on *clock*."""
        rows = [
            {
                "path": " > ".join(path),
                "count": cell[0],
                "total_s": cell[1],
                "self_s": cell[2],
            }
            for (cell_clock, path), cell in self._paths.items()
            if cell_clock == clock
        ]
        rows.sort(key=lambda row: (-row["self_s"], row["path"]))
        return rows[:k]

    def render_text(self, k: int = 10, clock: str = "sim") -> str:
        """The per-layer table plus the top-*k* hot paths as fixed-width
        text — the profiler's human-facing report."""
        unit = "sim s" if clock == "sim" else "wall s"
        lines = [f"layer profile ({unit}, {self.spans} spans)"]
        lines.append(f"  {'layer':<12} {'count':>8} {'self':>12} {'total':>12}")
        for row in self.layers(clock=clock):
            lines.append(
                f"  {row['layer']:<12} {row['count']:>8} "
                f"{row['self_s']:>12.6f} {row['total_s']:>12.6f}"
            )
        hot = self.hot_paths(k, clock=clock)
        if hot:
            lines.append(f"hot paths (top {len(hot)} by self {unit})")
            for row in hot:
                lines.append(
                    f"  {row['self_s']:>12.6f} {row['count']:>8}x  {row['path']}"
                )
        return "\n".join(lines)

    def to_chrome_trace(self) -> dict[str, Any]:
        """The profiled spans as a Chrome trace-viewer document — the
        flamegraph view of the same attribution (self time is what the
        viewer shows as a frame's un-nested remainder)."""
        return to_chrome_trace(self._records)


def profile_spans(spans: Iterable[Any]) -> Profile:
    """Shorthand: ``Profile.from_spans(spans)``."""
    return Profile.from_spans(spans)
