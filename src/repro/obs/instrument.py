"""Wiring hooks: attach a registry/tracer to the library's hot layers.

Five layers know how to report (all opt-in, no-op by default):

========================  =====================================================
layer                     instruments
========================  =====================================================
``sim.engine``            ``sim.engine.scheduled`` / ``.fired`` / ``.cancelled``
                          counters, ``sim.engine.queue_depth`` gauge
``util.events``           ``events.published`` / ``.delivered`` counters,
                          ``events.fanout`` subscriber fan-out histogram
``odp.trader``            ``trader.exports`` / ``.imports`` / ``.offer_scans``
                          / ``.link_hops`` / ``.no_offer`` /
                          ``.policy_rejections`` counters
``messaging.mta``         ``mta.relayed`` / ``.delivered`` / ``.reports`` and
                          ``mta.non_delivery.<reason>`` counters,
                          ``mta.hops`` histogram
``environment.exchange``  ``env.exchange.attempted``,
                          ``env.exchange.outcome.<delivered|failed>``,
                          ``env.exchange.reason.<code>``,
                          ``env.exchange.transparency.<dimension>`` counters,
                          ``env.exchange.document_bytes`` histogram
``environment.resolution``  ``env.cache.route.<hit|miss>``,
                          ``env.cache.formats.<hit|miss>``,
                          ``env.cache.invalidations`` counters
``information.interchange``  ``interchange.plan.<hit|miss|evicted>`` /
                          ``interchange.identity`` counters
``mediation.mediator``    ``mediation.plan.<synthesized|hit|evicted>``,
                          ``mediation.capability.<published|withdrawn>``,
                          ``mediation.negotiation.<downgraded|rejected>``
                          counters, ``mediation.fidelity`` histogram,
                          ``mediation.translate``/``mediation.hop`` spans
========================  =====================================================

Each ``instrument_*`` function is idempotent, returns its target, and is
pure wiring: the recording calls live inside the layers themselves,
guarded by ``registry.enabled`` so the default
:data:`~repro.obs.metrics.NULL_METRICS` keeps the hot paths at a single
attribute check.  The functions duck-type their targets (anything with
the layer's ``attach_metrics`` method works), so this module imports
nothing from the rest of the library and can never create an import
cycle.

The recommended front door is ``CSCWEnvironment.builder()``, which calls
:func:`instrument_environment` during construction; these functions stay
public for instrumenting standalone engines, buses, traders and MTAs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.obs.tracing import NULL_TRACER, Tracer

#: histogram bounds for small whole-number distributions (fan-out, hops)
COUNT_BUCKETS: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

#: histogram bounds for document sizes in bytes
BYTES_BUCKETS: tuple[float, ...] = (
    64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0,
)

#: histogram bounds for delivered translation fidelity in (0, 1]
FIDELITY_BUCKETS: tuple[float, ...] = (0.25, 0.5, 0.7, 0.8, 0.9, 0.95, 1.0)


@dataclass
class Observability:
    """A registry + tracer pair, the unit the builder injects.

    ``Observability.disabled()`` is the default bundle (both parts
    no-op); ``Observability.collecting()`` builds an enabled pair.
    """

    metrics: MetricsRegistry = field(default_factory=lambda: NULL_METRICS)
    tracer: Tracer = field(default_factory=lambda: NULL_TRACER)

    @staticmethod
    def disabled() -> "Observability":
        """The no-op bundle: shared null registry and null tracer."""
        return Observability(NULL_METRICS, NULL_TRACER)

    @staticmethod
    def collecting(wall_tracing: bool = False) -> "Observability":
        """A fresh enabled bundle (sim-time tracing unless *wall_tracing*)."""
        return Observability(MetricsRegistry(), Tracer(wall=wall_tracing))

    @property
    def enabled(self) -> bool:
        """True when either half actually records."""
        return self.metrics.enabled or self.tracer.enabled


def instrument_engine(engine: Any, metrics: MetricsRegistry) -> Any:
    """Attach *metrics* to a :class:`repro.sim.engine.Engine`."""
    engine.attach_metrics(metrics)
    return engine


def instrument_event_bus(bus: Any, metrics: MetricsRegistry) -> Any:
    """Attach *metrics* to a :class:`repro.util.events.EventBus`."""
    if metrics.enabled:
        metrics.histogram("events.fanout", buckets=COUNT_BUCKETS)
    bus.attach_metrics(metrics)
    return bus


def instrument_trader(trader: Any, metrics: MetricsRegistry) -> Any:
    """Attach *metrics* to a :class:`repro.odp.trader.Trader`."""
    trader.attach_metrics(metrics)
    return trader


def instrument_mta(
    mta: Any, metrics: MetricsRegistry, tracer: Tracer | None = None
) -> Any:
    """Attach *metrics* (and optionally *tracer*) to a
    :class:`repro.messaging.mta.MessageTransferAgent`."""
    if metrics.enabled:
        metrics.histogram("mta.hops", buckets=COUNT_BUCKETS)
    mta.attach_metrics(metrics)
    if tracer is not None:
        mta.attach_tracer(tracer)
    return mta


def instrument_environment(
    environment: Any,
    metrics: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
) -> Any:
    """Attach observability to an environment and its owned hot layers.

    Wires the environment's engine, event bus and trader to *metrics*,
    installs *metrics*/*tracer* as ``environment.metrics`` /
    ``environment.tracer`` (consulted by ``exchange()`` and
    ``describe()``), and binds a sim-mode tracer to the engine clock so
    span durations are simulated seconds.  Passing ``None`` for either
    half leaves that half as it was.
    """
    if metrics is not None:
        environment.metrics = metrics
        binder = getattr(environment, "_bind_labelled_metrics", None)
        if binder is not None:
            binder()
        instrument_engine(environment.world.engine, metrics)
        instrument_event_bus(environment.bus, metrics)
        instrument_trader(environment.trader, metrics)
        events = getattr(environment, "events", None)
        if events is not None and events.enabled:
            events.attach_metrics(metrics)
        directory = getattr(
            getattr(environment, "knowledge_base", None), "directory", None
        )
        if directory is not None:
            directory.attach_metrics(metrics)
        resolution = getattr(environment, "resolution", None)
        if resolution is not None:
            resolution.attach_metrics(metrics)
        interchange = getattr(environment, "interchange", None)
        if interchange is not None:
            interchange.attach_metrics(metrics)
        mediator = getattr(environment, "mediator", None)
        if mediator is not None:
            if metrics.enabled:
                metrics.histogram("mediation.fidelity", buckets=FIDELITY_BUCKETS)
            mediator.attach_metrics(metrics)
        if metrics.enabled:
            metrics.histogram("env.exchange.document_bytes", buckets=BYTES_BUCKETS)
    if tracer is not None:
        environment.tracer = tracer
        if tracer.enabled and not tracer.wall:
            tracer.bind_engine(environment.world.engine)
        mediator = getattr(environment, "mediator", None)
        if mediator is not None:
            mediator.attach_tracer(tracer)
    return environment
