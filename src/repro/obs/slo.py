"""Service-level objectives over sliding sim-time windows.

An SLO turns the metrics the library already collects into a judgement:
*"≥ 99% of federated exchanges delivered over the last 60 simulated
seconds"* or *"p99 exchange latency under 2 s"*.  The
:class:`SLOEngine` samples the backing counters/histograms on a
periodic sim-time tick, pushes each tick's cumulative delta into a
ring-of-slots window (:class:`~repro.obs.windows.WindowedCounter` /
:class:`~repro.obs.windows.WindowedHistogram` — one slot per sample
period, memory O(window/period) regardless of run length), and raises
**burn-rate alerts** as ``slo-burn`` events when the error budget is
being consumed faster than the configured multiple.

Two objective shapes cover the acceptance experiments:

* :meth:`SLOEngine.add_ratio` — good/total counter pair (delivered
  ratio, policy acceptance, ...); burn rate is the window's error ratio
  divided by the budget ``1 - target``,
* :meth:`SLOEngine.add_latency` — a histogram quantile against a
  threshold (p99 exchange latency); the quantile is interpolated from
  the windowed bucket deltas, and the burn rate is the fraction of
  observations over the threshold divided by ``1 - quantile``.

Everything runs on the simulated clock via
:class:`~repro.sim.engine.PeriodicTask`; like health checks and
shadowing, a started engine keeps the event queue non-empty, so prefer
``world.run_for`` over ``world.run`` while it is live.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.obs.events import KIND_SLO_BURN, NULL_EVENTS, EventLog
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.windows import WindowedCounter, WindowedHistogram
from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # imported lazily at runtime: sim.engine imports obs
    from repro.sim.engine import Engine, PeriodicTask

#: a burn listener receives ``(objective_name, burning, status)`` on each
#: burn-alert edge — ``burning=True`` when an episode starts, ``False``
#: when it clears
BurnListener = Callable[[str, bool, dict[str, Any]], None]


@dataclass(frozen=True)
class RatioSLO:
    """Declarative form of :meth:`SLOEngine.add_ratio`.

    Lets objectives be stated at build time
    (``builder.with_slo(objectives=[RatioSLO(...)])``) instead of
    attached post-hoc to the wired engine.
    """

    name: str
    good: str
    total: str
    target: float = 0.99
    window_s: float = 60.0
    burn_threshold: float = 2.0

    def declare(self, engine: "SLOEngine") -> None:
        """Install this objective on *engine*."""
        engine.add_ratio(
            self.name,
            good=self.good,
            total=self.total,
            target=self.target,
            window_s=self.window_s,
            burn_threshold=self.burn_threshold,
        )


@dataclass(frozen=True)
class LatencySLO:
    """Declarative form of :meth:`SLOEngine.add_latency`."""

    name: str
    histogram: str
    threshold_s: float
    quantile: float = 0.99
    window_s: float = 60.0
    burn_threshold: float = 2.0

    def declare(self, engine: "SLOEngine") -> None:
        """Install this objective on *engine*."""
        engine.add_latency(
            self.name,
            histogram=self.histogram,
            threshold_s=self.threshold_s,
            quantile=self.quantile,
            window_s=self.window_s,
            burn_threshold=self.burn_threshold,
        )


@dataclass
class _Objective:
    """Shared bookkeeping for one objective: window state and alerts.

    ``last`` is the cumulative reading at the most recent sampler tick;
    each tick pushes ``live - last`` into a ring whose slot width is the
    sample period, so the ring's sum is exactly the delta a cumulative
    baseline sample would have produced — at O(window / period) memory
    instead of retaining every sample.  The first tick only establishes
    ``last`` (there is no earlier reading to difference against).
    """

    name: str
    window_s: float
    burn_threshold: float
    #: ring slots = ceil(window_s / sample period), fixed at declaration
    slots: int = 0
    #: cumulative payload at the last sampler tick (None before any tick)
    last: Any = None
    #: currently in a burn-alert episode (edge-triggered events)
    alerting: bool = False
    alerts: int = 0


@dataclass
class _RatioObjective(_Objective):
    good: str = ""
    total: str = ""
    target: float = 0.0
    good_window: WindowedCounter | None = None
    total_window: WindowedCounter | None = None


@dataclass
class _LatencyObjective(_Objective):
    histogram: str = ""
    quantile: float = 0.99
    threshold_s: float = 0.0
    #: created lazily at the first tick, once the backing histogram's
    #: bucket layout is known
    window: WindowedHistogram | None = None


class SLOEngine:
    """Evaluates objectives over sliding windows; alerts on budget burn."""

    def __init__(
        self,
        engine: "Engine",
        metrics: MetricsRegistry,
        events: EventLog | None = None,
        sample_period_s: float = 1.0,
    ) -> None:
        if sample_period_s <= 0:
            raise ConfigurationError("SLO sample_period_s must be > 0")
        self._engine = engine
        self._metrics = metrics
        self._events: EventLog = events if events is not None else NULL_EVENTS
        self._period_s = sample_period_s
        self._objectives: dict[str, _Objective] = {}
        self._task: "PeriodicTask | None" = None
        self._burn_listeners: list[BurnListener] = []

    # -- objective declaration ---------------------------------------------
    def add_ratio(
        self,
        name: str,
        good: str,
        total: str,
        target: float = 0.99,
        window_s: float = 60.0,
        burn_threshold: float = 2.0,
    ) -> "SLOEngine":
        """Require counter *good* / counter *total* >= *target* per window.

        *burn_threshold* is the alerting multiple: an alert fires when
        the window's error ratio exceeds ``burn_threshold * (1 - target)``
        — budget burning at that many times the sustainable rate.
        """
        if not 0.0 < target <= 1.0:
            raise ConfigurationError("ratio target must be in (0, 1]")
        self._add(
            _RatioObjective(
                name=name,
                window_s=window_s,
                burn_threshold=burn_threshold,
                good=good,
                total=total,
                target=target,
            )
        )
        return self

    def add_latency(
        self,
        name: str,
        histogram: str,
        threshold_s: float,
        quantile: float = 0.99,
        window_s: float = 60.0,
        burn_threshold: float = 2.0,
    ) -> "SLOEngine":
        """Require the histogram's windowed *quantile* <= *threshold_s*."""
        if not 0.0 < quantile < 1.0:
            raise ConfigurationError("latency quantile must be in (0, 1)")
        if threshold_s <= 0:
            raise ConfigurationError("latency threshold_s must be > 0")
        self._add(
            _LatencyObjective(
                name=name,
                window_s=window_s,
                burn_threshold=burn_threshold,
                histogram=histogram,
                quantile=quantile,
                threshold_s=threshold_s,
            )
        )
        return self

    def declare(self, *objectives: "RatioSLO | LatencySLO") -> "SLOEngine":
        """Install declarative objective specs (build-time declaration).

        Accepts the frozen :class:`RatioSLO` / :class:`LatencySLO`
        shapes the builder's ``with_slo(objectives=...)`` collects, so
        an environment can come up with its SLOs already armed.
        """
        for spec in objectives:
            spec.declare(self)
        return self

    def add_burn_listener(self, callback: BurnListener) -> "SLOEngine":
        """Call *callback*(name, burning, status) on every burn edge.

        Edge-triggered like the ``slo-burn`` events: once when an
        episode starts (``burning=True``) and once when it clears
        (``burning=False``).  The adaptive control plane subscribes
        here to drive remediation.
        """
        self._burn_listeners.append(callback)
        return self

    def _add(self, objective: _Objective) -> None:
        if objective.name in self._objectives:
            raise ConfigurationError(f"objective {objective.name!r} already declared")
        if objective.window_s <= 0:
            raise ConfigurationError("objective window_s must be > 0")
        # One ring slot per sample period; a window that is not an exact
        # multiple of the period rounds up (the baseline a cumulative
        # sampler would have kept spans whole periods too).
        objective.slots = max(
            1, int(math.ceil(objective.window_s / self._period_s - 1e-9))
        )
        if isinstance(objective, _RatioObjective):
            span = objective.slots * self._period_s
            objective.good_window = WindowedCounter(span, objective.slots)
            objective.total_window = WindowedCounter(span, objective.slots)
        self._objectives[objective.name] = objective

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "SLOEngine":
        """Arm periodic sampling (idempotent); returns self."""
        from repro.sim.engine import PeriodicTask

        if self._task is None:
            self._task = PeriodicTask(
                self._engine, self._period_s, self._sample, label="slo-sample"
            ).start()
        return self

    def stop(self) -> None:
        """Stop sampling (the frozen windows keep answering evaluate())."""
        if self._task is not None:
            self._task.stop()
            self._task = None

    # -- sampling ----------------------------------------------------------
    def _read(self, objective: _Objective) -> Any:
        if isinstance(objective, _RatioObjective):
            return (
                self._metrics.counter(objective.good).value,
                self._metrics.counter(objective.total).value,
            )
        assert isinstance(objective, _LatencyObjective)
        histogram = self._metrics.histogram(objective.histogram)
        return (list(histogram.bucket_counts), histogram.maximum)

    def _advance(self, objective: _Objective, live: Any) -> None:
        """Push one tick's cumulative delta into the objective's window."""
        if isinstance(objective, _RatioObjective):
            if objective.last is not None:
                good0, total0 = objective.last
                objective.good_window.push(live[0] - good0)
                objective.total_window.push(live[1] - total0)
            objective.last = live
            return
        assert isinstance(objective, _LatencyObjective)
        counts, _maximum = live
        if objective.window is None:
            histogram = self._metrics.histogram(objective.histogram)
            objective.window = WindowedHistogram(
                objective.slots * self._period_s, objective.slots, histogram.bounds
            )
        if objective.last is not None:
            counts0 = objective.last[0]
            objective.window.push_counts(
                [c1 - c0 for c1, c0 in zip(counts, counts0)]
            )
        objective.last = live

    def _sample(self) -> None:
        now = self._engine.now
        for objective in self._objectives.values():
            live = self._read(objective)
            self._advance(objective, live)
            status = self._status(objective, live=live)
            burning = (
                status["burn_rate"] >= objective.burn_threshold
                and status["observations"] > 0
            )
            if burning and not objective.alerting:
                objective.alerts += 1
                self._events.record(
                    now,
                    KIND_SLO_BURN,
                    objective=objective.name,
                    burn_rate=round(status["burn_rate"], 4),
                    value=status["value"],
                )
            edge = burning != objective.alerting
            objective.alerting = burning
            if edge:
                for listener in self._burn_listeners:
                    listener(objective.name, burning, status)

    # -- evaluation --------------------------------------------------------
    def _status(self, objective: _Objective, live: Any = None) -> dict[str, Any]:
        if live is None:  # the sampler passes its fresh read to avoid a reread
            live = self._read(objective)
        # Window value = ring sum + whatever accrued since the last tick
        # (so evaluate() between ticks sees fresh traffic, exactly as a
        # cumulative-baseline difference would).
        if isinstance(objective, _RatioObjective):
            good1, total1 = live
            last = objective.last if objective.last is not None else (0, 0)
            good = objective.good_window.delta() + (good1 - last[0])
            total = objective.total_window.delta() + (total1 - last[1])
            ratio = good / total if total else 1.0
            budget = 1.0 - objective.target
            burn = ((1.0 - ratio) / budget) if budget > 0 else (
                0.0 if ratio >= 1.0 else float("inf")
            )
            return {
                "type": "ratio",
                "target": objective.target,
                "value": round(ratio, 6),
                "met": ratio >= objective.target,
                "burn_rate": burn,
                "observations": total,
            }
        assert isinstance(objective, _LatencyObjective)
        histogram = self._metrics.histogram(objective.histogram)
        counts1, maximum = live
        counts0 = (
            objective.last[0]
            if objective.last is not None
            else [0] * len(counts1)
        )
        windowed = (
            objective.window.counts()
            if objective.window is not None
            else [0] * len(counts1)
        )
        deltas = [
            w + (c1 - c0) for w, c1, c0 in zip(windowed, counts1, counts0)
        ]
        total = sum(deltas)
        value = self._bucket_quantile(
            histogram, deltas, total, objective.quantile, maximum
        )
        over = self._over_threshold(histogram, deltas, objective.threshold_s)
        budget = 1.0 - objective.quantile
        burn = (over / total / budget) if total else 0.0
        return {
            "type": "latency",
            "quantile": objective.quantile,
            "threshold_s": objective.threshold_s,
            "value": round(value, 6),
            "met": value <= objective.threshold_s,
            "burn_rate": burn,
            "observations": total,
        }

    @staticmethod
    def _bucket_quantile(
        histogram: Histogram,
        deltas: list[int],
        total: int,
        quantile: float,
        maximum: float,
    ) -> float:
        """The windowed quantile, read off the bucket upper bounds.

        The estimate is the upper bound of the bucket where the
        cumulative count crosses the quantile — conservative (never
        under-reports) and exact when observations sit on bounds.  The
        overflow bucket reports the histogram's running maximum.
        """
        if total <= 0:
            return 0.0
        rank = quantile * total
        cumulative = 0
        for bound, delta in zip(histogram.bounds, deltas):
            cumulative += delta
            if cumulative >= rank:
                return bound
        return maximum if maximum > float("-inf") else histogram.bounds[-1]

    @staticmethod
    def _over_threshold(
        histogram: Histogram, deltas: list[int], threshold_s: float
    ) -> int:
        """Windowed observations in buckets entirely above the threshold."""
        over = 0
        for bound, delta in zip(histogram.bounds, deltas):
            if bound > threshold_s:
                over += delta
        return over + deltas[-1]  # the +inf overflow bucket

    def evaluate(self) -> dict[str, dict[str, Any]]:
        """Current per-objective status over each sliding window."""
        results = {}
        for name, objective in sorted(self._objectives.items()):
            status = self._status(objective)
            status["window_s"] = objective.window_s
            status["alerts"] = objective.alerts
            status["alerting"] = objective.alerting
            results[name] = status
        return results

    def healthy(self) -> bool:
        """True when every objective is currently met."""
        return all(status["met"] for status in self.evaluate().values())

    def window_cells(self) -> dict[str, int]:
        """Live ring cells per objective — the engine's window memory.

        Bounded by each objective's slot count no matter how long the
        run: the soak benchmark samples this mid-run and at the end to
        prove the windows hold O(window / period) state, not O(events).
        """
        cells: dict[str, int] = {}
        for name, objective in sorted(self._objectives.items()):
            if isinstance(objective, _RatioObjective):
                cells[name] = max(
                    objective.good_window.cells, objective.total_window.cells
                )
            else:
                assert isinstance(objective, _LatencyObjective)
                cells[name] = (
                    objective.window.cells if objective.window is not None else 0
                )
        return cells
