"""Process-local metrics: counters, gauges and fixed-bucket histograms.

The observability layer the scaling experiments measure themselves
against.  A :class:`MetricsRegistry` is a plain in-process collection of
named instruments with snapshot/reset semantics and zero-dependency
export (``snapshot()`` for dicts/JSON, ``render_text()`` for humans).

Instruments come in two shapes:

* **flat** — ``registry.counter("env.exchange.attempted")`` returns a
  single :class:`Counter`;
* **dimensional** — ``registry.counter("gateway.relays",
  labels=("source", "target"))`` returns a family whose
  ``labels(source="d0", target="d1")`` call hands back a per-label-set
  child.  One registry then serves N domains × M shards without minting
  ad-hoc name suffixes, and snapshots stay deterministic because child
  names render as ``name{k=v,...}`` and sort with everything else.

Families enforce a hard cardinality cap: once a family holds
:data:`CARDINALITY_LIMIT` children, novel label sets collapse into a
shared ``__other__`` child and bump the registry-level
``obs.cardinality.dropped`` counter, so a misbehaving label (say, a
per-user id) cannot grow the registry without bound.

Instrumented components (``sim.engine``, ``util.events``, ``odp.trader``,
``messaging.mta``, ``environment.exchange``) hold a registry reference
that defaults to :data:`NULL_METRICS` — a no-op registry whose
``enabled`` flag is ``False`` — so the un-instrumented hot path costs a
single attribute check.  Attach a real registry through
:mod:`repro.obs.instrument` (or ``CSCWEnvironment.builder()``) to turn
collection on.

>>> registry = MetricsRegistry()
>>> registry.inc("requests")
1
>>> registry.observe("latency", 3.0, buckets=(1.0, 5.0))
>>> registry.snapshot()["counters"]["requests"]
1
>>> family = registry.counter("delivered", labels=("domain",))
>>> family.labels(domain="d0").inc()
1
>>> registry.snapshot()["counters"]["delivered{domain=d0}"]
1
>>> NULL_METRICS.enabled
False
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any

#: default histogram bucket upper bounds (powers-of-two-ish spread wide
#: enough for fan-outs, hop counts and latencies alike)
DEFAULT_BUCKETS: tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
)

#: default per-family child cap; novel label sets beyond it collapse
#: into the shared ``__other__`` child
CARDINALITY_LIMIT = 64

#: label value every overflow child carries
OVERFLOW_LABEL = "__other__"

#: registry counter bumped once per distinct collapsed label set
CARDINALITY_DROPPED = "obs.cardinality.dropped"


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> int:
        """Add *amount* (default 1); return the new value."""
        self.value += amount
        return self.value

    def reset(self) -> None:
        """Zero the counter (used by :meth:`MetricsRegistry.reset`)."""
        self.value = 0


class Gauge:
    """A named value that can go up and down (e.g. queue depth)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's current value."""
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        """Raise the gauge by *amount*."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Lower the gauge by *amount*."""
        self.value -= amount

    def reset(self) -> None:
        """Zero the gauge (used by :meth:`MetricsRegistry.reset`)."""
        self.value = 0.0


class Histogram:
    """A fixed-bucket histogram over observed float values.

    Buckets are cumulative-style upper bounds: an observation lands in
    the first bucket whose bound is >= the value; values above the last
    bound land in the implicit ``+inf`` bucket.  Bounds are fixed at
    creation, so ``observe`` is O(log buckets) with no allocation.

    >>> h = Histogram("fanout", buckets=(1.0, 4.0))
    >>> for v in (0.5, 3.0, 100.0): h.observe(v)
    >>> h.count, h.bucket_counts
    (3, [1, 1, 1])
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "minimum", "maximum")

    def __init__(self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        bounds = tuple(sorted(float(b) for b in buckets))
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"duplicate bucket bounds in {buckets!r}")
        self.name = name
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +inf overflow
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, Any]:
        """A JSON-able summary of the distribution."""
        labels = [f"le_{bound:g}" for bound in self.bounds] + ["le_inf"]
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "buckets": dict(zip(labels, self.bucket_counts)),
        }

    def reset(self) -> None:
        """Forget all observations; bucket bounds are kept."""
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")


def render_labelled_name(name: str, label_names: tuple[str, ...], values: tuple[str, ...]) -> str:
    """The exported name of a family child: ``name{k=v,...}``.

    Labels render in declaration order, so one family's children share a
    prefix and sort deterministically.

    >>> render_labelled_name("relays", ("source", "target"), ("d0", "d1"))
    'relays{source=d0,target=d1}'
    """
    pairs = ",".join(f"{k}={v}" for k, v in zip(label_names, values))
    return f"{name}{{{pairs}}}"


class _Family:
    """Shared machinery for dimensional instrument families.

    A family owns per-label-set children, keyed by the tuple of label
    *values* in declaration order.  Children are ordinary
    :class:`Counter`/:class:`Gauge`/:class:`Histogram` instances also
    registered with the owning registry under their rendered
    ``name{k=v,...}`` name, so snapshot/render_text/reset see them for
    free.  At the cardinality cap, novel label sets resolve to the
    shared ``__other__`` child instead of minting new children.
    """

    __slots__ = ("name", "label_names", "limit", "_children", "_overflow", "_registry", "_dropped_keys")

    #: bound on the dedup set for dropped label sets; past it every
    #: novel overflow access bumps the dropped counter (overcount is
    #: preferred over unbounded tracking memory)
    _DROPPED_TRACK_LIMIT = 4 * CARDINALITY_LIMIT

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        label_names: tuple[str, ...],
        limit: int,
    ) -> None:
        if not label_names:
            raise ValueError(f"family {name!r} needs at least one label name")
        if len(set(label_names)) != len(label_names):
            raise ValueError(f"duplicate label names in {label_names!r}")
        if limit < 1:
            raise ValueError(f"cardinality limit must be >= 1, got {limit}")
        self.name = name
        self.label_names = tuple(label_names)
        self.limit = limit
        self._children: dict[tuple[str, ...], Any] = {}
        self._overflow: Any = None
        self._registry = registry
        self._dropped_keys: set[tuple[str, ...]] = set()

    # Subclasses say how to mint one child instrument.
    def _create(self, rendered_name: str) -> Any:  # pragma: no cover - abstract
        raise NotImplementedError

    def labels(self, *values: Any, **named: Any) -> Any:
        """The child for one label set; positional or keyword values.

        Keyword form must name every declared label; positional form
        must match the declaration order and arity.
        """
        if named:
            if values:
                raise ValueError("pass label values positionally or by name, not both")
            try:
                key = tuple(str(named[label]) for label in self.label_names)
            except KeyError as exc:
                raise ValueError(
                    f"family {self.name!r} expects labels {self.label_names!r}"
                ) from exc
        else:
            if len(values) != len(self.label_names):
                raise ValueError(
                    f"family {self.name!r} expects {len(self.label_names)} "
                    f"label values, got {len(values)}"
                )
            key = tuple(str(value) for value in values)
        child = self._children.get(key)
        if child is not None:
            return child
        if len(self._children) >= self.limit:
            return self._drop(key)
        child = self._create(render_labelled_name(self.name, self.label_names, key))
        self._children[key] = child
        return child

    def _drop(self, key: tuple[str, ...]) -> Any:
        """Collapse an over-cap label set into the ``__other__`` child."""
        if self._overflow is None:
            overflow_key = (OVERFLOW_LABEL,) * len(self.label_names)
            self._overflow = self._create(
                render_labelled_name(self.name, self.label_names, overflow_key)
            )
        if key not in self._dropped_keys:
            if len(self._dropped_keys) < self._DROPPED_TRACK_LIMIT:
                self._dropped_keys.add(key)
            self._registry.inc(CARDINALITY_DROPPED)
        return self._overflow

    @property
    def cardinality(self) -> int:
        """How many real (non-overflow) children exist."""
        return len(self._children)

    def children(self) -> dict[tuple[str, ...], Any]:
        """Label-set → child, sorted by label values (a copy)."""
        return {key: self._children[key] for key in sorted(self._children)}


class CounterFamily(_Family):
    """A dimensional counter: ``labels(...)`` yields per-set counters."""

    __slots__ = ()

    def _create(self, rendered_name: str) -> Counter:
        return self._registry.counter(rendered_name)

    def inc(self, amount: int = 1, **named: Any) -> int:
        """Shorthand: ``family.inc(domain="d0")`` == ``labels(...).inc()``."""
        return self.labels(**named).inc(amount)


class GaugeFamily(_Family):
    """A dimensional gauge: ``labels(...)`` yields per-set gauges."""

    __slots__ = ()

    def _create(self, rendered_name: str) -> Gauge:
        return self._registry.gauge(rendered_name)

    def set(self, value: float, **named: Any) -> None:
        """Shorthand: set one labelled child in a single call."""
        self.labels(**named).set(value)


class HistogramFamily(_Family):
    """A dimensional histogram; all children share the family's buckets."""

    __slots__ = ("buckets",)

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        label_names: tuple[str, ...],
        limit: int,
        buckets: tuple[float, ...],
    ) -> None:
        super().__init__(registry, name, label_names, limit)
        self.buckets = buckets

    def _create(self, rendered_name: str) -> Histogram:
        return self._registry.histogram(rendered_name, self.buckets)

    def observe(self, value: float, **named: Any) -> None:
        """Shorthand: observe into one labelled child in a single call."""
        self.labels(**named).observe(value)


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    Instruments are created lazily on first use (``inc``/``set_gauge``/
    ``observe``) or explicitly (``counter``/``gauge``/``histogram``) when
    a caller wants non-default histogram buckets.  Passing ``labels=``
    to ``counter``/``gauge``/``histogram`` returns a dimensional family
    instead of a single instrument (see module docstring).  ``enabled``
    is the flag instrumented hot paths check before recording.
    """

    #: real registries record; the null registry advertises False
    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._families: dict[str, _Family] = {}

    # -- instrument access (get-or-create) --------------------------------
    def counter(
        self,
        name: str,
        labels: tuple[str, ...] | None = None,
        limit: int | None = None,
    ) -> Counter | CounterFamily:
        """The counter *name* (or, with *labels*, its dimensional family).

        ``labels`` and ``limit`` only apply at family creation; asking
        for an existing family with different label names is an error.
        """
        if labels is not None:
            return self._family(name, CounterFamily, tuple(labels), limit)
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(
        self,
        name: str,
        labels: tuple[str, ...] | None = None,
        limit: int | None = None,
    ) -> Gauge | GaugeFamily:
        """The gauge *name* (or, with *labels*, its dimensional family)."""
        if labels is not None:
            return self._family(name, GaugeFamily, tuple(labels), limit)
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] | None = None,
        labels: tuple[str, ...] | None = None,
        limit: int | None = None,
    ) -> Histogram | HistogramFamily:
        """The histogram *name*; *buckets* only applies at creation.

        With *labels*, returns the dimensional family; every child
        shares the family's bucket bounds.
        """
        if labels is not None:
            return self._family(
                name, HistogramFamily, tuple(labels), limit,
                buckets if buckets is not None else DEFAULT_BUCKETS,
            )
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(
                name, buckets if buckets is not None else DEFAULT_BUCKETS
            )
        return instrument

    def _family(
        self,
        name: str,
        kind: type,
        label_names: tuple[str, ...],
        limit: int | None,
        *extra: Any,
    ) -> Any:
        """Get-or-create one dimensional family; validate on reuse."""
        family = self._families.get(name)
        if family is None:
            family = kind(
                self, name, label_names,
                limit if limit is not None else CARDINALITY_LIMIT,
                *extra,
            )
            self._families[name] = family
            return family
        if not isinstance(family, kind):
            raise ValueError(
                f"family {name!r} already exists as {type(family).__name__}"
            )
        if family.label_names != label_names:
            raise ValueError(
                f"family {name!r} declared with labels {family.label_names!r}, "
                f"requested {label_names!r}"
            )
        return family

    def family(self, name: str) -> _Family | None:
        """The dimensional family *name* if declared, else None."""
        return self._families.get(name)

    def cardinality(self) -> dict[str, int]:
        """Family name → live (non-overflow) child count, sorted."""
        return {
            name: family.cardinality
            for name, family in sorted(self._families.items())
        }

    # -- recording shorthands ---------------------------------------------
    def inc(self, name: str, amount: int = 1) -> int:
        """Increment counter *name*; return its new value."""
        return self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to *value*."""
        self.gauge(name).set(value)

    def observe(self, name: str, value: float, buckets: tuple[float, ...] | None = None) -> None:
        """Record *value* into histogram *name* (*buckets* on first use)."""
        self.histogram(name, buckets).observe(value)

    # -- export / lifecycle -----------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """A JSON-able dict of every instrument's current state."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: h.snapshot() for name, h in sorted(self._histograms.items())
            },
        }

    def render_text(self) -> str:
        """A plain-text export, one instrument per line.

        >>> r = MetricsRegistry()
        >>> _ = r.inc("a.b")
        >>> print(r.render_text())
        counter a.b 1
        """
        lines: list[str] = []
        for name, counter_ in sorted(self._counters.items()):
            lines.append(f"counter {name} {counter_.value}")
        for name, gauge_ in sorted(self._gauges.items()):
            lines.append(f"gauge {name} {gauge_.value:g}")
        for name, histogram_ in sorted(self._histograms.items()):
            lines.append(
                f"histogram {name} count={histogram_.count} "
                f"mean={histogram_.mean:g} max={histogram_.maximum if histogram_.count else 0:g}"
            )
        return "\n".join(lines)

    def reset(self) -> None:
        """Zero every instrument, keeping names and histogram buckets."""
        for counter_ in self._counters.values():
            counter_.reset()
        for gauge_ in self._gauges.values():
            gauge_.reset()
        for histogram_ in self._histograms.values():
            histogram_.reset()


class _NullCounter(Counter):
    """Counter whose ``inc`` does nothing (shared by the null registry)."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> int:
        """Discard the increment; always report zero."""
        return 0


class _NullGauge(Gauge):
    """Gauge that discards all updates."""

    __slots__ = ()

    def set(self, value: float) -> None:
        """Discard the update."""

    def inc(self, amount: float = 1.0) -> None:
        """Discard the update."""

    def dec(self, amount: float = 1.0) -> None:
        """Discard the update."""


class _NullHistogram(Histogram):
    """Histogram that discards all observations."""

    __slots__ = ()

    def observe(self, value: float) -> None:
        """Discard the observation."""


class _NullFamily:
    """Family whose every label set resolves to one shared null child."""

    __slots__ = ("_child",)

    label_names: tuple[str, ...] = ()
    cardinality = 0

    def __init__(self, child: Any) -> None:
        self._child = child

    def labels(self, *values: Any, **named: Any) -> Any:
        """Always the shared no-op child."""
        return self._child

    def inc(self, amount: int = 1, **named: Any) -> int:
        """Discard the increment."""
        return 0

    def set(self, value: float, **named: Any) -> None:
        """Discard the update."""

    def observe(self, value: float, **named: Any) -> None:
        """Discard the observation."""

    def children(self) -> dict[tuple[str, ...], Any]:
        """The null family never holds children."""
        return {}


class NullMetricsRegistry(MetricsRegistry):
    """The default, disabled registry: every operation is a no-op.

    Components are born with this attached so instrumented code can run
    unconditionally; real hot paths additionally guard on ``enabled`` to
    skip even the no-op call.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null")
        self._null_counter_family = _NullFamily(self._null_counter)
        self._null_gauge_family = _NullFamily(self._null_gauge)
        self._null_histogram_family = _NullFamily(self._null_histogram)

    def counter(
        self,
        name: str,
        labels: tuple[str, ...] | None = None,
        limit: int | None = None,
    ) -> Any:
        """Always the shared no-op counter (or no-op family)."""
        if labels is not None:
            return self._null_counter_family
        return self._null_counter

    def gauge(
        self,
        name: str,
        labels: tuple[str, ...] | None = None,
        limit: int | None = None,
    ) -> Any:
        """Always the shared no-op gauge (or no-op family)."""
        if labels is not None:
            return self._null_gauge_family
        return self._null_gauge

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] | None = None,
        labels: tuple[str, ...] | None = None,
        limit: int | None = None,
    ) -> Any:
        """Always the shared no-op histogram (or no-op family)."""
        if labels is not None:
            return self._null_histogram_family
        return self._null_histogram

    def inc(self, name: str, amount: int = 1) -> int:
        """Discard the increment."""
        return 0

    def set_gauge(self, name: str, value: float) -> None:
        """Discard the update."""

    def observe(self, name: str, value: float, buckets: tuple[float, ...] | None = None) -> None:
        """Discard the observation."""


#: the shared disabled registry every component starts with
NULL_METRICS = NullMetricsRegistry()
