"""Process-local metrics: counters, gauges and fixed-bucket histograms.

The observability layer the scaling experiments measure themselves
against.  A :class:`MetricsRegistry` is a plain in-process collection of
named instruments with snapshot/reset semantics and zero-dependency
export (``snapshot()`` for dicts/JSON, ``render_text()`` for humans).

Instrumented components (``sim.engine``, ``util.events``, ``odp.trader``,
``messaging.mta``, ``environment.exchange``) hold a registry reference
that defaults to :data:`NULL_METRICS` — a no-op registry whose
``enabled`` flag is ``False`` — so the un-instrumented hot path costs a
single attribute check.  Attach a real registry through
:mod:`repro.obs.instrument` (or ``CSCWEnvironment.builder()``) to turn
collection on.

>>> registry = MetricsRegistry()
>>> registry.inc("requests")
1
>>> registry.observe("latency", 3.0, buckets=(1.0, 5.0))
>>> registry.snapshot()["counters"]["requests"]
1
>>> NULL_METRICS.enabled
False
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any

#: default histogram bucket upper bounds (powers-of-two-ish spread wide
#: enough for fan-outs, hop counts and latencies alike)
DEFAULT_BUCKETS: tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
)


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> int:
        """Add *amount* (default 1); return the new value."""
        self.value += amount
        return self.value

    def reset(self) -> None:
        """Zero the counter (used by :meth:`MetricsRegistry.reset`)."""
        self.value = 0


class Gauge:
    """A named value that can go up and down (e.g. queue depth)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's current value."""
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        """Raise the gauge by *amount*."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Lower the gauge by *amount*."""
        self.value -= amount

    def reset(self) -> None:
        """Zero the gauge (used by :meth:`MetricsRegistry.reset`)."""
        self.value = 0.0


class Histogram:
    """A fixed-bucket histogram over observed float values.

    Buckets are cumulative-style upper bounds: an observation lands in
    the first bucket whose bound is >= the value; values above the last
    bound land in the implicit ``+inf`` bucket.  Bounds are fixed at
    creation, so ``observe`` is O(log buckets) with no allocation.

    >>> h = Histogram("fanout", buckets=(1.0, 4.0))
    >>> for v in (0.5, 3.0, 100.0): h.observe(v)
    >>> h.count, h.bucket_counts
    (3, [1, 1, 1])
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "minimum", "maximum")

    def __init__(self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        bounds = tuple(sorted(float(b) for b in buckets))
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"duplicate bucket bounds in {buckets!r}")
        self.name = name
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +inf overflow
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, Any]:
        """A JSON-able summary of the distribution."""
        labels = [f"le_{bound:g}" for bound in self.bounds] + ["le_inf"]
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "buckets": dict(zip(labels, self.bucket_counts)),
        }

    def reset(self) -> None:
        """Forget all observations; bucket bounds are kept."""
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    Instruments are created lazily on first use (``inc``/``set_gauge``/
    ``observe``) or explicitly (``counter``/``gauge``/``histogram``) when
    a caller wants non-default histogram buckets.  ``enabled`` is the
    flag instrumented hot paths check before recording.
    """

    #: real registries record; the null registry advertises False
    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument access (get-or-create) --------------------------------
    def counter(self, name: str) -> Counter:
        """The counter *name*, created at zero when new."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge *name*, created at zero when new."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, buckets: tuple[float, ...] | None = None) -> Histogram:
        """The histogram *name*; *buckets* only applies at creation."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(
                name, buckets if buckets is not None else DEFAULT_BUCKETS
            )
        return instrument

    # -- recording shorthands ---------------------------------------------
    def inc(self, name: str, amount: int = 1) -> int:
        """Increment counter *name*; return its new value."""
        return self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to *value*."""
        self.gauge(name).set(value)

    def observe(self, name: str, value: float, buckets: tuple[float, ...] | None = None) -> None:
        """Record *value* into histogram *name* (*buckets* on first use)."""
        self.histogram(name, buckets).observe(value)

    # -- export / lifecycle -----------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """A JSON-able dict of every instrument's current state."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: h.snapshot() for name, h in sorted(self._histograms.items())
            },
        }

    def render_text(self) -> str:
        """A plain-text export, one instrument per line.

        >>> r = MetricsRegistry()
        >>> _ = r.inc("a.b")
        >>> print(r.render_text())
        counter a.b 1
        """
        lines: list[str] = []
        for name, counter_ in sorted(self._counters.items()):
            lines.append(f"counter {name} {counter_.value}")
        for name, gauge_ in sorted(self._gauges.items()):
            lines.append(f"gauge {name} {gauge_.value:g}")
        for name, histogram_ in sorted(self._histograms.items()):
            lines.append(
                f"histogram {name} count={histogram_.count} "
                f"mean={histogram_.mean:g} max={histogram_.maximum if histogram_.count else 0:g}"
            )
        return "\n".join(lines)

    def reset(self) -> None:
        """Zero every instrument, keeping names and histogram buckets."""
        for counter_ in self._counters.values():
            counter_.reset()
        for gauge_ in self._gauges.values():
            gauge_.reset()
        for histogram_ in self._histograms.values():
            histogram_.reset()


class _NullCounter(Counter):
    """Counter whose ``inc`` does nothing (shared by the null registry)."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> int:
        """Discard the increment; always report zero."""
        return 0


class _NullGauge(Gauge):
    """Gauge that discards all updates."""

    __slots__ = ()

    def set(self, value: float) -> None:
        """Discard the update."""

    def inc(self, amount: float = 1.0) -> None:
        """Discard the update."""

    def dec(self, amount: float = 1.0) -> None:
        """Discard the update."""


class _NullHistogram(Histogram):
    """Histogram that discards all observations."""

    __slots__ = ()

    def observe(self, value: float) -> None:
        """Discard the observation."""


class NullMetricsRegistry(MetricsRegistry):
    """The default, disabled registry: every operation is a no-op.

    Components are born with this attached so instrumented code can run
    unconditionally; real hot paths additionally guard on ``enabled`` to
    skip even the no-op call.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null")

    def counter(self, name: str) -> Counter:
        """Always the shared no-op counter."""
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        """Always the shared no-op gauge."""
        return self._null_gauge

    def histogram(self, name: str, buckets: tuple[float, ...] | None = None) -> Histogram:
        """Always the shared no-op histogram."""
        return self._null_histogram

    def inc(self, name: str, amount: int = 1) -> int:
        """Discard the increment."""
        return 0

    def set_gauge(self, name: str, value: float) -> None:
        """Discard the update."""

    def observe(self, name: str, value: float, buckets: tuple[float, ...] | None = None) -> None:
        """Discard the observation."""


#: the shared disabled registry every component starts with
NULL_METRICS = NullMetricsRegistry()
