"""Windowed aggregation: ring-of-slots views over sim-time.

Cumulative instruments (:mod:`repro.obs.metrics`) never age: a counter
only grows, a histogram keeps every bucket increment forever.  That is
the right export surface, but consumers that ask *"what happened over
the last W seconds?"* — the SLO engine, ``HealthMonitor.trend``, the
adaptive control plane — previously answered it by retaining cumulative
samples and differencing them, which costs memory proportional to the
sample count on long soaks.

The classes here hold a fixed ring of ``slots`` buckets, each covering
``window_s / slots`` seconds of sim-time.  Writes land in the bucket for
their timestamp (or, for strictly periodic feeders, in a freshly pushed
bucket); buckets older than the window are evicted as the ring advances.
Memory is therefore O(slots) — independent of event rate and run length
— and every read is a sum over at most ``slots`` cells.

Two feeding styles, chosen by the caller:

* ``push(...)`` advances the ring by exactly one slot per call.  Used by
  periodic feeders (the SLO sampler ticks once per period) — it is
  immune to floating-point drift in the tick timestamps.
* ``add(now, ...)`` buckets by timestamp.  Used by aperiodic feeders
  (health-probe reports); readers pass ``now`` so staleness is evicted
  at read time.

>>> wc = WindowedCounter(window_s=4.0, slots=4)
>>> for delta in (5, 3, 2, 7): wc.push(delta)
>>> wc.delta()
17
>>> wc.push(1)          # ring is full: the 5 falls out of the window
>>> wc.delta()
13
>>> wc.cells
4
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from typing import Any

from repro.obs.metrics import DEFAULT_BUCKETS


class _Ring:
    """Shared ring mechanics: slot bookkeeping, advancement, eviction.

    ``_ring`` holds ``[slot_index, payload]`` pairs, oldest first; the
    deque's ``maxlen`` doubles as a backstop so the ring can never hold
    more than ``slots`` live cells regardless of feed pattern.
    """

    __slots__ = ("window_s", "slots", "width", "_ring", "_head")

    def __init__(self, window_s: float, slots: int) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be > 0")
        if slots < 1:
            raise ValueError("slots must be >= 1")
        self.window_s = float(window_s)
        self.slots = slots
        self.width = self.window_s / slots
        self._ring: deque[list[Any]] = deque(maxlen=slots)
        self._head = -1

    def _evict(self) -> None:
        floor = self._head - self.slots
        ring = self._ring
        while ring and ring[0][0] <= floor:
            ring.popleft()

    def _cell_for_push(self, zero: Any) -> list[Any]:
        """Advance exactly one slot and return its fresh cell."""
        self._head += 1
        cell = [self._head, zero]
        self._ring.append(cell)  # maxlen evicts the oldest automatically
        return cell

    def _cell_for_time(self, now: float, zero: Any) -> list[Any]:
        """The cell covering *now*, advancing/evicting as needed.

        A timestamp older than the current head (possible when an
        in-flight report lands after a newer one) folds into the newest
        live cell rather than resurrecting an evicted slot.
        """
        index = int(now / self.width)
        if index > self._head:
            self._head = index
            self._evict()
        ring = self._ring
        if ring and ring[-1][0] >= index:
            return ring[-1]
        cell = [index, zero]
        ring.append(cell)
        return cell

    def advance_to(self, now: float) -> None:
        """Evict every cell that is stale as of *now* (for readers)."""
        index = int(now / self.width)
        if index > self._head:
            self._head = index
            self._evict()

    @property
    def cells(self) -> int:
        """Live cell count — the whole memory footprint of the window."""
        return len(self._ring)


class WindowedCounter(_Ring):
    """A count over the trailing window, O(slots) memory.

    >>> wc = WindowedCounter(window_s=2.0, slots=2)
    >>> wc.add(0.3, 4); wc.add(1.2, 6)
    >>> wc.delta()
    10
    >>> wc.add(2.7, 1)      # slot covering t in [0,1) ages out
    >>> wc.delta(), round(wc.rate(), 2)
    (7, 3.5)
    """

    __slots__ = ()

    def push(self, amount: float = 0) -> None:
        """Advance one slot and record *amount* in it (periodic feed)."""
        self._cell_for_push(amount)

    def add(self, now: float, amount: float = 1) -> None:
        """Record *amount* in the slot covering *now* (timed feed)."""
        cell = self._cell_for_time(now, 0)
        cell[1] += amount

    def delta(self) -> float:
        """Sum over live slots — the count inside the window."""
        return sum(cell[1] for cell in self._ring)

    def rate(self) -> float:
        """``delta()`` per second of window actually covered."""
        covered = min(len(self._ring), self.slots) * self.width
        return self.delta() / covered if covered else 0.0


class WindowedHistogram(_Ring):
    """A fixed-bucket distribution over the trailing window.

    Each slot holds a bucket-count vector (same bounds layout as
    :class:`repro.obs.metrics.Histogram`: one cell per bound plus a
    trailing ``+inf`` overflow) along with count/total/max moments, so
    quantiles and threshold counts come from the merged vectors — never
    from retained observations.

    >>> wh = WindowedHistogram(window_s=10.0, slots=5, buckets=(0.1, 0.5, 1.0))
    >>> for value in (0.05, 0.3, 0.3, 2.0): wh.observe(1.0, value)
    >>> wh.count(), wh.quantile(0.5)
    (4, 0.5)
    >>> wh.maximum()
    2.0
    """

    __slots__ = ("bounds",)

    def __init__(
        self,
        window_s: float,
        slots: int,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(window_s, slots)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds or len(set(bounds)) != len(bounds):
            raise ValueError(f"bad bucket bounds {buckets!r}")
        self.bounds = bounds

    def _zero(self) -> list[Any]:
        # payload: [bucket_counts, count, total, maximum]
        return [[0] * (len(self.bounds) + 1), 0, 0.0, float("-inf")]

    def observe(self, now: float, value: float) -> None:
        """Record one observation at sim-time *now*."""
        payload = self._cell_for_time(now, None)
        if payload[1] is None:
            payload[1] = self._zero()
        slot = payload[1]
        slot[0][bisect_left(self.bounds, value)] += 1
        slot[1] += 1
        slot[2] += value
        if value > slot[3]:
            slot[3] = value

    def push_counts(
        self,
        counts: list[int],
        count: int | None = None,
        total: float = 0.0,
        maximum: float = float("-inf"),
    ) -> None:
        """Advance one slot and load it with pre-binned bucket deltas.

        The SLO sampler's feed path: it differences a cumulative
        histogram once per period and hands the delta vector straight
        in.  *counts* may be shorter than the bucket layout (it is
        padded) but never longer.
        """
        vector = [0] * (len(self.bounds) + 1)
        for i, value in enumerate(counts[: len(vector)]):
            vector[i] = value
        self._cell_for_push(
            [vector, count if count is not None else sum(vector), total, maximum]
        )

    # -- merged views ------------------------------------------------------
    def counts(self) -> list[int]:
        """Element-wise sum of live slot vectors."""
        merged = [0] * (len(self.bounds) + 1)
        for _, payload in self._ring:
            if payload is None:
                continue
            for i, value in enumerate(payload[0]):
                merged[i] += value
        return merged

    def count(self) -> int:
        """Observations inside the window."""
        return sum(payload[1] for _, payload in self._ring if payload is not None)

    def total(self) -> float:
        """Sum of observed values inside the window."""
        return sum(payload[2] for _, payload in self._ring if payload is not None)

    def mean(self) -> float:
        """Mean observed value inside the window (0.0 when empty)."""
        count = self.count()
        return self.total() / count if count else 0.0

    def maximum(self) -> float:
        """Largest observed value inside the window (0.0 when empty)."""
        peaks = [payload[3] for _, payload in self._ring if payload is not None]
        best = max(peaks, default=float("-inf"))
        return best if best != float("-inf") else 0.0

    def quantile(self, q: float) -> float:
        """Conservative quantile: the upper bound of the bucket holding
        the q-th observation (``inf`` when it falls in overflow)."""
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        merged = self.counts()
        count = sum(merged)
        if count == 0:
            return 0.0
        rank = q * count
        seen = 0
        for bound, bucket in zip(self.bounds, merged):
            seen += bucket
            if seen >= rank:
                return bound
        return float("inf")


class WindowedTrend(_Ring):
    """Success ratio + least-squares latency slope over the window.

    Each slot keeps moment sums — ``(n, good, Σt, Σlat, Σt², Σt·lat)`` —
    so the merged window reproduces the exact least-squares slope a full
    row scan would compute, at O(slots) memory instead of O(probes).

    >>> wt = WindowedTrend(window_s=8.0, slots=8)
    >>> for t in range(4): wt.add(float(t), ok=True, latency=0.1 * t)
    >>> ratio, slope, samples = wt.read(now=3.0)
    >>> ratio, round(slope, 3), samples
    (1.0, 0.1, 4)
    """

    __slots__ = ()

    def add(self, now: float, ok: bool, latency: float) -> None:
        """Record one probe report at sim-time *now*."""
        payload = self._cell_for_time(now, None)
        if payload[1] is None:
            payload[1] = [0, 0, 0.0, 0.0, 0.0, 0.0]
        slot = payload[1]
        slot[0] += 1
        slot[1] += 1 if ok else 0
        slot[2] += now
        slot[3] += latency
        slot[4] += now * now
        slot[5] += now * latency

    def read(self, now: float) -> tuple[float, float, int]:
        """``(success_ratio, latency_slope, samples)`` as of *now*.

        Empty windows read as healthy (ratio 1.0, slope 0.0) — absence
        of evidence is not degradation.
        """
        self.advance_to(now)
        n = good = 0
        st = sl = stt = stl = 0.0
        for _, payload in self._ring:
            if payload is None:
                continue
            n += payload[0]
            good += payload[1]
            st += payload[2]
            sl += payload[3]
            stt += payload[4]
            stl += payload[5]
        if n == 0:
            return 1.0, 0.0, 0
        denominator = n * stt - st * st
        slope = (n * stl - st * sl) / denominator if abs(denominator) > 1e-12 else 0.0
        return good / n, slope, n
