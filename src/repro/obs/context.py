"""Trace context: the (trace_id, span_id) pair that crosses boundaries.

Distributed tracing works by shipping a tiny, serializable *context*
along with every payload that leaves the current component — a gateway
relay document, a failover forward, an X.400 envelope — so the far side
can open spans that *continue* the origin's trace instead of starting a
fresh one.  A :class:`TraceContext` is exactly that pair: the trace the
operation belongs to and the span the next hop should parent under.

The context is deliberately dumb: two strings and dict/JSON round-trip
helpers.  All behaviour (opening child spans, stack management) lives in
:class:`~repro.obs.tracing.Tracer`, which produces contexts via
``current_context()`` and consumes them via ``span_from_context()`` /
``start_span(context=...)``.

>>> ctx = TraceContext("trace-0001", "span-0004")
>>> TraceContext.from_document(ctx.to_document()) == ctx
True
>>> TraceContext.from_document(None) is None
True
"""

from __future__ import annotations

from typing import Any, NamedTuple

#: the payload key trace contexts travel under in relay/forward documents
TRACE_KEY = "trace"


class TraceContext(NamedTuple):
    """An extracted span identity, safe to serialize across a boundary.

    A ``NamedTuple`` rather than a frozen dataclass: contexts are built
    on every traced hop, and tuple construction skips the
    ``object.__setattr__`` toll frozen dataclasses pay per field.

    ``sampled`` carries the head-sampling decision made once at the
    trace's origin: every hop that continues the context inherits the
    verdict, so a sampled trace is recorded end-to-end and a dropped one
    is dropped everywhere (keeping :class:`~repro.obs.analyze.TraceAnalyzer`
    connectivity guarantees intact for whatever is retained).  The wire
    form only carries the flag when it is ``False`` — payloads from
    full-rate tracers stay byte-identical to the pre-sampling format.
    """

    trace_id: str
    span_id: str
    sampled: bool = True

    def to_document(self) -> dict[str, Any]:
        """The wire form carried inside relay payloads and envelopes."""
        if self.sampled:
            return {"trace_id": self.trace_id, "span_id": self.span_id}
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "sampled": False,
        }

    @staticmethod
    def from_document(document: dict[str, Any] | None) -> "TraceContext | None":
        """Rebuild a context from its wire form (``None`` passes through).

        Tolerant of payloads produced before tracing was enabled: a
        document missing either id yields ``None`` rather than a context
        that would fabricate correlation.  A document that never heard of
        sampling parses as sampled — the pre-sampling wire format keeps
        meaning "record me".
        """
        if not document:
            return None
        trace_id = document.get("trace_id", "")
        span_id = document.get("span_id", "")
        if not trace_id:
            return None
        return TraceContext(
            trace_id=trace_id,
            span_id=span_id,
            sampled=bool(document.get("sampled", True)),
        )
