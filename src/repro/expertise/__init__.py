"""The User Expertise Model (paper section 5).

Capabilities (individual skills) versus responsibilities (imposed by the
organisation), per-person profiles, and matching/staffing services.
"""

from repro.expertise.matching import (
    MatchScore,
    SkillRequirement,
    find_expert,
    rank_candidates,
    score_profile,
    staff_activity,
)
from repro.expertise.model import (
    MAX_LEVEL,
    MIN_LEVEL,
    Capability,
    ExpertiseProfile,
    ExpertiseRegistry,
    Responsibility,
)

__all__ = [
    "MatchScore",
    "SkillRequirement",
    "find_expert",
    "rank_candidates",
    "score_profile",
    "staff_activity",
    "MAX_LEVEL",
    "MIN_LEVEL",
    "Capability",
    "ExpertiseProfile",
    "ExpertiseRegistry",
    "Responsibility",
]
