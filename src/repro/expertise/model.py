"""User expertise profiles: responsibilities and capabilities.

Paper section 5, "The User Expertise Model": *"This models is expressed in
terms of user's responsibility, which is imposed by the organisation and
user's capabilities, which describes the users individual skills."*

A :class:`Capability` is an individual skill at a level; a
:class:`Responsibility` is organisation-imposed.  The
:class:`ExpertiseRegistry` holds one :class:`ExpertiseProfile` per person
and serves the matching queries in :mod:`repro.expertise.matching`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ConfigurationError, UnknownObjectError

#: capability levels, 1 (novice) .. 5 (authority)
MIN_LEVEL = 1
MAX_LEVEL = 5


@dataclass(frozen=True)
class Capability:
    """An individual skill at a proficiency level."""

    skill: str
    level: int

    def __post_init__(self) -> None:
        if not self.skill:
            raise ConfigurationError("capability needs a skill name")
        if not MIN_LEVEL <= self.level <= MAX_LEVEL:
            raise ConfigurationError(
                f"level must be in [{MIN_LEVEL}, {MAX_LEVEL}], got {self.level}"
            )


@dataclass(frozen=True)
class Responsibility:
    """An organisation-imposed duty."""

    task: str
    imposed_by: str
    scope: str = ""

    def __post_init__(self) -> None:
        if not self.task or not self.imposed_by:
            raise ConfigurationError("responsibility needs a task and an imposer")


class ExpertiseProfile:
    """One person's capabilities and responsibilities."""

    def __init__(self, person_id: str) -> None:
        if not person_id:
            raise ConfigurationError("profile needs a person id")
        self.person_id = person_id
        self._capabilities: dict[str, Capability] = {}
        self._responsibilities: list[Responsibility] = []

    # -- capabilities --------------------------------------------------------
    def add_capability(self, skill: str, level: int) -> Capability:
        """Add or raise a capability (levels never silently decrease)."""
        capability = Capability(skill, level)
        existing = self._capabilities.get(skill)
        if existing is None or existing.level < level:
            self._capabilities[skill] = capability
        return self._capabilities[skill]

    def set_capability(self, skill: str, level: int) -> Capability:
        """Set a capability level exactly (allows decreases)."""
        capability = Capability(skill, level)
        self._capabilities[skill] = capability
        return capability

    def capability(self, skill: str) -> Capability | None:
        """The capability for *skill*, or None."""
        return self._capabilities.get(skill)

    def level_of(self, skill: str) -> int:
        """Proficiency level for *skill* (0 when absent)."""
        capability = self._capabilities.get(skill)
        return capability.level if capability is not None else 0

    def capabilities(self) -> list[Capability]:
        """All capabilities, sorted by skill."""
        return [self._capabilities[s] for s in sorted(self._capabilities)]

    # -- responsibilities ---------------------------------------------------------
    def impose(self, task: str, imposed_by: str, scope: str = "") -> Responsibility:
        """Record an organisation-imposed responsibility."""
        responsibility = Responsibility(task, imposed_by, scope)
        self._responsibilities.append(responsibility)
        return responsibility

    def discharge(self, task: str, scope: str = "") -> bool:
        """Remove a responsibility; True when it existed."""
        for responsibility in self._responsibilities:
            if responsibility.task == task and responsibility.scope == scope:
                self._responsibilities.remove(responsibility)
                return True
        return False

    def responsibilities(self) -> list[Responsibility]:
        """All current responsibilities."""
        return list(self._responsibilities)

    def is_responsible_for(self, task: str) -> bool:
        """True when any responsibility matches *task*."""
        return any(r.task == task for r in self._responsibilities)

    def workload(self) -> int:
        """Number of open responsibilities (a crude load measure)."""
        return len(self._responsibilities)


class ExpertiseRegistry:
    """Profiles for everyone in the environment."""

    def __init__(self) -> None:
        self._profiles: dict[str, ExpertiseProfile] = {}

    def profile(self, person_id: str) -> ExpertiseProfile:
        """Get (creating on first use) a person's profile."""
        existing = self._profiles.get(person_id)
        if existing is None:
            existing = ExpertiseProfile(person_id)
            self._profiles[person_id] = existing
        return existing

    def known(self, person_id: str) -> bool:
        """True when a profile exists."""
        return person_id in self._profiles

    def get(self, person_id: str) -> ExpertiseProfile:
        """Get an existing profile (raises when unknown)."""
        try:
            return self._profiles[person_id]
        except KeyError:
            raise UnknownObjectError(f"no expertise profile for {person_id!r}") from None

    def all(self) -> list[ExpertiseProfile]:
        """All profiles."""
        return list(self._profiles.values())

    def with_skill(self, skill: str, min_level: int = MIN_LEVEL) -> list[ExpertiseProfile]:
        """Profiles having *skill* at or above *min_level*."""
        return [
            p for p in self._profiles.values() if p.level_of(skill) >= min_level
        ]
