"""Capability matching: finding the right people for cooperative work.

The expertise model exists "for use by the environment and other systems"
(paper section 5) — concretely: rank candidates for a task, and staff a
whole activity by assigning people to requirements while balancing load.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.expertise.model import ExpertiseProfile, ExpertiseRegistry
from repro.util.errors import ConfigurationError, ModelError


@dataclass(frozen=True)
class SkillRequirement:
    """One skill a task needs, at a minimum level."""

    skill: str
    min_level: int = 1
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigurationError("weight must be positive")


@dataclass(frozen=True)
class MatchScore:
    """How well a person fits a requirement set."""

    person_id: str
    score: float
    met: int
    unmet: int

    @property
    def qualified(self) -> bool:
        """True when every requirement is met."""
        return self.unmet == 0


def score_profile(profile: ExpertiseProfile, requirements: list[SkillRequirement]) -> MatchScore:
    """Score one profile against the requirements.

    Each met requirement contributes ``weight * level / min_level`` (being
    above the bar earns proportional credit); unmet requirements
    contribute nothing and are counted.
    """
    if not requirements:
        raise ConfigurationError("at least one requirement is needed")
    score = 0.0
    met = 0
    unmet = 0
    for requirement in requirements:
        level = profile.level_of(requirement.skill)
        if level >= requirement.min_level:
            met += 1
            score += requirement.weight * level / requirement.min_level
        else:
            unmet += 1
    return MatchScore(profile.person_id, score, met, unmet)


def rank_candidates(
    registry: ExpertiseRegistry,
    requirements: list[SkillRequirement],
    qualified_only: bool = False,
) -> list[MatchScore]:
    """Rank all known people against the requirements, best first.

    Ties break by lighter current workload, then by person id.
    """
    scores = [score_profile(profile, requirements) for profile in registry.all()]
    if qualified_only:
        scores = [s for s in scores if s.qualified]
    scores.sort(
        key=lambda s: (-s.score, registry.get(s.person_id).workload(), s.person_id)
    )
    return scores


def find_expert(
    registry: ExpertiseRegistry, skill: str, min_level: int = 1
) -> ExpertiseProfile:
    """The single best person for one skill.

    Raises :class:`ModelError` when nobody qualifies.
    """
    candidates = registry.with_skill(skill, min_level)
    if not candidates:
        raise ModelError(f"nobody has {skill!r} at level >= {min_level}")
    candidates.sort(key=lambda p: (-p.level_of(skill), p.workload(), p.person_id))
    return candidates[0]


def staff_activity(
    registry: ExpertiseRegistry,
    requirements: list[SkillRequirement],
    max_per_person: int = 2,
) -> dict[str, str]:
    """Assign a person to every requirement (skill -> person id).

    Greedy by requirement difficulty (hardest first), balancing load by
    never giving one person more than *max_per_person* assignments when an
    alternative exists.  Raises :class:`ModelError` when a requirement
    cannot be staffed at all.
    """
    assignments: dict[str, str] = {}
    load: dict[str, int] = {}
    ordered = sorted(requirements, key=lambda r: (-r.min_level, r.skill))
    for requirement in ordered:
        candidates = registry.with_skill(requirement.skill, requirement.min_level)
        if not candidates:
            raise ModelError(
                f"cannot staff {requirement.skill!r} at level >= {requirement.min_level}"
            )
        candidates.sort(
            key=lambda p: (
                load.get(p.person_id, 0),
                -p.level_of(requirement.skill),
                p.person_id,
            )
        )
        preferred = [
            c for c in candidates if load.get(c.person_id, 0) < max_per_person
        ]
        chosen = (preferred or candidates)[0]
        assignments[requirement.skill] = chosen.person_id
        load[chosen.person_id] = load.get(chosen.person_id, 0) + 1
    return assignments
