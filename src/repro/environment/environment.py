"""The CSCW environment facade — the paper's central artifact (Figure 3).

*"A central aim of such environment is to provide interoperability
between a variety of applications ensuring that CSCW applications can
work in harmony rather than in isolation of each other."* (section 3)

One :class:`CSCWEnvironment` aggregates the common services:

* the **organisational knowledge base** (people, orgs, policies, rules),
* the **activity services** (registry, dependencies, scheduler,
  negotiation, resource coordination),
* the **information services** (information base, interchange),
* the **communication services** (communicators, log),
* the **expertise registry**,
* the **ODP trader** (with the org KB's trading policy installed —
  section 6.1) and an **event bus**,
* the **tailoring service** and the **view registry**.

Applications integrate once (:meth:`register_application`) and then
exchange documents through :meth:`exchange`, which applies the four CSCW
transparencies per the caller's :class:`TransparencyProfile`.  Heavy
traffic goes through :meth:`exchange_many`, the batched fast path: org
membership, policy verdicts and app format pairs are memoised in a
:class:`~repro.environment.resolution.ResolutionCache` (invalidated by
knowledge-base and registry mutations) and tracing/metrics are amortised
to one span and one flush per batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.activity.model import Activity
from repro.communication.model import (
    CommunicationContext,
    Communicator,
    Exchange,
)
from repro.environment.registry import AppDescriptor, DeliveryCallback
from repro.environment.transparency import CSCW_DIMENSIONS, TransparencyProfile
from repro.obs.events import KIND_DEADLINE, KIND_SHED
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.org.policy import INTERACTION_MESSAGE
from repro.sim.world import World
from repro.util.errors import (
    ConfigurationError,
    FidelityError,
    InteropError,
    UnknownObjectError,
)
from repro.util.serialization import document_size

if TYPE_CHECKING:
    from repro.environment.builder import EnvironmentBuilder

#: structured reason codes an ExchangeOutcome can carry
REASON_DELIVERED = "delivered"
REASON_MEMBERSHIP = "membership"
REASON_ORGANISATION_OPAQUE = "organisation-opaque"
REASON_POLICY = "policy"
REASON_VIEW_OPAQUE = "view-opaque"
REASON_TRANSLATION = "translation"
REASON_FIDELITY = "fidelity"
REASON_TIME_OPAQUE = "time-opaque"
REASON_UNKNOWN_RECEIVER = "unknown-receiver"
REASON_DEADLINE_EXCEEDED = "deadline-exceeded"
REASON_OVERLOAD = "overload"

#: shared default profile — exchange() is hot, avoid rebuilding it per call
_ALL_ON = TransparencyProfile.all_on()


@dataclass(frozen=True, slots=True)
class ExchangeOutcome:
    """What happened to one cross-application exchange.

    ``reason`` (human text) and ``reason_code`` (one of the ``REASON_*``
    constants) are populated uniformly for delivered and failed
    exchanges; ``trace_id`` carries the trace the exchange ran under
    when the environment has a tracer attached ('' otherwise).
    """

    delivered: bool
    mode: str  # "synchronous" | "asynchronous" | "failed"
    reason: str = ""
    translated: bool = False
    fidelity: float = 1.0
    #: dimensions the environment handled on the caller's behalf
    handled: tuple[str, ...] = ()
    #: structured outcome classification (REASON_* constant)
    reason_code: str = ""
    #: trace id of the exchange span ('' when tracing is off)
    trace_id: str = ""
    #: canonical JSON size of the delivered payload (0 on failure)
    size_bytes: int = 0


@dataclass(frozen=True, slots=True)
class ExchangeRequest:
    """The single currency of the exchange call surface.

    Every exchange entry point — :meth:`CSCWEnvironment.exchange`,
    :meth:`CSCWEnvironment.exchange_many`, the remote
    :class:`~repro.environment.server.EnvironmentClient` and
    :meth:`~repro.federation.federation.Federation.federated_exchange` —
    accepts one of these (the legacy keyword form is a thin shim over
    :meth:`from_kwargs`, so the two call styles cannot drift apart).

    Beyond the routing fields, a request carries the annotations the
    adaptive control plane acts on: ``priority`` (positive priorities
    bypass queue-depth load shedding), ``shed_class`` (a free-form label
    recorded with shed events so operators can see *what* was dropped)
    and the absolute simulated-time ``deadline``.
    """

    sender: str
    receiver: str
    sender_app: str
    receiver_app: str
    document: dict[str, Any]
    activity_id: str = ""
    profile: TransparencyProfile | None = None
    interaction: str = INTERACTION_MESSAGE
    #: absolute simulated-time delivery deadline (None = no deadline)
    deadline: float | None = None
    #: requests with priority > 0 are exempt from load shedding
    priority: int = 0
    #: free-form shed classification, recorded with shed events
    shed_class: str = ""
    #: minimum acceptable translation fidelity in [0, 1]; a lossier plan
    #: is rejected with ``REASON_FIDELITY`` instead of delivered (0.0,
    #: the default, accepts any plan — the pre-mediation behaviour)
    min_fidelity: float = 0.0

    @classmethod
    def from_kwargs(
        cls,
        sender: str,
        receiver: str,
        sender_app: str,
        receiver_app: str,
        document: dict[str, Any],
        activity_id: str = "",
        profile: TransparencyProfile | None = None,
        interaction: str = INTERACTION_MESSAGE,
        deadline: float | None = None,
        priority: int = 0,
        shed_class: str = "",
        min_fidelity: float = 0.0,
    ) -> "ExchangeRequest":
        """Build a request from the legacy positional/keyword arguments.

        This is the one place the keyword call shape is defined; the
        ``exchange`` shims of the environment, the environment server
        client and the federation all route through it.
        """
        return cls(
            sender=sender,
            receiver=receiver,
            sender_app=sender_app,
            receiver_app=receiver_app,
            document=document,
            activity_id=activity_id,
            profile=profile,
            interaction=interaction,
            deadline=deadline,
            priority=priority,
            shed_class=shed_class,
            min_fidelity=min_fidelity,
        )

    def to_document(self) -> dict[str, Any]:
        """The wire form of the request (profile flattened to a dict).

        Used by the environment server channel and the federation's
        gateway relays; :meth:`from_document` is the inverse.
        """
        return {
            "sender": self.sender,
            "receiver": self.receiver,
            "sender_app": self.sender_app,
            "receiver_app": self.receiver_app,
            "document": self.document,
            "activity_id": self.activity_id,
            "profile": None if self.profile is None else {
                dim: getattr(self.profile, dim) for dim in CSCW_DIMENSIONS
            },
            "interaction": self.interaction,
            "deadline": self.deadline,
            "priority": self.priority,
            "shed_class": self.shed_class,
            "min_fidelity": self.min_fidelity,
        }

    @classmethod
    def from_document(cls, document: dict[str, Any]) -> "ExchangeRequest":
        """Rebuild a request from its wire form (tolerant of old senders
        that omit the newer annotation fields)."""
        profile_fields = document.get("profile")
        return cls(
            sender=document["sender"],
            receiver=document["receiver"],
            sender_app=document["sender_app"],
            receiver_app=document["receiver_app"],
            document=document["document"],
            activity_id=document.get("activity_id", ""),
            profile=None if profile_fields is None else TransparencyProfile(
                **{dim: bool(profile_fields.get(dim, True)) for dim in CSCW_DIMENSIONS}
            ),
            interaction=document.get("interaction", INTERACTION_MESSAGE),
            deadline=document.get("deadline"),
            priority=document.get("priority", 0),
            shed_class=document.get("shed_class", ""),
            min_fidelity=document.get("min_fidelity", 0.0),
        )


class CSCWEnvironment:
    """The shared environment mediating all open CSCW applications.

    The recommended construction path is :meth:`builder`, which can
    inject observability (``with_metrics``/``with_tracer``) and extra
    trading policy at construction time; the plain constructor remains
    supported and routes through the same builder wiring.
    """

    def __init__(
        self,
        world: World,
        name: str = "mocca",
        *,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        """Build an environment on *world*; keyword-only *metrics* and
        *tracer* opt into observability (equivalent to the builder's
        ``with_metrics``/``with_tracer``)."""
        from repro.environment.builder import EnvironmentBuilder

        spec = EnvironmentBuilder(type(self)).with_world(world).with_name(name)
        if metrics is not None:
            spec = spec.with_metrics(metrics)
        if tracer is not None:
            spec = spec.with_tracer(tracer)
        spec._wire(self)

    @classmethod
    def builder(cls) -> "EnvironmentBuilder":
        """A fluent :class:`~repro.environment.builder.EnvironmentBuilder`
        producing instances of this class."""
        from repro.environment.builder import EnvironmentBuilder

        return EnvironmentBuilder(cls)

    def _bind_labelled_metrics(self) -> None:
        """Resolve the environment's labelled metric children once.

        The flat ``env.exchange.*`` names stay authoritative (dashboards
        and tests key on them); the labelled families add the ``domain``
        dimension that lets federated runs sharing one registry tell
        their environments apart.  Binding against
        :data:`~repro.obs.metrics.NULL_METRICS` yields null children, so
        the hot-path ``inc`` calls stay no-ops when metrics are off.
        """
        obs = self.metrics
        outcomes = obs.counter("env.exchange.outcomes", labels=("domain", "outcome"))
        self._m_delivered = outcomes.labels(domain=self.name, outcome="delivered")
        self._m_failed = outcomes.labels(domain=self.name, outcome="failed")
        self._m_reasons = obs.counter("env.exchange.reasons", labels=("domain", "reason"))
        self._m_reason_delivered = self._m_reasons.labels(
            domain=self.name, reason=REASON_DELIVERED
        )

    # -- people ----------------------------------------------------------------
    def register_person(self, communicator: Communicator) -> None:
        """Register a person's communication endpoint with the environment."""
        self.communicators.register(communicator)

    def person_leaves(self, person_id: str) -> None:
        """Mark a person absent; asynchronous exchanges to them queue."""
        self.communicators.set_presence(person_id, False)

    def person_arrives(self, person_id: str) -> int:
        """Mark a person present and flush their queued deliveries.

        Returns the number of deliveries flushed — the store-and-forward
        half of time transparency: work done while you were away is
        waiting when you return.  Deliveries whose deadline passed while
        the person was absent are dropped instead of flushed (counted as
        ``env.shed.expired``): a deadline-carrying exchange promised its
        sender delivery-by, not delivery-eventually.
        """
        self.communicators.set_presence(person_id, True)
        pending = self._pending_deliveries.pop(person_id, [])
        now = self.world.now
        flushed = 0
        expired = 0
        for app_name, document, info, expires_at in pending:
            if expires_at is not None and now >= expires_at:
                expired += 1
                continue
            self.applications.deliver(app_name, person_id, document, info)
            flushed += 1
        if expired:
            if self.metrics.enabled:
                self.metrics.inc("env.shed.expired", expired)
            if self.events.enabled:
                self.events.record(
                    now,
                    KIND_DEADLINE,
                    env=self.name,
                    receiver=person_id,
                    dropped=expired,
                    at="flush",
                )
        return flushed

    def pending_for(self, person_id: str) -> int:
        """Number of deliveries queued for an absent person."""
        return len(self._pending_deliveries.get(person_id, []))

    def deregister_person(self, person_id: str) -> int:
        """Remove a person's endpoint from this environment.

        Queued store-and-forward deliveries for them are discarded (a
        federation moving someone to another domain re-registers them
        there; anything still parked here would never flush).  Returns
        the number of discarded deliveries.
        """
        self.communicators.remove(person_id)
        return len(self._pending_deliveries.pop(person_id, []))

    # -- applications ------------------------------------------------------------
    def register_application(
        self,
        descriptor: AppDescriptor,
        on_deliver: DeliveryCallback,
        exporter_org: str = "",
    ) -> None:
        """One-step integration of an application (cost O(1) per app)."""
        self.applications.register(descriptor, on_deliver, exporter_org=exporter_org)
        self.bus.publish(
            f"environment/applications/{descriptor.name}",
            {"event": "registered", "quadrants": descriptor.quadrants},
            source=self.name,
            time=self.world.now,
        )

    # -- activities --------------------------------------------------------------
    def create_activity(
        self,
        activity_id: str,
        name: str,
        members: dict[str, str] | None = None,
        **kwargs: Any,
    ) -> Activity:
        """Create and register an activity, joining the given members."""
        activity = self.activities.create(Activity(activity_id, name, **kwargs))
        for person_id, role in (members or {}).items():
            activity.join(person_id, role)
        return activity

    # -- the exchange primitive -----------------------------------------------------
    def exchange(self, request=None, /, *args: Any, **kwargs: Any) -> ExchangeOutcome:
        """Deliver one :class:`ExchangeRequest` (or legacy keyword form).

        The canonical call passes a single request object::

            env.exchange(ExchangeRequest(sender, receiver, ..., document))

        The legacy positional/keyword form (``exchange(sender, receiver,
        sender_app, receiver_app, document, ...)``) remains supported as
        a thin shim over :meth:`ExchangeRequest.from_kwargs` and produces
        identical outcomes.

        The environment applies each enabled transparency; a disabled
        transparency whose dimension the exchange actually crosses makes
        the exchange fail — quantifying exactly what each transparency
        buys (experiment E4).

        ``request.deadline`` is an absolute simulated time: an exchange
        arriving past it fails with :data:`REASON_DEADLINE_EXCEEDED`, and
        a store-and-forward delivery still queued at the deadline is
        dropped instead of flushed (the builder's ``with_default_deadline``
        supplies a relative default).  When a shed limit is set
        (``with_shed_limit`` or the runtime :meth:`set_shed_limit`),
        asynchronous deliveries beyond that per-receiver queue depth are
        shed with :data:`REASON_OVERLOAD` — unless the request carries a
        positive ``priority``, which bypasses shedding.

        When a tracer is attached, the whole exchange runs inside an
        ``env.exchange`` span whose trace id the returned outcome
        carries; when a metrics registry is attached, outcomes are
        counted by reason code and transparency dimension.
        """
        if not isinstance(request, ExchangeRequest):
            positional = () if request is None else (request,)
            request = ExchangeRequest.from_kwargs(*positional, *args, **kwargs)
        with self.tracer.span("env.exchange") as span:
            outcome = self._exchange(request, span.trace_id)
            span.tag(
                delivered=outcome.delivered,
                mode=outcome.mode,
                reason_code=outcome.reason_code,
            )
            # Identity enrichment only for spans somebody will read:
            # head-sampled ones, and failures (which tail retention
            # promotes).  A sampled-out healthy span is dropped at
            # settlement, so tagging it would be pure overhead — this
            # is most of sampling's win on the hot path.
            if span.sampled or (self.tracer.enabled and not outcome.delivered):
                span.tag(
                    domain=self.name,
                    sender=request.sender,
                    receiver=request.receiver,
                    sender_app=request.sender_app,
                    receiver_app=request.receiver_app,
                )
                if self._shard_of is not None:
                    try:
                        shard = self._shard_of(request.receiver)
                    except UnknownObjectError:
                        shard = ""
                    if shard:
                        span.tag(shard=shard)
            return outcome

    def _translate_payload(
        self,
        source_format: str,
        target_format: str,
        payload: "dict[str, Any]",
        min_fidelity: float,
    ):
        """Translate via the static hub, falling back to the mediator.

        The :class:`InterchangeService` serves the classic
        both-formats-registered case; the mediator (when wired via
        ``with_mediation()``) takes over when the hub cannot — a format
        it has never seen, or a hub plan too lossy for the caller's
        ``min_fidelity`` floor (the mediator may know a direct or
        partial route with better fidelity).  Raises
        :class:`~repro.util.errors.InteropError` when no route exists
        and :class:`~repro.util.errors.FidelityError` when routes exist
        but none meets the floor.
        """
        interchange = self.interchange
        mediator = self.mediator
        if mediator is None:
            result = interchange.translate(source_format, target_format, payload)
            if result.fidelity < min_fidelity:
                raise FidelityError(
                    f"hub plan {source_format!r} -> {target_format!r} keeps "
                    f"fidelity {result.fidelity:.3f}, below the requested "
                    f"floor {min_fidelity:.3f}",
                    best_fidelity=result.fidelity,
                    min_fidelity=min_fidelity,
                )
            return result
        if interchange.is_registered(source_format) and interchange.is_registered(
            target_format
        ):
            result = interchange.translate(source_format, target_format, payload)
            if result.fidelity >= min_fidelity:
                return result
            try:
                return mediator.translate(
                    source_format, target_format, payload, min_fidelity=min_fidelity
                )
            except FidelityError:
                raise
            except InteropError:
                # no mediated route either — report the hub's best offer
                raise FidelityError(
                    f"hub plan {source_format!r} -> {target_format!r} keeps "
                    f"fidelity {result.fidelity:.3f}, below the requested "
                    f"floor {min_fidelity:.3f}, and no mediated plan improves "
                    "on it",
                    best_fidelity=result.fidelity,
                    min_fidelity=min_fidelity,
                ) from None
        return mediator.translate(
            source_format, target_format, payload, min_fidelity=min_fidelity
        )

    def _exchange(
        self,
        request: ExchangeRequest,
        trace_id: str,
        obs: MetricsRegistry | None = None,
    ) -> ExchangeOutcome:
        sender = request.sender
        receiver = request.receiver
        sender_app = request.sender_app
        receiver_app = request.receiver_app
        activity_id = request.activity_id
        interaction = request.interaction
        self.exchanges_attempted += 1
        if obs is None:
            obs = self.metrics
        if obs.enabled:
            obs.inc("env.exchange.attempted")
        active = request.profile if request.profile is not None else _ALL_ON
        handled: list[str] = []

        # Deadline check runs first: an exchange that arrives expired
        # (e.g. after gateway hops) must not consume pipeline work.
        expires_at = self.effective_deadline(request.deadline)
        if expires_at is not None and self.world.now >= expires_at:
            if obs.enabled:
                obs.inc("env.shed.expired")
            if self.events.enabled:
                self.events.record(
                    self.world.now,
                    KIND_DEADLINE,
                    trace_id=trace_id,
                    env=self.name,
                    receiver=receiver,
                    deadline=expires_at,
                )
            return self._fail(
                REASON_DEADLINE_EXCEEDED,
                f"exchange deadline {expires_at:.3f} passed at {self.world.now:.3f}",
                trace_id,
                obs,
            )

        # Membership check: activity-scoped exchanges require membership.
        if activity_id:
            activity = self.activities.get(activity_id)
            for person in (sender, receiver):
                if not activity.is_member(person):
                    return self._fail(
                        REASON_MEMBERSHIP,
                        f"{person} is not a member of {activity_id}",
                        trace_id,
                        obs,
                    )

        # 1. Organisation dimension (memoised per sender/receiver/interaction).
        verdict = self.resolution.route(sender, receiver, interaction)
        sender_org = verdict.sender_org
        receiver_org = verdict.receiver_org
        if verdict.cross_org:
            if not active.organisation:
                return self._fail(
                    REASON_ORGANISATION_OPAQUE,
                    f"cross-organisation exchange ({sender_org} -> {receiver_org}) "
                    "with organisation transparency off",
                    trace_id,
                    obs,
                )
            if not verdict.policy_ok:
                return self._fail(
                    REASON_POLICY,
                    f"no compatible policy between {sender_org} and {receiver_org} "
                    f"for {interaction}",
                    trace_id,
                    obs,
                )
            handled.append("organisation")

        # 2. View (format) dimension (memoised per app pair).
        translated = False
        fidelity = 1.0
        payload = dict(request.document)
        sender_format, receiver_format = self.resolution.formats(sender_app, receiver_app)
        if sender_format != receiver_format:
            if not active.view:
                return self._fail(
                    REASON_VIEW_OPAQUE,
                    f"format mismatch ({sender_format} -> {receiver_format}) "
                    "with view transparency off",
                    trace_id,
                    obs,
                )
            try:
                result = self._translate_payload(
                    sender_format, receiver_format, payload, request.min_fidelity
                )
            except FidelityError as exc:
                return self._fail(REASON_FIDELITY, str(exc), trace_id, obs)
            except InteropError as exc:
                return self._fail(REASON_TRANSLATION, str(exc), trace_id, obs)
            payload = result.document
            fidelity = result.fidelity
            translated = True
            handled.append("view")

        # 3. Time dimension.  A receiver who was *never* registered is a
        # hard failure, not an absence: queueing for them would blackhole
        # the document in _pending_deliveries forever.
        try:
            receiver_present = self.communicators.get(receiver).present
        except UnknownObjectError:
            return self._fail(
                REASON_UNKNOWN_RECEIVER,
                f"receiver {receiver!r} has no registered communicator",
                trace_id,
                obs,
            )
        if receiver_present:
            mode = "synchronous"
        else:
            if not active.time:
                return self._fail(
                    REASON_TIME_OPAQUE,
                    f"receiver {receiver} absent with time transparency off",
                    trace_id,
                    obs,
                )
            if (
                request.priority <= 0
                and self._shed_limit is not None
                and len(self._pending_deliveries.get(receiver, ())) >= self._shed_limit
            ):
                if obs.enabled:
                    obs.inc("env.shed.overload")
                if self.events.enabled:
                    self.events.record(
                        self.world.now,
                        KIND_SHED,
                        trace_id=trace_id,
                        env=self.name,
                        receiver=receiver,
                        queued=self._shed_limit,
                        shed_class=request.shed_class,
                    )
                return self._fail(
                    REASON_OVERLOAD,
                    f"receiver {receiver} has {self._shed_limit} deliveries "
                    "queued; shedding to protect the environment",
                    trace_id,
                    obs,
                )
            mode = "asynchronous"
            handled.append("time")

        # 4. Activity dimension: scoped vs global event publication.
        info = {
            "sender": sender,
            "sender_app": sender_app,
            "mode": mode,
            "fidelity": fidelity,
            "activity": activity_id,
        }
        if active.activity and activity_id:
            topic = f"activity/{activity_id}/exchange"
            handled.append("activity")
        else:
            topic = "exchange"
        self.bus.publish(topic, info, source=sender_app, time=self.world.now)

        # Deliver into the receiving application — immediately when the
        # receiver is present, queued for their return otherwise (true
        # store-and-forward semantics).
        rendered = self.views.render(receiver, payload)
        if mode == "synchronous":
            self.applications.deliver(receiver_app, receiver, rendered, info)
        else:
            self._pending_deliveries.setdefault(receiver, []).append(
                (receiver_app, rendered, info, expires_at)
            )
        size_bytes = document_size(payload)
        self.communication_log.record(
            Exchange(
                sender=sender,
                receiver=receiver,
                mode=mode,
                media="document",
                size_bytes=size_bytes,
                time=self.world.now,
                context=CommunicationContext(
                    activity=activity_id, from_org=sender_org, to_org=receiver_org
                ),
            )
        )
        self.world.metrics.increment("env.exchange.delivered")
        self.world.metrics.increment(f"env.exchange.{mode}")
        if obs.enabled:
            obs.inc("env.exchange.outcome.delivered")
            obs.inc(f"env.exchange.reason.{REASON_DELIVERED}")
            self._m_delivered.inc()
            self._m_reason_delivered.inc()
            for dimension in handled:
                obs.inc(f"env.exchange.transparency.{dimension}")
            obs.observe("env.exchange.document_bytes", size_bytes)
        return ExchangeOutcome(
            delivered=True,
            mode=mode,
            reason=f"delivered ({mode})",
            translated=translated,
            fidelity=fidelity,
            handled=tuple(handled),
            reason_code=REASON_DELIVERED,
            trace_id=trace_id,
            size_bytes=size_bytes,
        )

    def exchange_many(self, requests: "list[ExchangeRequest]") -> list[ExchangeOutcome]:
        """Deliver a batch of exchanges, amortising per-call overheads.

        Semantically equivalent to calling :meth:`exchange` once per
        request — every outcome field except ``trace_id`` is identical —
        but the batch shares one ``env.exchange_many`` trace span and a
        single aggregated metrics flush, and runs of consecutive requests
        with the same route (sender, receiver, apps, activity, profile,
        interaction) resolve org membership, policy, formats and the
        receiver endpoint **once per run** instead of once per document.
        Within a run, requests carrying the *same document object* share
        one translation and one size computation (converters are
        shape-deterministic, see :class:`~repro.information.interchange`).

        Hoisting never serves stale state: the run watches the
        resolution cache's ``generation`` token, so a delivery callback
        that mutates the knowledge base mid-batch (a revoked policy, a
        moved person) forces the remaining items of the current run to
        re-resolve — they fail or deliver exactly as per-item
        :meth:`exchange` calls would (presence changes are likewise seen
        item-by-item).
        """
        with self.tracer.span(
            "env.exchange_many", domain=self.name, batch=len(requests)
        ) as span:
            trace_id = span.trace_id
            outcomes: list[ExchangeOutcome] = []
            count = len(requests)
            start = 0
            while start < count:
                head = requests[start]
                stop = start + 1
                while stop < count:
                    nxt = requests[stop]
                    if (
                        nxt.sender != head.sender
                        or nxt.receiver != head.receiver
                        or nxt.sender_app != head.sender_app
                        or nxt.receiver_app != head.receiver_app
                        or nxt.activity_id != head.activity_id
                        or nxt.interaction != head.interaction
                        or nxt.profile != head.profile
                        or nxt.deadline != head.deadline
                        or nxt.priority != head.priority
                        or nxt.shed_class != head.shed_class
                        or nxt.min_fidelity != head.min_fidelity
                    ):
                        break
                    stop += 1
                self._exchange_group(requests[start:stop], trace_id, outcomes)
                start = stop
            obs = self.metrics
            if obs.enabled and outcomes:
                self._flush_batch_metrics(obs, outcomes)
            delivered = sum(1 for outcome in outcomes if outcome.delivered)
            span.tag(delivered=delivered, failed=len(outcomes) - delivered)
            return outcomes

    def _exchange_group(
        self,
        group: "list[ExchangeRequest]",
        trace_id: str,
        outcomes: list[ExchangeOutcome],
    ) -> None:
        """Run one same-route run of a batch, resolving shared state once.

        Mirrors :meth:`_exchange` check-for-check (same order, same
        reason strings) with the route-constant work hoisted out of the
        per-document loop.  Appends one outcome per request to
        *outcomes*; per-item metrics stay suppressed (the caller flushes
        the aggregate).
        """
        head = group[0]
        size = len(group)
        sender = head.sender
        receiver = head.receiver
        sender_app = head.sender_app
        receiver_app = head.receiver_app
        activity_id = head.activity_id
        self.exchanges_attempted += size
        active = head.profile if head.profile is not None else _ALL_ON
        world_metrics = self.world.metrics

        def fail_all(code: str, reason: str) -> None:
            self.exchanges_failed += size
            world_metrics.increment("env.exchange.failed", size)
            outcomes.extend(
                [
                    ExchangeOutcome(
                        delivered=False,
                        mode="failed",
                        reason=reason,
                        reason_code=code,
                        trace_id=trace_id,
                    )
                ]
                * size
            )

        handled: list[str] = []
        # Deadline first, as in _exchange (the run shares one deadline).
        expires_at = self.effective_deadline(head.deadline)
        if expires_at is not None and self.world.now >= expires_at:
            obs = self.metrics
            if obs.enabled:
                obs.inc("env.shed.expired", size)
            if self.events.enabled:
                self.events.record(
                    self.world.now,
                    KIND_DEADLINE,
                    trace_id=trace_id,
                    env=self.name,
                    receiver=receiver,
                    deadline=expires_at,
                    batch=size,
                )
            return fail_all(
                REASON_DEADLINE_EXCEEDED,
                f"exchange deadline {expires_at:.3f} passed at {self.world.now:.3f}",
            )
        if activity_id:
            activity = self.activities.get(activity_id)
            for person in (sender, receiver):
                if not activity.is_member(person):
                    return fail_all(
                        REASON_MEMBERSHIP,
                        f"{person} is not a member of {activity_id}",
                    )

        verdict = self.resolution.route(sender, receiver, head.interaction)
        if verdict.cross_org:
            if not active.organisation:
                return fail_all(
                    REASON_ORGANISATION_OPAQUE,
                    f"cross-organisation exchange ({verdict.sender_org} -> "
                    f"{verdict.receiver_org}) with organisation transparency off",
                )
            if not verdict.policy_ok:
                return fail_all(
                    REASON_POLICY,
                    f"no compatible policy between {verdict.sender_org} and "
                    f"{verdict.receiver_org} for {head.interaction}",
                )
            handled.append("organisation")

        sender_format, receiver_format = self.resolution.formats(sender_app, receiver_app)
        needs_translation = sender_format != receiver_format
        if needs_translation:
            if not active.view:
                return fail_all(
                    REASON_VIEW_OPAQUE,
                    f"format mismatch ({sender_format} -> {receiver_format}) "
                    "with view transparency off",
                )
            handled.append("view")

        try:
            endpoint = self.communicators.get(receiver)
        except UnknownObjectError:
            return fail_all(
                REASON_UNKNOWN_RECEIVER,
                f"receiver {receiver!r} has no registered communicator",
            )

        if active.activity and activity_id:
            topic = f"activity/{activity_id}/exchange"
            handled.append("activity")
        else:
            topic = "exchange"
        handled_tuple = tuple(handled)
        # the time dimension slots in before the (group-constant)
        # activity dimension, matching _exchange's append order
        time_index = len(handled_tuple) - (1 if handled_tuple[-1:] == ("activity",) else 0)
        handled_async = handled_tuple[:time_index] + ("time",) + handled_tuple[time_index:]

        translate = self._translate_payload
        render = self.views.render
        deliver = self.applications.deliver
        pending = self._pending_deliveries
        publish = self.bus.publish
        record = self.communication_log.record
        now = self.world.now
        context = CommunicationContext(
            activity=activity_id,
            from_org=verdict.sender_org,
            to_org=verdict.receiver_org,
        )
        #: id(document) -> (payload, fidelity, size_bytes); repeated
        #: documents in a run translate and size once
        prepared: dict[int, tuple[dict[str, Any], float, int]] = {}
        #: (id(document), mode) -> the (frozen, shareable) outcome
        made: dict[tuple[int, str], ExchangeOutcome] = {}
        failed = 0
        shed = 0
        sync_count = 0
        async_count = 0
        resolution = self.resolution
        generation = resolution.generation
        #: set when a mid-run KB mutation turned the route bad: every
        #: remaining item fails with this (code, reason) until the next
        #: mutation (if any) re-resolves the route as good again
        stale_failure: "tuple[str, str] | None" = None
        for request in group:
            if resolution.generation != generation:
                # A delivery callback mutated the KB mid-run; the hoisted
                # verdict may be stale.  Re-resolve before serving more
                # items, mirroring _exchange's checks and reason strings.
                generation = resolution.generation
                stale_failure = None
                handled = []
                verdict = resolution.route(sender, receiver, head.interaction)
                if verdict.cross_org:
                    if not active.organisation:
                        stale_failure = (
                            REASON_ORGANISATION_OPAQUE,
                            f"cross-organisation exchange ({verdict.sender_org} -> "
                            f"{verdict.receiver_org}) with organisation transparency off",
                        )
                    elif not verdict.policy_ok:
                        stale_failure = (
                            REASON_POLICY,
                            f"no compatible policy between {verdict.sender_org} and "
                            f"{verdict.receiver_org} for {head.interaction}",
                        )
                    else:
                        handled.append("organisation")
                if stale_failure is None:
                    sender_format, receiver_format = resolution.formats(
                        sender_app, receiver_app
                    )
                    needs_translation = sender_format != receiver_format
                    if needs_translation:
                        if not active.view:
                            stale_failure = (
                                REASON_VIEW_OPAQUE,
                                f"format mismatch ({sender_format} -> {receiver_format}) "
                                "with view transparency off",
                            )
                        else:
                            handled.append("view")
                if stale_failure is None:
                    # the endpoint is hoisted state too: a callback that
                    # deregisters the receiver (e.g. a federation-level
                    # move to another home) must fail the remaining
                    # items, not deliver them to the stale endpoint
                    try:
                        endpoint = self.communicators.get(receiver)
                    except UnknownObjectError:
                        stale_failure = (
                            REASON_UNKNOWN_RECEIVER,
                            f"receiver {receiver!r} has no registered communicator",
                        )
                if stale_failure is None:
                    if active.activity and activity_id:
                        handled.append("activity")
                    handled_tuple = tuple(handled)
                    time_index = len(handled_tuple) - (
                        1 if handled_tuple[-1:] == ("activity",) else 0
                    )
                    handled_async = (
                        handled_tuple[:time_index] + ("time",) + handled_tuple[time_index:]
                    )
                    context = CommunicationContext(
                        activity=activity_id,
                        from_org=verdict.sender_org,
                        to_org=verdict.receiver_org,
                    )
                    prepared.clear()
                    made.clear()
            if stale_failure is not None:
                failed += 1
                outcomes.append(
                    ExchangeOutcome(
                        delivered=False,
                        mode="failed",
                        reason=stale_failure[1],
                        reason_code=stale_failure[0],
                        trace_id=trace_id,
                    )
                )
                continue
            document = request.document
            doc_key = id(document)
            entry = prepared.get(doc_key)
            if entry is None:
                payload = dict(document)
                fidelity = 1.0
                if needs_translation:
                    try:
                        result = translate(
                            sender_format, receiver_format, payload, head.min_fidelity
                        )
                    except InteropError as exc:
                        failed += 1
                        outcomes.append(
                            ExchangeOutcome(
                                delivered=False,
                                mode="failed",
                                reason=str(exc),
                                reason_code=REASON_FIDELITY
                                if isinstance(exc, FidelityError)
                                else REASON_TRANSLATION,
                                trace_id=trace_id,
                            )
                        )
                        continue
                    payload = result.document
                    fidelity = result.fidelity
                entry = (payload, fidelity, document_size(payload))
                prepared[doc_key] = entry
            payload, fidelity, size_bytes = entry

            # presence is re-read per item: a delivery callback may flip it
            if endpoint.present:
                mode = "synchronous"
                sync_count += 1
            else:
                if not active.time:
                    failed += 1
                    outcomes.append(
                        ExchangeOutcome(
                            delivered=False,
                            mode="failed",
                            reason=f"receiver {receiver} absent "
                            "with time transparency off",
                            reason_code=REASON_TIME_OPAQUE,
                            trace_id=trace_id,
                        )
                    )
                    continue
                # queue depth is re-read per item: each queued delivery
                # counts against the next one's shed check
                if (
                    head.priority <= 0
                    and self._shed_limit is not None
                    and len(pending.get(receiver, ())) >= self._shed_limit
                ):
                    failed += 1
                    shed += 1
                    outcomes.append(
                        ExchangeOutcome(
                            delivered=False,
                            mode="failed",
                            reason=f"receiver {receiver} has "
                            f"{self._shed_limit} deliveries queued; "
                            "shedding to protect the environment",
                            reason_code=REASON_OVERLOAD,
                            trace_id=trace_id,
                        )
                    )
                    continue
                mode = "asynchronous"
                async_count += 1

            info = {
                "sender": sender,
                "sender_app": sender_app,
                "mode": mode,
                "fidelity": fidelity,
                "activity": activity_id,
            }
            publish(topic, info, source=sender_app, time=now)
            rendered = render(receiver, payload)
            if mode == "synchronous":
                deliver(receiver_app, receiver, rendered, info)
            else:
                pending.setdefault(receiver, []).append(
                    (receiver_app, rendered, info, expires_at)
                )
            record(
                Exchange(
                    sender=sender,
                    receiver=receiver,
                    mode=mode,
                    media="document",
                    size_bytes=size_bytes,
                    time=now,
                    context=context,
                )
            )
            outcome_key = (doc_key, mode)
            outcome = made.get(outcome_key)
            if outcome is None:
                outcome = ExchangeOutcome(
                    delivered=True,
                    mode=mode,
                    reason=f"delivered ({mode})",
                    translated=needs_translation,
                    fidelity=fidelity,
                    handled=handled_async if mode == "asynchronous" else handled_tuple,
                    reason_code=REASON_DELIVERED,
                    trace_id=trace_id,
                    size_bytes=size_bytes,
                )
                made[outcome_key] = outcome
            outcomes.append(outcome)

        if failed:
            self.exchanges_failed += failed
            world_metrics.increment("env.exchange.failed", failed)
        if shed:
            if self.metrics.enabled:
                self.metrics.inc("env.shed.overload", shed)
            if self.events.enabled:
                self.events.record(
                    now,
                    KIND_SHED,
                    trace_id=trace_id,
                    env=self.name,
                    receiver=receiver,
                    dropped=shed,
                    batch=True,
                    shed_class=head.shed_class,
                )
        delivered = sync_count + async_count
        if delivered:
            world_metrics.increment("env.exchange.delivered", delivered)
        if sync_count:
            world_metrics.increment("env.exchange.synchronous", sync_count)
        if async_count:
            world_metrics.increment("env.exchange.asynchronous", async_count)

    def _flush_batch_metrics(
        self, obs: MetricsRegistry, outcomes: "list[ExchangeOutcome]"
    ) -> None:
        """Record one batch's outcomes as if each had been counted live."""
        obs.inc("env.exchange.attempted", len(outcomes))
        reasons: dict[str, int] = {}
        dimensions: dict[str, int] = {}
        delivered = 0
        size_histogram = obs.histogram("env.exchange.document_bytes")
        for outcome in outcomes:
            reasons[outcome.reason_code] = reasons.get(outcome.reason_code, 0) + 1
            if outcome.delivered:
                delivered += 1
                for dimension in outcome.handled:
                    dimensions[dimension] = dimensions.get(dimension, 0) + 1
                size_histogram.observe(outcome.size_bytes)
        if delivered:
            obs.inc("env.exchange.outcome.delivered", delivered)
            self._m_delivered.inc(delivered)
        if delivered != len(outcomes):
            obs.inc("env.exchange.outcome.failed", len(outcomes) - delivered)
            self._m_failed.inc(len(outcomes) - delivered)
        for code, count in reasons.items():
            obs.inc(f"env.exchange.reason.{code}", count)
            self._m_reasons.labels(domain=self.name, reason=code).inc(count)
        for dimension, count in dimensions.items():
            obs.inc(f"env.exchange.transparency.{dimension}", count)

    # -- runtime overload knobs (driven by the control plane) -------------------
    @property
    def shed_limit(self) -> int | None:
        """Current per-receiver queue-depth shed limit (None = never shed)."""
        return self._shed_limit

    def set_shed_limit(self, limit: int | None) -> None:
        """Change the shed limit at runtime (same contract as the builder's
        ``with_shed_limit``).

        The adaptive control plane tightens this under SLO burn and
        relaxes it back after recovery; already-queued deliveries are
        untouched — only admission of *new* asynchronous deliveries is
        affected.
        """
        if limit is not None and limit < 1:
            raise ConfigurationError("shed limit must be >= 1 (or None)")
        self._shed_limit = limit

    @property
    def default_deadline_s(self) -> float | None:
        """Current relative default deadline in simulated seconds."""
        return self._default_deadline_s

    def set_default_deadline(self, seconds: float | None) -> None:
        """Change the default deadline at runtime (same contract as the
        builder's ``with_default_deadline``); applies to exchanges
        started after the call."""
        from repro.util.errors import ConfigurationError

        if seconds is not None and seconds <= 0:
            raise ConfigurationError("default deadline must be > 0 (or None)")
        self._default_deadline_s = seconds

    def effective_deadline(self, deadline: float | None) -> float | None:
        """Resolve a caller deadline against the configured default.

        An explicit *deadline* (absolute simulated time) wins; otherwise
        the builder's ``with_default_deadline`` (relative seconds) is
        applied from now; otherwise exchanges never expire.
        """
        if deadline is not None:
            return deadline
        if self._default_deadline_s is not None:
            return self.world.now + self._default_deadline_s
        return None

    def _fail(
        self,
        code: str,
        reason: str,
        trace_id: str = "",
        obs: MetricsRegistry | None = None,
    ) -> ExchangeOutcome:
        self.exchanges_failed += 1
        self.world.metrics.increment("env.exchange.failed")
        if obs is None:
            obs = self.metrics
        if obs.enabled:
            obs.inc("env.exchange.outcome.failed")
            obs.inc(f"env.exchange.reason.{code}")
            self._m_failed.inc()
            self._m_reasons.labels(domain=self.name, reason=code).inc()
        return ExchangeOutcome(
            delivered=False,
            mode="failed",
            reason=reason,
            reason_code=code,
            trace_id=trace_id,
        )

    def describe(self) -> dict[str, Any]:
        """An inventory snapshot of the running environment.

        Covers the registered applications (with their quadrants), people
        and presence, activities by status, traded service types and
        exchange counters — the administrator's view of Figure 3.  When
        an enabled metrics registry is attached, a ``metrics`` section
        with its full snapshot is included.
        """
        inventory: dict[str, Any] = {
            "name": self.name,
            "applications": self.applications.coverage_matrix(),
            "people": {
                c.person_id: {"node": c.node, "present": c.present}
                for c in self.communicators.all()
            },
            "activities": {
                a.activity_id: a.status.value for a in self.activities.all()
            },
            "service_offers": sorted(
                {offer.service_type for offer in self.trader.offers()}
            ),
            "organisations": sorted(o.org_id for o in self.knowledge_base.organisations()),
            "exchanges": {
                "attempted": self.exchanges_attempted,
                "failed": self.exchanges_failed,
            },
            "resolution_cache": self.resolution.stats(),
            "integration_cost": self.integration_cost(),
            "interop_coverage": self.interop_coverage(),
        }
        if self.metrics.enabled:
            inventory["metrics"] = self.metrics.snapshot()
        return inventory

    # -- reporting ---------------------------------------------------------------
    def interop_coverage(self) -> float:
        """Fraction of ordered app pairs that can exchange documents.

        In the environment world this is 1.0 as soon as every application
        registers a converter — the quantified claim of Figure 3.
        """
        names = self.applications.names()
        if len(names) < 2:
            return 1.0
        total = 0
        reachable = 0
        for a in names:
            for b in names:
                if a == b:
                    continue
                total += 1
                fa = self.applications.descriptor(a).format_name
                fb = self.applications.descriptor(b).format_name
                if fa == fb or (
                    self.interchange.is_registered(fa) and self.interchange.is_registered(fb)
                ):
                    reachable += 1
        return reachable / total if total else 1.0

    def integration_cost(self) -> int:
        """Number of integration artifacts built: one converter per app."""
        return self.interchange.converter_count()
