"""The CSCW environment facade — the paper's central artifact (Figure 3).

*"A central aim of such environment is to provide interoperability
between a variety of applications ensuring that CSCW applications can
work in harmony rather than in isolation of each other."* (section 3)

One :class:`CSCWEnvironment` aggregates the common services:

* the **organisational knowledge base** (people, orgs, policies, rules),
* the **activity services** (registry, dependencies, scheduler,
  negotiation, resource coordination),
* the **information services** (information base, interchange),
* the **communication services** (communicators, log),
* the **expertise registry**,
* the **ODP trader** (with the org KB's trading policy installed —
  section 6.1) and an **event bus**,
* the **tailoring service** and the **view registry**.

Applications integrate once (:meth:`register_application`) and then
exchange documents through :meth:`exchange`, which applies the four CSCW
transparencies per the caller's :class:`TransparencyProfile`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.activity.model import Activity
from repro.communication.model import (
    CommunicationContext,
    Communicator,
    Exchange,
)
from repro.environment.registry import AppDescriptor, DeliveryCallback
from repro.environment.transparency import TransparencyProfile
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.org.policy import INTERACTION_MESSAGE
from repro.sim.world import World
from repro.util.errors import InteropError, UnknownObjectError
from repro.util.serialization import document_size

if TYPE_CHECKING:
    from repro.environment.builder import EnvironmentBuilder

#: structured reason codes an ExchangeOutcome can carry
REASON_DELIVERED = "delivered"
REASON_MEMBERSHIP = "membership"
REASON_ORGANISATION_OPAQUE = "organisation-opaque"
REASON_POLICY = "policy"
REASON_VIEW_OPAQUE = "view-opaque"
REASON_TRANSLATION = "translation"
REASON_TIME_OPAQUE = "time-opaque"


@dataclass(frozen=True)
class ExchangeOutcome:
    """What happened to one cross-application exchange.

    ``reason`` (human text) and ``reason_code`` (one of the ``REASON_*``
    constants) are populated uniformly for delivered and failed
    exchanges; ``trace_id`` carries the trace the exchange ran under
    when the environment has a tracer attached ('' otherwise).
    """

    delivered: bool
    mode: str  # "synchronous" | "asynchronous" | "failed"
    reason: str = ""
    translated: bool = False
    fidelity: float = 1.0
    #: dimensions the environment handled on the caller's behalf
    handled: tuple[str, ...] = ()
    #: structured outcome classification (REASON_* constant)
    reason_code: str = ""
    #: trace id of the exchange span ('' when tracing is off)
    trace_id: str = ""


class CSCWEnvironment:
    """The shared environment mediating all open CSCW applications.

    The recommended construction path is :meth:`builder`, which can
    inject observability (``with_metrics``/``with_tracer``) and extra
    trading policy at construction time; the plain constructor remains
    supported and routes through the same builder wiring.
    """

    def __init__(
        self,
        world: World,
        name: str = "mocca",
        *,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        """Build an environment on *world*; keyword-only *metrics* and
        *tracer* opt into observability (equivalent to the builder's
        ``with_metrics``/``with_tracer``)."""
        from repro.environment.builder import EnvironmentBuilder

        spec = EnvironmentBuilder(type(self)).with_world(world).with_name(name)
        if metrics is not None:
            spec = spec.with_metrics(metrics)
        if tracer is not None:
            spec = spec.with_tracer(tracer)
        spec._wire(self)

    @classmethod
    def builder(cls) -> "EnvironmentBuilder":
        """A fluent :class:`~repro.environment.builder.EnvironmentBuilder`
        producing instances of this class."""
        from repro.environment.builder import EnvironmentBuilder

        return EnvironmentBuilder(cls)

    # -- people ----------------------------------------------------------------
    def register_person(self, communicator: Communicator) -> None:
        """Register a person's communication endpoint with the environment."""
        self.communicators.register(communicator)

    def person_leaves(self, person_id: str) -> None:
        """Mark a person absent; asynchronous exchanges to them queue."""
        self.communicators.set_presence(person_id, False)

    def person_arrives(self, person_id: str) -> int:
        """Mark a person present and flush their queued deliveries.

        Returns the number of deliveries flushed — the store-and-forward
        half of time transparency: work done while you were away is
        waiting when you return.
        """
        self.communicators.set_presence(person_id, True)
        pending = self._pending_deliveries.pop(person_id, [])
        for app_name, document, info in pending:
            self.applications.deliver(app_name, person_id, document, info)
        return len(pending)

    def pending_for(self, person_id: str) -> int:
        """Number of deliveries queued for an absent person."""
        return len(self._pending_deliveries.get(person_id, []))

    # -- applications ------------------------------------------------------------
    def register_application(
        self,
        descriptor: AppDescriptor,
        on_deliver: DeliveryCallback,
        exporter_org: str = "",
    ) -> None:
        """One-step integration of an application (cost O(1) per app)."""
        self.applications.register(descriptor, on_deliver, exporter_org=exporter_org)
        self.bus.publish(
            f"environment/applications/{descriptor.name}",
            {"event": "registered", "quadrants": descriptor.quadrants},
            source=self.name,
            time=self.world.now,
        )

    # -- activities --------------------------------------------------------------
    def create_activity(
        self,
        activity_id: str,
        name: str,
        members: dict[str, str] | None = None,
        **kwargs: Any,
    ) -> Activity:
        """Create and register an activity, joining the given members."""
        activity = self.activities.create(Activity(activity_id, name, **kwargs))
        for person_id, role in (members or {}).items():
            activity.join(person_id, role)
        return activity

    # -- the exchange primitive -----------------------------------------------------
    def exchange(
        self,
        sender: str,
        receiver: str,
        sender_app: str,
        receiver_app: str,
        document: dict[str, Any],
        activity_id: str = "",
        profile: TransparencyProfile | None = None,
        interaction: str = INTERACTION_MESSAGE,
    ) -> ExchangeOutcome:
        """Deliver *document* from one application's user to another's.

        The environment applies each enabled transparency; a disabled
        transparency whose dimension the exchange actually crosses makes
        the exchange fail — quantifying exactly what each transparency
        buys (experiment E4).

        When a tracer is attached, the whole exchange runs inside an
        ``env.exchange`` span whose trace id the returned outcome
        carries; when a metrics registry is attached, outcomes are
        counted by reason code and transparency dimension.
        """
        with self.tracer.span(
            "env.exchange",
            sender=sender,
            receiver=receiver,
            sender_app=sender_app,
            receiver_app=receiver_app,
        ) as span:
            outcome = self._exchange(
                sender, receiver, sender_app, receiver_app, document,
                activity_id, profile, interaction, span.trace_id,
            )
            span.tag(
                delivered=outcome.delivered,
                mode=outcome.mode,
                reason_code=outcome.reason_code,
            )
            return outcome

    def _exchange(
        self,
        sender: str,
        receiver: str,
        sender_app: str,
        receiver_app: str,
        document: dict[str, Any],
        activity_id: str,
        profile: TransparencyProfile | None,
        interaction: str,
        trace_id: str,
    ) -> ExchangeOutcome:
        self.exchanges_attempted += 1
        obs = self.metrics
        if obs.enabled:
            obs.inc("env.exchange.attempted")
        active = profile if profile is not None else TransparencyProfile.all_on()
        handled: list[str] = []

        # Membership check: activity-scoped exchanges require membership.
        if activity_id:
            activity = self.activities.get(activity_id)
            for person in (sender, receiver):
                if not activity.is_member(person):
                    return self._fail(
                        REASON_MEMBERSHIP,
                        f"{person} is not a member of {activity_id}",
                        trace_id,
                    )

        # 1. Organisation dimension.
        try:
            sender_org = self.knowledge_base.organisation_of(sender)
            receiver_org = self.knowledge_base.organisation_of(receiver)
        except UnknownObjectError:
            sender_org = receiver_org = ""
        if sender_org != receiver_org:
            if not active.organisation:
                return self._fail(
                    REASON_ORGANISATION_OPAQUE,
                    f"cross-organisation exchange ({sender_org} -> {receiver_org}) "
                    "with organisation transparency off",
                    trace_id,
                )
            if not self.knowledge_base.policies.compatible(
                sender_org, receiver_org, interaction
            ):
                return self._fail(
                    REASON_POLICY,
                    f"no compatible policy between {sender_org} and {receiver_org} "
                    f"for {interaction}",
                    trace_id,
                )
            handled.append("organisation")

        # 2. View (format) dimension.
        translated = False
        fidelity = 1.0
        payload = dict(document)
        sender_format = self.applications.descriptor(sender_app).format_name
        receiver_format = self.applications.descriptor(receiver_app).format_name
        if sender_format != receiver_format:
            if not active.view:
                return self._fail(
                    REASON_VIEW_OPAQUE,
                    f"format mismatch ({sender_format} -> {receiver_format}) "
                    "with view transparency off",
                    trace_id,
                )
            try:
                result = self.interchange.translate(sender_format, receiver_format, payload)
            except InteropError as exc:
                return self._fail(REASON_TRANSLATION, str(exc), trace_id)
            payload = result.document
            fidelity = result.fidelity
            translated = True
            handled.append("view")

        # 3. Time dimension.
        try:
            receiver_present = self.communicators.get(receiver).present
        except UnknownObjectError:
            receiver_present = False
        if receiver_present:
            mode = "synchronous"
        else:
            if not active.time:
                return self._fail(
                    REASON_TIME_OPAQUE,
                    f"receiver {receiver} absent with time transparency off",
                    trace_id,
                )
            mode = "asynchronous"
            handled.append("time")

        # 4. Activity dimension: scoped vs global event publication.
        info = {
            "sender": sender,
            "sender_app": sender_app,
            "mode": mode,
            "fidelity": fidelity,
            "activity": activity_id,
        }
        if active.activity and activity_id:
            topic = f"activity/{activity_id}/exchange"
            handled.append("activity")
        else:
            topic = "exchange"
        self.bus.publish(topic, info, source=sender_app, time=self.world.now)

        # Deliver into the receiving application — immediately when the
        # receiver is present, queued for their return otherwise (true
        # store-and-forward semantics).
        rendered = self.views.render(receiver, payload)
        if mode == "synchronous":
            self.applications.deliver(receiver_app, receiver, rendered, info)
        else:
            self._pending_deliveries.setdefault(receiver, []).append(
                (receiver_app, rendered, info)
            )
        size_bytes = document_size(payload)
        self.communication_log.record(
            Exchange(
                sender=sender,
                receiver=receiver,
                mode=mode,
                media="document",
                size_bytes=size_bytes,
                time=self.world.now,
                context=CommunicationContext(
                    activity=activity_id, from_org=sender_org, to_org=receiver_org
                ),
            )
        )
        self.world.metrics.increment("env.exchange.delivered")
        self.world.metrics.increment(f"env.exchange.{mode}")
        if obs.enabled:
            obs.inc("env.exchange.outcome.delivered")
            obs.inc(f"env.exchange.reason.{REASON_DELIVERED}")
            for dimension in handled:
                obs.inc(f"env.exchange.transparency.{dimension}")
            obs.observe("env.exchange.document_bytes", size_bytes)
        return ExchangeOutcome(
            delivered=True,
            mode=mode,
            reason=f"delivered ({mode})",
            translated=translated,
            fidelity=fidelity,
            handled=tuple(handled),
            reason_code=REASON_DELIVERED,
            trace_id=trace_id,
        )

    def _fail(self, code: str, reason: str, trace_id: str = "") -> ExchangeOutcome:
        self.exchanges_failed += 1
        self.world.metrics.increment("env.exchange.failed")
        obs = self.metrics
        if obs.enabled:
            obs.inc("env.exchange.outcome.failed")
            obs.inc(f"env.exchange.reason.{code}")
        return ExchangeOutcome(
            delivered=False,
            mode="failed",
            reason=reason,
            reason_code=code,
            trace_id=trace_id,
        )

    def describe(self) -> dict[str, Any]:
        """An inventory snapshot of the running environment.

        Covers the registered applications (with their quadrants), people
        and presence, activities by status, traded service types and
        exchange counters — the administrator's view of Figure 3.  When
        an enabled metrics registry is attached, a ``metrics`` section
        with its full snapshot is included.
        """
        inventory: dict[str, Any] = {
            "name": self.name,
            "applications": self.applications.coverage_matrix(),
            "people": {
                c.person_id: {"node": c.node, "present": c.present}
                for c in self.communicators.all()
            },
            "activities": {
                a.activity_id: a.status.value for a in self.activities.all()
            },
            "service_offers": sorted(
                {offer.service_type for offer in self.trader.offers()}
            ),
            "organisations": sorted(o.org_id for o in self.knowledge_base.organisations()),
            "exchanges": {
                "attempted": self.exchanges_attempted,
                "failed": self.exchanges_failed,
            },
            "integration_cost": self.integration_cost(),
            "interop_coverage": self.interop_coverage(),
        }
        if self.metrics.enabled:
            inventory["metrics"] = self.metrics.snapshot()
        return inventory

    # -- reporting ---------------------------------------------------------------
    def interop_coverage(self) -> float:
        """Fraction of ordered app pairs that can exchange documents.

        In the environment world this is 1.0 as soon as every application
        registers a converter — the quantified claim of Figure 3.
        """
        names = self.applications.names()
        if len(names) < 2:
            return 1.0
        total = 0
        reachable = 0
        for a in names:
            for b in names:
                if a == b:
                    continue
                total += 1
                fa = self.applications.descriptor(a).format_name
                fb = self.applications.descriptor(b).format_name
                if fa == fb or (
                    self.interchange.is_registered(fa) and self.interchange.is_registered(fb)
                ):
                    reachable += 1
        return reachable / total if total else 1.0

    def integration_cost(self) -> int:
        """Number of integration artifacts built: one converter per app."""
        return self.interchange.converter_count()
