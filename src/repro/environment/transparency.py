"""The four CSCW transparencies (paper section 4).

*"The CSCW environment should provide some degree of transparency to
facilitate people cooperating from different coordinates, to hide some
dimensions that are unnecessary for a cooperative activity."*

Each transparency hides one dimension of a cooperative exchange:

* **organisation** — inter-organisational policy complexity: when on, the
  environment checks policy compatibility itself; when off, senders face
  the raw policy landscape (cross-organisation exchanges fail unless they
  handle it manually).
* **time** — the synchronous/asynchronous mode: when on, absent receivers
  get store-and-forward delivery; when off, interaction requires presence.
* **view** — how applications represent data: when on, documents are
  translated between application formats through the common form; when
  off, a format mismatch is the receiver's problem (WYSIWIS applications
  deliberately bypass this one).
* **activity** — scoping: when on, events are published only within their
  activity's topic so "activities [are] not ... disturbed by other
  unrelated activities"; when off, events go to a global topic and every
  subscriber sees everything.

A :class:`TransparencyProfile` is the user-tailorable selection (section
6.1: "the user should be allowed to select their required transparency").
Experiment E4 ablates each dimension and measures the failures that
reappear.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.util.errors import ConfigurationError

#: the four dimensions, in canonical order
CSCW_DIMENSIONS = ("organisation", "time", "view", "activity")


@dataclass(frozen=True)
class TransparencyProfile:
    """Which dimensions the environment hides for a given user/binding."""

    organisation: bool = True
    time: bool = True
    view: bool = True
    activity: bool = True

    @staticmethod
    def all_on() -> "TransparencyProfile":
        """The full-transparency default."""
        return TransparencyProfile()

    @staticmethod
    def all_off() -> "TransparencyProfile":
        """The closed-world baseline: users face every dimension."""
        return TransparencyProfile(False, False, False, False)

    def without(self, dimension: str) -> "TransparencyProfile":
        """A copy with one dimension turned off (for ablations)."""
        if dimension not in CSCW_DIMENSIONS:
            raise ConfigurationError(f"unknown CSCW dimension {dimension!r}")
        return replace(self, **{dimension: False})

    def with_(self, dimension: str) -> "TransparencyProfile":
        """A copy with one dimension turned on."""
        if dimension not in CSCW_DIMENSIONS:
            raise ConfigurationError(f"unknown CSCW dimension {dimension!r}")
        return replace(self, **{dimension: True})

    def enabled_dimensions(self) -> list[str]:
        """The hidden (environment-handled) dimensions, in order."""
        return [d for d in CSCW_DIMENSIONS if getattr(self, d)]

    def hidden_count(self) -> int:
        """How many dimensions the user does NOT have to deal with."""
        return len(self.enabled_dimensions())


@dataclass
class ViewRegistry:
    """Per-user view preferences over common-form documents.

    "Transparency of view means that applications can be interested or not
    in the way users view data."  A view is a set of rendering preferences
    applied when a document is presented to a user; WYSIWIS applications
    skip the registry so all participants see the identical rendering.
    """

    _views: dict[str, dict[str, str]] = field(default_factory=dict)

    def set_view(self, person_id: str, **preferences: str) -> None:
        """Set (merge) a person's view preferences."""
        self._views.setdefault(person_id, {}).update(preferences)

    def view_of(self, person_id: str) -> dict[str, str]:
        """A person's preferences (empty dict = default view)."""
        return dict(self._views.get(person_id, {}))

    def render(self, person_id: str, document: dict) -> dict:
        """Apply a person's view to a document (annotation, not mutation)."""
        rendered = dict(document)
        view = self._views.get(person_id)
        if view:
            rendered["_view"] = dict(view)
        return rendered
