"""Application registration: how groupware plugs into the environment.

Figure 3 of the paper: applications surround the CSCW environment and
interoperate *through* it.  An :class:`AppDescriptor` declares what an
application is (its quadrant in the time-space matrix, its native document
format with a converter to the common form, the service types it exports);
the :class:`ApplicationRegistry` wires those declarations into the
environment's interchange service and trader, and routes deliveries to the
application's inbox callback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.information.interchange import FormatConverter, InterchangeService
from repro.odp.objects import InterfaceRef
from repro.odp.trader import Trader
from repro.util.errors import ConfigurationError, NotRegisteredError

#: time-space matrix quadrants (Figure 1)
Q_SAME_TIME_SAME_PLACE = "same-time/same-place"
Q_SAME_TIME_DIFFERENT_PLACE = "same-time/different-place"
Q_DIFFERENT_TIME_SAME_PLACE = "different-time/same-place"
Q_DIFFERENT_TIME_DIFFERENT_PLACE = "different-time/different-place"
QUADRANTS = (
    Q_SAME_TIME_SAME_PLACE,
    Q_SAME_TIME_DIFFERENT_PLACE,
    Q_DIFFERENT_TIME_SAME_PLACE,
    Q_DIFFERENT_TIME_DIFFERENT_PLACE,
)

#: deliver(person_id, document, info) — info carries mode/fidelity/sender
DeliveryCallback = Callable[[str, dict[str, Any], dict[str, Any]], None]


@dataclass(slots=True)
class AppDescriptor:
    """Everything the environment needs to know about one application."""

    name: str
    quadrants: list[str]
    converter: FormatConverter | None = None
    #: service types this app exports (traded for other apps to find)
    exports: dict[str, InterfaceRef] = field(default_factory=dict)
    #: is this a CSCW application proper, or a non-CSCW app using the
    #: environment in a cooperative context (paper section 6.2's document
    #: processing example)?
    is_cscw: bool = True
    #: conversion capabilities (direct/partial converters beyond the
    #: common-form bridge) published to the environment's mediator;
    #: requires an environment built ``with_mediation()``
    capabilities: list = field(default_factory=list)
    #: native format for converter-less apps whose conversions are
    #: mediator-only (published via *capabilities*); ignored when a
    #: converter is present
    native_format: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("application needs a name")
        if not self.quadrants:
            raise ConfigurationError("application must claim at least one quadrant")
        for quadrant in self.quadrants:
            if quadrant not in QUADRANTS:
                raise ConfigurationError(f"unknown quadrant {quadrant!r}")

    @property
    def format_name(self) -> str:
        """The app's native format name ('' when it declares neither a
        converter nor a mediator-only ``native_format``)."""
        if self.converter is not None:
            return self.converter.format_name
        return self.native_format


class ApplicationRegistry:
    """Registered applications and their delivery endpoints."""

    def __init__(self, interchange: InterchangeService, trader: Trader) -> None:
        self._interchange = interchange
        self._trader = trader
        self._mediator: Any = None
        self._descriptors: dict[str, AppDescriptor] = {}
        self._callbacks: dict[str, DeliveryCallback] = {}
        self._listeners: list[Callable[[str], None]] = []

    def set_mediator(self, mediator: Any) -> None:
        """Publish registered converters to *mediator* from now on.

        Installed by ``with_mediation()``; each registration then also
        publishes the converter's to/from-common capabilities (and any
        descriptor-declared direct/partial capabilities) on the trader.
        """
        self._mediator = mediator

    def add_listener(self, listener: Callable[[str], None]) -> None:
        """Call *listener*(app_name) after every successful registration.

        The environment's resolution cache subscribes here so memoised
        format pairs are dropped when the application population grows.
        """
        self._listeners.append(listener)

    def register(
        self,
        descriptor: AppDescriptor,
        on_deliver: DeliveryCallback,
        exporter_org: str = "",
    ) -> None:
        """Register an application with the environment.

        Registration is the *only* integration step an open application
        needs (cost O(1) per app — the heart of experiment E2): the
        converter joins the interchange service, exported services are
        traded, and deliveries start flowing to *on_deliver*.
        """
        if descriptor.name in self._descriptors:
            raise ConfigurationError(f"application {descriptor.name!r} already registered")
        if descriptor.capabilities and self._mediator is None:
            raise ConfigurationError(
                f"application {descriptor.name!r} declares mediated conversion "
                "capabilities but the environment has no mediator "
                "(build with with_mediation())"
            )
        if descriptor.converter is not None:
            self._interchange.register(descriptor.converter)
            if self._mediator is not None:
                self._mediator.publish_converter(
                    descriptor.converter, exporter=descriptor.name
                )
        for capability in descriptor.capabilities:
            self._mediator.publish(capability)
        for service_type, ref in descriptor.exports.items():
            self._trader.export(
                service_type, ref, {"application": descriptor.name}, exporter=exporter_org
            )
        self._descriptors[descriptor.name] = descriptor
        self._callbacks[descriptor.name] = on_deliver
        for listener in self._listeners:
            listener(descriptor.name)

    def descriptor(self, name: str) -> AppDescriptor:
        """Look up a registered application."""
        try:
            return self._descriptors[name]
        except KeyError:
            raise NotRegisteredError(f"application {name!r} is not registered") from None

    def is_registered(self, name: str) -> bool:
        """True when the application is registered."""
        return name in self._descriptors

    def names(self) -> list[str]:
        """All registered application names, sorted."""
        return sorted(self._descriptors)

    def by_quadrant(self, quadrant: str) -> list[AppDescriptor]:
        """Applications claiming a quadrant."""
        if quadrant not in QUADRANTS:
            raise ConfigurationError(f"unknown quadrant {quadrant!r}")
        return [d for d in self._descriptors.values() if quadrant in d.quadrants]

    def coverage_matrix(self) -> dict[str, list[str]]:
        """quadrant -> application names (the populated Figure 1)."""
        return {
            quadrant: sorted(d.name for d in self.by_quadrant(quadrant))
            for quadrant in QUADRANTS
        }

    def deliver(
        self, app_name: str, person_id: str, document: dict[str, Any], info: dict[str, Any]
    ) -> None:
        """Push a document into an application's inbox."""
        callback = self._callbacks.get(app_name)
        if callback is None:
            raise NotRegisteredError(f"application {app_name!r} is not registered")
        callback(person_id, document, info)
