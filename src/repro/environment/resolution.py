"""Memoised resolution for the exchange hot path.

Every ``CSCWEnvironment.exchange()`` must answer the same three questions
before any document moves: which organisations the two people belong to,
whether those organisations' policies permit the interaction, and which
native formats the two applications speak.  Re-deriving those answers per
document is exactly the mediation overhead that worries service-based
mediation systems — the environment is *one* shared mediator, so the
answers are shared too.

The :class:`ResolutionCache` memoises

* per ``(sender, receiver, interaction)`` — the :class:`RouteVerdict`
  (both organisation ids plus the policy-compatibility verdict), and
* per ``(sender_app, receiver_app)`` — the native format pair.

Correctness under mutation is preserved by *explicit invalidation*: the
environment builder subscribes the cache to
:meth:`repro.org.knowledge_base.OrganisationalKnowledgeBase.add_listener`
(fired on organisation, person and policy changes) and to
:meth:`repro.environment.registry.ApplicationRegistry.add_listener`
(fired on application registration), so a policy revoked or a person
moved mid-run is visible to the very next exchange.  Failed lookups
(unknown applications) are never cached.

Hit/miss/invalidation totals are kept as plain attributes and, when a
metrics registry is attached, exported as ``env.cache.route.<hit|miss>``,
``env.cache.formats.<hit|miss>`` and ``env.cache.invalidations``
counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.util.errors import UnknownObjectError


@dataclass(frozen=True)
class RouteVerdict:
    """The memoised organisational answer for one (sender, receiver, interaction).

    ``policy_ok`` is only meaningful when the organisations differ;
    intra-organisation routes are always compatible.
    """

    sender_org: str
    receiver_org: str
    policy_ok: bool

    @property
    def cross_org(self) -> bool:
        """True when the route crosses an organisational boundary."""
        return self.sender_org != self.receiver_org


class ResolutionCache:
    """Memoises org/policy verdicts and app format pairs for exchanges.

    ``enabled`` can be flipped off (builder knob
    ``with_resolution_cache(False)``) to force fresh resolution on every
    call — the cold baseline the throughput benchmark compares against.
    Disabling never loses correctness, only speed.
    """

    def __init__(self, knowledge_base: Any, applications: Any) -> None:
        self._kb = knowledge_base
        self._apps = applications
        self._routes: dict[tuple[str, str, str], RouteVerdict] = {}
        self._formats: dict[tuple[str, str], tuple[str, str]] = {}
        self._obs: MetricsRegistry = NULL_METRICS
        self.enabled = True
        self.route_hits = 0
        self.route_misses = 0
        self.format_hits = 0
        self.format_misses = 0
        self.invalidations = 0

    def attach_metrics(self, metrics: MetricsRegistry | None) -> None:
        """Report cache activity to *metrics* (``None`` detaches)."""
        self._obs = metrics if metrics is not None else NULL_METRICS

    # -- lookups -----------------------------------------------------------
    def route(self, sender: str, receiver: str, interaction: str) -> RouteVerdict:
        """The org/policy verdict for one directed person pair."""
        if not self.enabled:
            return self._resolve_route(sender, receiver, interaction)
        key = (sender, receiver, interaction)
        verdict = self._routes.get(key)
        if verdict is None:
            self.route_misses += 1
            if self._obs.enabled:
                self._obs.inc("env.cache.route.miss")
            verdict = self._routes[key] = self._resolve_route(
                sender, receiver, interaction
            )
        else:
            self.route_hits += 1
            if self._obs.enabled:
                self._obs.inc("env.cache.route.hit")
        return verdict

    def formats(self, sender_app: str, receiver_app: str) -> tuple[str, str]:
        """The (sender, receiver) native format pair for one app pair.

        Unknown applications raise
        :class:`~repro.util.errors.NotRegisteredError` exactly as the
        direct descriptor lookup would; failures are not cached.
        """
        if not self.enabled:
            return self._resolve_formats(sender_app, receiver_app)
        key = (sender_app, receiver_app)
        pair = self._formats.get(key)
        if pair is None:
            self.format_misses += 1
            if self._obs.enabled:
                self._obs.inc("env.cache.formats.miss")
            pair = self._formats[key] = self._resolve_formats(sender_app, receiver_app)
        else:
            self.format_hits += 1
            if self._obs.enabled:
                self._obs.inc("env.cache.formats.hit")
        return pair

    def _resolve_route(self, sender: str, receiver: str, interaction: str) -> RouteVerdict:
        kb = self._kb
        try:
            sender_org = kb.organisation_of(sender)
            receiver_org = kb.organisation_of(receiver)
        except UnknownObjectError:
            sender_org = receiver_org = ""
        policy_ok = True
        if sender_org != receiver_org:
            policy_ok = kb.policies.compatible(sender_org, receiver_org, interaction)
        return RouteVerdict(sender_org, receiver_org, policy_ok)

    def _resolve_formats(self, sender_app: str, receiver_app: str) -> tuple[str, str]:
        apps = self._apps
        return (
            apps.descriptor(sender_app).format_name,
            apps.descriptor(receiver_app).format_name,
        )

    # -- invalidation ------------------------------------------------------
    def invalidate_routes(self) -> None:
        """Forget every memoised org/policy verdict."""
        if self._routes:
            self._routes.clear()
        self.invalidations += 1
        if self._obs.enabled:
            self._obs.inc("env.cache.invalidations")

    def invalidate_formats(self) -> None:
        """Forget every memoised format pair."""
        if self._formats:
            self._formats.clear()
        self.invalidations += 1
        if self._obs.enabled:
            self._obs.inc("env.cache.invalidations")

    def invalidate_all(self) -> None:
        """Forget everything (routes and formats)."""
        self.invalidate_routes()
        self.invalidate_formats()

    def on_kb_change(self, kind: str) -> None:
        """Knowledge-base mutation hook (kind: organisation/person/policy).

        Every KB mutation can change org membership or policy verdicts,
        so the whole route cache is dropped — invalidation is rare and
        re-resolution is one miss per live route.
        """
        self.invalidate_routes()

    def on_app_registered(self, name: str) -> None:
        """Application-registry mutation hook."""
        self.invalidate_formats()

    # -- introspection -----------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Counters and sizes, for ``describe()`` and the benchmarks."""
        return {
            "route_hits": self.route_hits,
            "route_misses": self.route_misses,
            "format_hits": self.format_hits,
            "format_misses": self.format_misses,
            "invalidations": self.invalidations,
            "routes_cached": len(self._routes),
            "formats_cached": len(self._formats),
        }
