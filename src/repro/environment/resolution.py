"""Memoised resolution for the exchange hot path.

Every ``CSCWEnvironment.exchange()`` must answer the same three questions
before any document moves: which organisations the two people belong to,
whether those organisations' policies permit the interaction, and which
native formats the two applications speak.  Re-deriving those answers per
document is exactly the mediation overhead that worries service-based
mediation systems — the environment is *one* shared mediator, so the
answers are shared too.

The :class:`ResolutionCache` memoises

* per ``(sender, receiver, interaction)`` — the :class:`RouteVerdict`
  (both organisation ids plus the policy-compatibility verdict), and
* per ``(sender_app, receiver_app)`` — the native format pair.

Correctness under mutation is preserved by *keyed invalidation*: the
environment builder subscribes the cache to
:meth:`repro.org.knowledge_base.OrganisationalKnowledgeBase.add_listener`
(fired on organisation, person and policy changes, carrying the mutated
entity) and to
:meth:`repro.environment.registry.ApplicationRegistry.add_listener`
(fired on application registration).  Each cached route is indexed under
the person ids and organisation ids it touches, so a mutation evicts only
the verdicts derived from the mutated entity — registering a person in
org A leaves every route wholly inside org B memoised.  A policy change
between two organisations evicts exactly the routes touching *both*.
Mutations that arrive without entity scope (legacy callers) fall back to
a whole-cache flush.  Failed lookups (unknown applications) are never
cached.

Hit/miss/invalidation totals are kept as plain attributes and, when a
metrics registry is attached, exported as ``env.cache.route.<hit|miss>``,
``env.cache.formats.<hit|miss>``, ``env.cache.invalidations`` and
``env.cache.evicted`` counters.  ``invalidations`` counts *logical
invalidation events that evicted at least one entry* — a mutation storm
against an empty or untouched cache costs nothing and counts nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.util.errors import UnknownObjectError


@dataclass(frozen=True)
class RouteVerdict:
    """The memoised organisational answer for one (sender, receiver, interaction).

    ``policy_ok`` is only meaningful when the organisations differ;
    intra-organisation routes are always compatible.
    """

    sender_org: str
    receiver_org: str
    policy_ok: bool

    @property
    def cross_org(self) -> bool:
        """True when the route crosses an organisational boundary."""
        return self.sender_org != self.receiver_org


class ResolutionCache:
    """Memoises org/policy verdicts and app format pairs for exchanges.

    ``enabled`` can be flipped off (builder knob
    ``with_resolution_cache(False)``) to force fresh resolution on every
    call — the cold baseline the throughput benchmark compares against.
    Disabling never loses correctness, only speed.

    ``generation`` is a monotonic freshness token: it advances on every
    mutation event (keyed or flush, even when nothing was cached), so
    batch callers that hoist a verdict once per run can detect mid-batch
    mutations with a single integer compare and re-resolve instead of
    serving stale state.
    """

    def __init__(self, knowledge_base: Any, applications: Any) -> None:
        self._kb = knowledge_base
        self._apps = applications
        self._routes: dict[tuple[str, str, str], RouteVerdict] = {}
        self._formats: dict[tuple[str, str], tuple[str, str]] = {}
        #: secondary index: ``p:<person>`` / ``o:<org>`` tag -> route keys
        self._route_index: dict[str, set[tuple[str, str, str]]] = {}
        self._route_tags: dict[tuple[str, str, str], tuple[str, ...]] = {}
        self._obs: MetricsRegistry = NULL_METRICS
        self.enabled = True
        self.route_hits = 0
        self.route_misses = 0
        self.format_hits = 0
        self.format_misses = 0
        self.invalidations = 0
        self.evictions = 0
        self.generation = 0

    def attach_metrics(self, metrics: MetricsRegistry | None) -> None:
        """Report cache activity to *metrics* (``None`` detaches)."""
        self._obs = metrics if metrics is not None else NULL_METRICS

    # -- lookups -----------------------------------------------------------
    def route(self, sender: str, receiver: str, interaction: str) -> RouteVerdict:
        """The org/policy verdict for one directed person pair."""
        if not self.enabled:
            return self._resolve_route(sender, receiver, interaction)
        key = (sender, receiver, interaction)
        verdict = self._routes.get(key)
        if verdict is None:
            self.route_misses += 1
            if self._obs.enabled:
                self._obs.inc("env.cache.route.miss")
            verdict = self._resolve_route(sender, receiver, interaction)
            self._store_route(key, verdict)
        else:
            self.route_hits += 1
            if self._obs.enabled:
                self._obs.inc("env.cache.route.hit")
        return verdict

    def formats(self, sender_app: str, receiver_app: str) -> tuple[str, str]:
        """The (sender, receiver) native format pair for one app pair.

        Unknown applications raise
        :class:`~repro.util.errors.NotRegisteredError` exactly as the
        direct descriptor lookup would; failures are not cached.
        """
        if not self.enabled:
            return self._resolve_formats(sender_app, receiver_app)
        key = (sender_app, receiver_app)
        pair = self._formats.get(key)
        if pair is None:
            self.format_misses += 1
            if self._obs.enabled:
                self._obs.inc("env.cache.formats.miss")
            pair = self._formats[key] = self._resolve_formats(sender_app, receiver_app)
        else:
            self.format_hits += 1
            if self._obs.enabled:
                self._obs.inc("env.cache.formats.hit")
        return pair

    def _resolve_route(self, sender: str, receiver: str, interaction: str) -> RouteVerdict:
        kb = self._kb
        try:
            sender_org = kb.organisation_of(sender)
            receiver_org = kb.organisation_of(receiver)
        except UnknownObjectError:
            sender_org = receiver_org = ""
        policy_ok = True
        if sender_org != receiver_org:
            policy_ok = kb.policies.compatible(sender_org, receiver_org, interaction)
        return RouteVerdict(sender_org, receiver_org, policy_ok)

    def _resolve_formats(self, sender_app: str, receiver_app: str) -> tuple[str, str]:
        apps = self._apps
        return (
            apps.descriptor(sender_app).format_name,
            apps.descriptor(receiver_app).format_name,
        )

    # -- keyed route index -------------------------------------------------
    def _store_route(self, key: tuple[str, str, str], verdict: RouteVerdict) -> None:
        self._routes[key] = verdict
        sender, receiver, _ = key
        tags = tuple(
            {
                f"p:{sender}",
                f"p:{receiver}",
                f"o:{verdict.sender_org}",
                f"o:{verdict.receiver_org}",
            }
        )
        self._route_tags[key] = tags
        index = self._route_index
        for tag in tags:
            index.setdefault(tag, set()).add(key)

    def _drop_route(self, key: tuple[str, str, str]) -> int:
        if self._routes.pop(key, None) is None:
            return 0
        for tag in self._route_tags.pop(key, ()):
            keys = self._route_index.get(tag)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._route_index[tag]
        return 1

    def _evict_tag(self, tag: str) -> int:
        keys = self._route_index.get(tag)
        if not keys:
            return 0
        return sum(self._drop_route(key) for key in list(keys))

    def _evict_org_pair(self, org_a: str, org_b: str) -> int:
        first = self._route_index.get(f"o:{org_a}")
        if not first:
            return 0
        if org_a == org_b:
            affected = set(first)
        else:
            second = self._route_index.get(f"o:{org_b}")
            if not second:
                return 0
            affected = first & second
        return sum(self._drop_route(key) for key in affected)

    def _clear_routes(self) -> int:
        removed = len(self._routes)
        self._routes.clear()
        self._route_index.clear()
        self._route_tags.clear()
        return removed

    def _clear_formats(self) -> int:
        removed = len(self._formats)
        self._formats.clear()
        return removed

    def _note_event(self, removed: int) -> None:
        """Account one mutation event that evicted *removed* entries."""
        self.generation += 1
        if removed:
            self.evictions += removed
            self.invalidations += 1
            if self._obs.enabled:
                self._obs.inc("env.cache.invalidations")
                self._obs.inc("env.cache.evicted", removed)

    # -- invalidation ------------------------------------------------------
    def invalidate_routes(self) -> None:
        """Forget every memoised org/policy verdict (one logical event)."""
        self._note_event(self._clear_routes())

    def invalidate_formats(self) -> None:
        """Forget every memoised format pair (one logical event)."""
        self._note_event(self._clear_formats())

    def invalidate_all(self) -> None:
        """Forget everything (routes and formats).

        One logical invalidation, counted once — not once per sub-cache.
        """
        self._note_event(self._clear_routes() + self._clear_formats())

    def on_kb_change(self, kind: str = "", entity_id: str = "", org: str = "") -> None:
        """Knowledge-base mutation hook (kind: organisation/person/policy).

        Eviction is scoped to the mutated entity:

        * ``person`` — only routes whose sender or receiver is
          *entity_id*;
        * ``organisation`` — routes touching that organisation, plus
          routes cached while a participant was unknown (empty org ids):
          the new organisation may be the one that makes them resolvable;
        * ``policy`` — routes touching *both* organisations of the
          mutated pair (a policy can only flip verdicts between them).

        Called without entity scope (legacy/no-arg form) the whole route
        cache is dropped, preserving the old conservative contract.
        """
        if kind == "person" and entity_id:
            removed = self._evict_tag(f"p:{entity_id}")
        elif kind == "organisation" and entity_id:
            removed = self._evict_tag(f"o:{entity_id}") + self._evict_tag("o:")
        elif kind == "policy" and entity_id and org:
            removed = self._evict_org_pair(entity_id, org)
        else:
            removed = self._clear_routes()
        self._note_event(removed)

    def on_app_registered(self, name: str) -> None:
        """Application-registry mutation hook.

        Format pairs are few (one per app pair, not per person), so a
        registration keeps the conservative whole-flush: re-resolution is
        one miss per live pair.
        """
        self.invalidate_formats()

    # -- introspection -----------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Counters and sizes, for ``describe()`` and the benchmarks."""
        return {
            "route_hits": self.route_hits,
            "route_misses": self.route_misses,
            "format_hits": self.format_hits,
            "format_misses": self.format_misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "generation": self.generation,
            "routes_cached": len(self._routes),
            "formats_cached": len(self._formats),
        }
