"""The environment as an ODP service: remote access to exchange().

Figure 4 places the CSCW environment *on* the ODP platform.  This module
makes that literal: an :class:`EnvironmentServer` wraps a
:class:`~repro.environment.environment.CSCWEnvironment` in a computational
object deployed into a capsule, so workstations across the simulated
network invoke ``exchange``/``describe``/presence operations through
ordinary ODP channels — paying real network latency, crossing real
partitions, benefiting from the same distribution transparencies as any
other service.

An :class:`EnvironmentClient` is the workstation-side stub.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any

from repro.environment.environment import (
    CSCWEnvironment,
    ExchangeOutcome,
    ExchangeRequest,
)
from repro.odp.binding import BindingFactory, Channel
from repro.odp.node_mgmt import Capsule
from repro.odp.objects import ComputationalObject, InterfaceRef, signature
from repro.sim.world import World

#: the interface every environment server offers
ENVIRONMENT_SIGNATURE = signature(
    "cscw-environment",
    "exchange",
    "describe",
    "person_arrives",
    "person_leaves",
    "pending_for",
)


class EnvironmentServer:
    """Hosts one environment's operations as a deployable ODP object."""

    def __init__(self, environment: CSCWEnvironment, object_id: str = "environment") -> None:
        self.environment = environment
        self._object = ComputationalObject(object_id)
        self._object.offer(
            ENVIRONMENT_SIGNATURE,
            {
                "exchange": self._op_exchange,
                "describe": lambda args: self.environment.describe(),
                "person_arrives": lambda args: self.environment.person_arrives(args["person"]),
                "person_leaves": self._op_person_leaves,
                "pending_for": lambda args: self.environment.pending_for(args["person"]),
            },
        )

    def deploy(self, capsule: Capsule, trade: bool = True) -> InterfaceRef:
        """Activate the server in *capsule*; optionally trade the service.

        Trading uses the environment's own trader, so organisational
        trading policy governs who can even *find* the environment.
        """
        refs = capsule.deploy(self._object)
        ref = refs["cscw-environment"]
        if trade:
            self.environment.trader.export(
                "cscw-environment", ref, {"name": self.environment.name}
            )
        return ref

    def _op_exchange(self, args: dict[str, Any]) -> dict[str, Any]:
        # The wire form *is* the ExchangeRequest document — the same
        # single call currency as the in-process exchange() surface.
        outcome = self.environment.exchange(ExchangeRequest.from_document(args))
        return asdict(outcome)

    def _op_person_leaves(self, args: dict[str, Any]) -> bool:
        self.environment.person_leaves(args["person"])
        return True


class EnvironmentClient:
    """Workstation-side access to a (possibly remote) environment server."""

    def __init__(
        self,
        world: World,
        factory: BindingFactory,
        client_node: str,
        server_ref: InterfaceRef,
    ) -> None:
        self._world = world
        self.channel: Channel = factory.bind(client_node, server_ref)

    def exchange(
        self, request: ExchangeRequest | None = None, /, *args: Any, **kwargs: Any
    ) -> ExchangeOutcome:
        """Invoke exchange() across the network; returns the outcome.

        Accepts an :class:`ExchangeRequest` — the same single call
        currency as the in-process surface — whose wire form
        (:meth:`ExchangeRequest.to_document`) travels the channel.  The
        legacy keyword form remains a thin shim over
        :meth:`ExchangeRequest.from_kwargs`.
        """
        if not isinstance(request, ExchangeRequest):
            positional = () if request is None else (request,)
            request = ExchangeRequest.from_kwargs(*positional, *args, **kwargs)
        reply = self.channel.call(self._world, "exchange", request.to_document())
        reply["handled"] = tuple(reply.get("handled", ()))
        return ExchangeOutcome(**reply)

    def describe(self) -> dict[str, Any]:
        """The environment inventory, fetched remotely."""
        return self.channel.call(self._world, "describe", {})

    def person_arrives(self, person: str) -> int:
        """Remote presence update; returns flushed delivery count."""
        return self.channel.call(self._world, "person_arrives", {"person": person})

    def person_leaves(self, person: str) -> None:
        """Remote presence update."""
        self.channel.call(self._world, "person_leaves", {"person": person})

    def pending_for(self, person: str) -> int:
        """Queued deliveries for an absent person, fetched remotely."""
        return self.channel.call(self._world, "pending_for", {"person": person})
