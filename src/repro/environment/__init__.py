"""The CSCW environment — the paper's primary contribution (Figures 3-4).

Common services (knowledge base, trader with organisational trading
policy, interchange, activity services, expertise, tailoring), the four
CSCW transparencies, application registration, and cooperation sessions.
"""

from repro.environment.awareness import AwarenessService, ColleagueInfo
from repro.environment.builder import EnvironmentBuilder
from repro.environment.environment import (
    REASON_DELIVERED,
    REASON_MEMBERSHIP,
    REASON_ORGANISATION_OPAQUE,
    REASON_POLICY,
    REASON_TIME_OPAQUE,
    REASON_TRANSLATION,
    REASON_UNKNOWN_RECEIVER,
    REASON_VIEW_OPAQUE,
    CSCWEnvironment,
    ExchangeOutcome,
    ExchangeRequest,
)
from repro.environment.resolution import ResolutionCache, RouteVerdict
from repro.environment.registry import (
    Q_DIFFERENT_TIME_DIFFERENT_PLACE,
    Q_DIFFERENT_TIME_SAME_PLACE,
    Q_SAME_TIME_DIFFERENT_PLACE,
    Q_SAME_TIME_SAME_PLACE,
    QUADRANTS,
    AppDescriptor,
    ApplicationRegistry,
)
from repro.environment.server import EnvironmentClient, EnvironmentServer
from repro.environment.session import CooperationSession, SessionMember
from repro.environment.tailoring import (
    LAYERS,
    TailorableParameter,
    TailoringService,
)
from repro.environment.transparency import (
    CSCW_DIMENSIONS,
    TransparencyProfile,
    ViewRegistry,
)

__all__ = [
    "AwarenessService",
    "ColleagueInfo",
    "CSCWEnvironment",
    "EnvironmentBuilder",
    "ExchangeOutcome",
    "ExchangeRequest",
    "ResolutionCache",
    "RouteVerdict",
    "REASON_DELIVERED",
    "REASON_MEMBERSHIP",
    "REASON_ORGANISATION_OPAQUE",
    "REASON_POLICY",
    "REASON_TIME_OPAQUE",
    "REASON_TRANSLATION",
    "REASON_UNKNOWN_RECEIVER",
    "REASON_VIEW_OPAQUE",
    "Q_DIFFERENT_TIME_DIFFERENT_PLACE",
    "Q_DIFFERENT_TIME_SAME_PLACE",
    "Q_SAME_TIME_DIFFERENT_PLACE",
    "Q_SAME_TIME_SAME_PLACE",
    "QUADRANTS",
    "AppDescriptor",
    "ApplicationRegistry",
    "EnvironmentClient",
    "EnvironmentServer",
    "CooperationSession",
    "SessionMember",
    "LAYERS",
    "TailorableParameter",
    "TailoringService",
    "CSCW_DIMENSIONS",
    "TransparencyProfile",
    "ViewRegistry",
]
