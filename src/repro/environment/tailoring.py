"""Tailorability: layered, run-time reconfiguration by users.

Paper section 4, "Support for Tailorability": systems "need to be
malleable and tailorable ... both by developers and users", with "the
traditional divide between users and developers [becoming] less clear".

The :class:`TailoringService` keeps configuration documents in four
layers — system defaults, organisation, application, user — merged in that
order so that *user settings override developer settings* (the paper's
levelling of the divide).  Applications declare *tailorable parameters*
with bounds; out-of-bounds values are rejected, and live listeners are
notified so running sessions retailor without redeployment (experiment
E7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.util.errors import TailoringError
from repro.util.serialization import deep_merge

#: configuration layers, lowest to highest precedence
LAYERS = ("system", "organisation", "application", "user")

ChangeListener = Callable[[str, dict[str, Any]], None]


@dataclass(frozen=True)
class TailorableParameter:
    """One declared knob an application exposes to tailoring."""

    path: str  # dotted path within the config document, e.g. "ui.font_size"
    description: str = ""
    #: permitted values (None = anything), or a (low, high) numeric range
    choices: tuple[Any, ...] | None = None
    numeric_range: tuple[float, float] | None = None

    def validate(self, value: Any) -> None:
        """Raise :class:`TailoringError` when *value* is out of bounds."""
        if self.choices is not None and value not in self.choices:
            raise TailoringError(
                f"{self.path}: {value!r} not in {list(self.choices)}"
            )
        if self.numeric_range is not None:
            low, high = self.numeric_range
            if not isinstance(value, (int, float)) or not low <= value <= high:
                raise TailoringError(
                    f"{self.path}: {value!r} outside [{low}, {high}]"
                )


def _set_path(document: dict[str, Any], path: str, value: Any) -> dict[str, Any]:
    """Return a nested dict setting dotted *path* to *value*."""
    parts = path.split(".")
    result: dict[str, Any] = {}
    current = result
    for part in parts[:-1]:
        current[part] = {}
        current = current[part]
    current[parts[-1]] = value
    return deep_merge(document, result)


def _get_path(document: dict[str, Any], path: str, default: Any = None) -> Any:
    current: Any = document
    for part in path.split("."):
        if not isinstance(current, dict) or part not in current:
            return default
        current = current[part]
    return current


class TailoringService:
    """Layered configuration with declared parameters and live listeners."""

    def __init__(self) -> None:
        #: (app, layer, subject) -> config document; subject is the org or
        #: user id for those layers, "" otherwise
        self._configs: dict[tuple[str, str, str], dict[str, Any]] = {}
        self._parameters: dict[str, dict[str, TailorableParameter]] = {}
        self._listeners: dict[str, list[ChangeListener]] = {}
        self.retailorings = 0
        self.rejected = 0

    # -- declarations --------------------------------------------------------
    def declare(self, app: str, parameter: TailorableParameter) -> None:
        """Declare a tailorable parameter of an application."""
        per_app = self._parameters.setdefault(app, {})
        if parameter.path in per_app:
            raise TailoringError(f"{app}: parameter {parameter.path!r} already declared")
        per_app[parameter.path] = parameter

    def parameters_of(self, app: str) -> list[TailorableParameter]:
        """All declared parameters of an application ('the toolkit')."""
        return [self._parameters.get(app, {})[p] for p in sorted(self._parameters.get(app, {}))]

    # -- configuration ---------------------------------------------------------
    def set_default(self, app: str, config: dict[str, Any]) -> None:
        """Install the developer's system-layer defaults."""
        self._configs[(app, "system", "")] = dict(config)

    def tailor(
        self,
        app: str,
        path: str,
        value: Any,
        layer: str = "user",
        subject: str = "",
    ) -> None:
        """Set one declared parameter at a layer (the tailoring operation).

        Users and developers use the *same* operation — only the layer
        differs — which is exactly the paper's claim about their powers.
        """
        if layer not in LAYERS:
            raise TailoringError(f"unknown layer {layer!r}")
        if layer in ("user", "organisation") and not subject:
            raise TailoringError(f"layer {layer!r} needs a subject (who is tailoring)")
        parameter = self._parameters.get(app, {}).get(path)
        if parameter is None:
            self.rejected += 1
            raise TailoringError(f"{app}: {path!r} is not a tailorable parameter")
        try:
            parameter.validate(value)
        except TailoringError:
            self.rejected += 1
            raise
        key = (app, layer, subject if layer in ("user", "organisation") else "")
        current = self._configs.get(key, {})
        self._configs[key] = _set_path(current, path, value)
        self.retailorings += 1
        self._notify(app, self.effective_config(app, user=subject if layer == "user" else ""))

    # -- resolution ---------------------------------------------------------------
    def effective_config(self, app: str, user: str = "", organisation: str = "") -> dict[str, Any]:
        """Merge layers lowest-to-highest for one user's session."""
        merged: dict[str, Any] = {}
        for layer in LAYERS:
            if layer == "user":
                subject = user
            elif layer == "organisation":
                subject = organisation
            else:
                subject = ""
            config = self._configs.get((app, layer, subject))
            if config:
                merged = deep_merge(merged, config)
        return merged

    def effective_value(
        self, app: str, path: str, user: str = "", organisation: str = "", default: Any = None
    ) -> Any:
        """Resolve one parameter for one user."""
        return _get_path(self.effective_config(app, user, organisation), path, default)

    # -- live retailoring -----------------------------------------------------------
    def on_change(self, app: str, listener: ChangeListener) -> None:
        """Register a live listener (running sessions subscribe here)."""
        self._listeners.setdefault(app, []).append(listener)

    def _notify(self, app: str, config: dict[str, Any]) -> None:
        for listener in self._listeners.get(app, []):
            listener(app, config)
