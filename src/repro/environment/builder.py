"""Fluent construction of the CSCW environment.

``CSCWEnvironment.builder()`` is the recommended construction path: a
small fluent :class:`EnvironmentBuilder` whose knobs inject observability
(metrics registry, tracer) and extra trading policy at construction time
instead of monkey-patching them on afterwards::

    env = (CSCWEnvironment.builder()
           .with_world(world)
           .with_name("mocca")
           .with_metrics(MetricsRegistry())
           .with_tracer(Tracer())
           .with_trader_policy(my_policy_hook)
           .build())

The legacy ``CSCWEnvironment(world, name=...)`` constructor routes
through this builder, so both paths perform identical wiring: services
constructed, the org-KB trading policy installed on the trader, the
event bus bound to the engine's simulated clock, and (when enabled)
metrics/tracing attached to every owned hot layer via
:func:`repro.obs.instrument.instrument_environment`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.activity.coordination import ResourceCoordinator
from repro.activity.dependencies import DependencyGraph
from repro.activity.model import ActivityRegistry
from repro.activity.negotiation import NegotiationService
from repro.activity.scheduler import ActivityScheduler
from repro.communication.model import CommunicationLog, CommunicatorRegistry
from repro.environment.registry import ApplicationRegistry
from repro.environment.resolution import ResolutionCache
from repro.environment.tailoring import TailoringService
from repro.environment.transparency import ViewRegistry
from repro.expertise.model import ExpertiseRegistry
from repro.information.interchange import InterchangeService
from repro.information.objects import InformationBase
from repro.obs.events import NULL_EVENTS, EventLog
from repro.obs.instrument import instrument_environment
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.slo import LatencySLO, RatioSLO, SLOEngine
from repro.obs.tracing import NULL_TRACER, Tracer
from repro.odp.trader import ImportContext, ServiceOffer, Trader
from repro.org.knowledge_base import OrganisationalKnowledgeBase
from repro.sim.world import World
from repro.util.errors import ConfigurationError
from repro.util.events import EventBus

if TYPE_CHECKING:  # imported lazily at runtime: control depends on obs
    from repro.control.plane import ControlPolicy

#: a trading-policy predicate, as accepted by Trader.add_policy_hook
TraderPolicy = Callable[[ServiceOffer, ImportContext], bool]


class EnvironmentBuilder:
    """Collects construction options, then wires a CSCWEnvironment.

    Obtain one through ``CSCWEnvironment.builder()``.  All ``with_*``
    methods return the builder for chaining; :meth:`build` validates the
    configuration (a world is mandatory) and produces the environment.
    """

    def __init__(self, cls: type | None = None) -> None:
        if cls is None:
            from repro.environment.environment import CSCWEnvironment

            cls = CSCWEnvironment
        self._cls = cls
        self._world: World | None = None
        self._name = "mocca"
        self._metrics: MetricsRegistry | None = None
        self._tracer: Tracer | None = None
        self._sampling: "tuple[float, int] | None" = None
        self._events: EventLog | None = None
        self._slo_period_s: float | None = None
        self._slo_objectives: tuple = ()
        self._control = False
        self._control_policy: "ControlPolicy | None" = None
        self._trader_policies: list[TraderPolicy] = []
        self._resolution_cache = True
        self._shed_limit: int | None = None
        self._default_deadline_s: float | None = None
        self._shards: int | None = None
        self._shard_country = "ES"
        self._mediation = False

    # -- knobs -------------------------------------------------------------
    def with_world(self, world: World) -> "EnvironmentBuilder":
        """Set the simulated world the environment runs in (required)."""
        self._world = world
        return self

    def with_name(self, name: str) -> "EnvironmentBuilder":
        """Set the environment's name (default ``"mocca"``)."""
        if not name:
            raise ConfigurationError("environment name must be non-empty")
        self._name = name
        return self

    def with_metrics(self, metrics: MetricsRegistry) -> "EnvironmentBuilder":
        """Collect metrics into *metrics* (engine, bus, trader, exchange)."""
        self._metrics = metrics
        return self

    def with_tracer(self, tracer: Tracer) -> "EnvironmentBuilder":
        """Trace ``exchange()`` with *tracer*; sim-mode tracers are bound
        to the world's engine clock so span durations are simulated
        seconds."""
        self._tracer = tracer
        return self

    def with_trace_sampling(self, probability: float, seed: int = 0) -> "EnvironmentBuilder":
        """Head-sample traces at *probability*, deterministically by *seed*.

        Requires ``with_tracer``.  The tracer records roughly
        ``probability`` of all traces (the keep/drop verdict is a seeded
        hash of the trace id, so the same seed keeps the same traces on
        every run), while tail-biased retention still keeps **every**
        trace that errors, misses a deadline, fails over or dead-letters
        — see :meth:`repro.obs.tracing.Tracer.configure_sampling`.
        """
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(
                "trace sampling probability must be within [0, 1]"
            )
        self._sampling = (probability, seed)
        return self

    def with_event_log(self, events: EventLog) -> "EnvironmentBuilder":
        """Record structured, trace-correlated events into *events*.

        The environment emits ``shed``/``deadline-exceeded`` events on
        its own paths; components that receive the same log (breakers,
        gateways, shadowing) add theirs, so one bounded ring buffer
        holds the whole run's noteworthy moments in simulated-time
        order.
        """
        self._events = events
        return self

    def with_slo(
        self,
        objectives: "Iterable[RatioSLO | LatencySLO] | None" = None,
        sample_period_s: float = 1.0,
    ) -> "EnvironmentBuilder":
        """Attach an (unstarted) :class:`~repro.obs.slo.SLOEngine`.

        Requires ``with_metrics``: objectives window the environment's
        own counters and histograms.  *objectives* takes declarative
        :class:`~repro.obs.slo.RatioSLO` / :class:`~repro.obs.slo.LatencySLO`
        specs so the SLOs the control plane acts on are stated at build
        time; more can still be added post-build with
        ``env.slo.add_ratio(...)``/``add_latency(...)``.  Call
        ``env.slo.start()`` to arm sampling.  Burn alerts go to the
        event log when one is attached.
        """
        if sample_period_s <= 0:
            raise ConfigurationError("SLO sample_period_s must be > 0")
        self._slo_period_s = sample_period_s
        self._slo_objectives = tuple(objectives) if objectives is not None else ()
        return self

    def with_control(self, policy: "ControlPolicy | None" = None) -> "EnvironmentBuilder":
        """Attach an adaptive :class:`~repro.control.plane.ControlPlane`.

        Requires ``with_slo`` (the plane subscribes to burn alerts) and
        therefore ``with_metrics``.  The plane comes up managing the
        environment's shed/deadline knobs and watching ``env.slo``, is
        exposed as ``env.control``, and is left unstarted — call
        ``env.control.start()`` (and ``env.slo.start()``) to arm it.
        *policy* defaults to :class:`~repro.control.plane.ControlPolicy`.
        """
        self._control = True
        self._control_policy = policy
        return self

    def with_resolution_cache(self, enabled: bool) -> "EnvironmentBuilder":
        """Enable/disable the exchange resolution cache (default on).

        Disabling forces every exchange to re-resolve org membership,
        policy verdicts and app formats from scratch — the cold baseline
        the throughput benchmark measures the cache against.
        """
        self._resolution_cache = enabled
        return self

    def with_shed_limit(self, limit: int | None) -> "EnvironmentBuilder":
        """Shed asynchronous deliveries beyond *limit* queued per receiver.

        When an absent receiver already has *limit* store-and-forward
        deliveries queued, further exchanges to them fail with
        ``REASON_OVERLOAD`` (counted as ``env.shed.overload``) instead of
        growing the queue without bound.  ``None`` (the default) never
        sheds.
        """
        if limit is not None and limit < 1:
            raise ConfigurationError("shed limit must be >= 1 (or None)")
        self._shed_limit = limit
        return self

    def with_default_deadline(self, seconds: float | None) -> "EnvironmentBuilder":
        """Give every exchange a default deadline of *seconds* from its start.

        An explicit ``deadline=`` argument on ``exchange``/
        ``exchange_many`` overrides the default; expired exchanges fail
        with ``REASON_DEADLINE_EXCEEDED`` and expired queued deliveries
        are dropped at flush time (``env.shed.expired``).  ``None`` (the
        default) means exchanges never expire.
        """
        if seconds is not None and seconds <= 0:
            raise ConfigurationError("default deadline must be > 0 (or None)")
        self._default_deadline_s = seconds
        return self

    def with_sharding(self, n_shards: int, country: str = "ES") -> "EnvironmentBuilder":
        """Shard the org/people KB and white pages across *n_shards* DSAs.

        The environment's knowledge base becomes a
        :class:`~repro.sharding.kb.ShardedKnowledgeBase`: person lookups
        go through an O(1) person -> org index instead of the base
        class's linear scan, and every organisation's DIT subtree
        (``o=<org_id>,c=<country>``) lives on exactly one
        consistent-hash-assigned shard, exposed as
        ``env.knowledge_base.directory``.  Required for populations past
        a few thousand registered users; a no-op for correctness
        otherwise (same KB contract, same keyed change notifications).
        """
        if n_shards < 1:
            raise ConfigurationError("with_sharding needs n_shards >= 1")
        self._shards = n_shards
        self._shard_country = country
        return self

    def with_mediation(self, enabled: bool = True) -> "EnvironmentBuilder":
        """Wire a :class:`~repro.mediation.mediator.Mediator` as ``env.mediator``.

        Application registrations then also publish their converters'
        conversion capabilities as ``format-converter`` offers on the
        environment's trader (plus any direct/partial capabilities the
        descriptor declares), and ``exchange()`` falls back from the
        static interchange hub to mediated multi-hop plans — for formats
        the hub has never seen, and for ``min_fidelity`` floors the hub
        plan cannot meet.  Off by default (``env.mediator`` is ``None``).
        """
        self._mediation = enabled
        return self

    def with_trader_policy(self, hook: TraderPolicy) -> "EnvironmentBuilder":
        """Install an extra trading-policy predicate on the trader.

        Hooks accumulate (call repeatedly for several) and run after the
        organisational knowledge base's own policy hook.
        """
        self._trader_policies.append(hook)
        return self

    # -- construction ------------------------------------------------------
    def build(self) -> Any:
        """Construct, wire and return the environment."""
        environment = object.__new__(self._cls)
        self._wire(environment)
        return environment

    def _wire(self, env: Any) -> None:
        """Perform the full construction onto *env* (shared with the
        legacy ``CSCWEnvironment.__init__`` path)."""
        world = self._world
        if world is None:
            raise ConfigurationError(
                "EnvironmentBuilder needs a world: call with_world(world) first"
            )
        env.world = world
        env.name = self._name
        env.metrics = NULL_METRICS
        env.tracer = NULL_TRACER
        env.events = self._events if self._events is not None else NULL_EVENTS
        env.bus = EventBus()
        # Satellite fix: events published through the environment carry
        # the simulated time of publication.
        env.bus.bind_clock(lambda: world.engine.now)
        if self._shards is not None:
            from repro.sharding.kb import ShardedKnowledgeBase

            env.knowledge_base = ShardedKnowledgeBase(
                n_shards=self._shards, country=self._shard_country
            )
        else:
            env.knowledge_base = OrganisationalKnowledgeBase()
        env.trader = Trader(f"{env.name}-trader", rng=world.rng.fork("trader"))
        # Section 6.1: the org KB dictates the trading policy.
        env.trader.add_policy_hook(env.knowledge_base.trader_policy_hook())
        for hook in self._trader_policies:
            env.trader.add_policy_hook(hook)
        env.interchange = InterchangeService()
        env.applications = ApplicationRegistry(env.interchange, env.trader)
        env.mediator = None
        if self._mediation:
            from repro.mediation import Mediator

            env.mediator = Mediator(env.trader, node=f"{env.name}-mediator")
            env.applications.set_mediator(env.mediator)
        # The exchange fast path: memoised org/policy/format resolution,
        # invalidated by KB and app-registry mutations.
        env.resolution = ResolutionCache(env.knowledge_base, env.applications)
        env.resolution.enabled = self._resolution_cache
        env.knowledge_base.add_listener(env.resolution.on_kb_change)
        env.applications.add_listener(env.resolution.on_app_registered)
        env.activities = ActivityRegistry()
        env.dependencies = DependencyGraph()
        env.scheduler = ActivityScheduler(env.activities, env.dependencies, env.bus)
        env.negotiations = NegotiationService(env.activities)
        env.resources = ResourceCoordinator()
        env.information = InformationBase()
        env.communicators = CommunicatorRegistry()
        env.communication_log = CommunicationLog()
        env.expertise = ExpertiseRegistry()
        env.tailoring = TailoringService()
        env.views = ViewRegistry()
        env.exchanges_attempted = 0
        env.exchanges_failed = 0
        env._pending_deliveries = {}
        env._shed_limit = self._shed_limit
        env._default_deadline_s = self._default_deadline_s
        # duck-typed: only the sharded KB can place a receiver on a shard,
        # so only sharded environments stamp ``shard`` span tags
        env._shard_of = getattr(env.knowledge_base, "shard_of_person", None)
        env._bind_labelled_metrics()
        instrument_environment(env, metrics=self._metrics, tracer=self._tracer)
        if self._sampling is not None:
            if self._tracer is None:
                raise ConfigurationError(
                    "with_trace_sampling requires with_tracer: the sampling "
                    "verdict is the tracer's to make"
                )
            probability, seed = self._sampling
            self._tracer.configure_sampling(probability, seed=seed)
        env.slo = None
        if self._slo_period_s is not None:
            if self._metrics is None:
                raise ConfigurationError(
                    "with_slo requires with_metrics: objectives window the "
                    "environment's counters and histograms"
                )
            env.slo = SLOEngine(
                world.engine,
                self._metrics,
                events=env.events if env.events.enabled else None,
                sample_period_s=self._slo_period_s,
            )
            env.slo.declare(*self._slo_objectives)
        env.control = None
        if self._control:
            from repro.control.plane import ControlPlane

            if env.slo is None:
                raise ConfigurationError(
                    "with_control requires with_slo: the control plane "
                    "subscribes to burn alerts"
                )
            env.control = ControlPlane(
                world.engine,
                policy=self._control_policy,
                metrics=self._metrics,
                events=env.events if env.events.enabled else None,
                tracer=self._tracer,
            )
            env.control.watch_slo(env.slo)
            env.control.manage_environment(env.name, env)
