"""Cooperation sessions: activity-scoped, multi-application workspaces.

A :class:`CooperationSession` binds one activity to the people and
applications cooperating in it, wiring activity-transparent event
subscriptions (members only hear their own activity's events) and serving
as the handle through which examples and experiments drive multi-app
cooperation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.environment.environment import CSCWEnvironment, ExchangeOutcome
from repro.environment.transparency import TransparencyProfile
from repro.util.errors import ModelError
from repro.util.events import Event

EventHandler = Callable[[Event], None]


@dataclass
class SessionMember:
    """One participant: their person id and the application they use."""

    person_id: str
    app_name: str
    subscriptions: list[int] = field(default_factory=list)


class CooperationSession:
    """One activity's live cooperation context."""

    def __init__(self, environment: CSCWEnvironment, activity_id: str) -> None:
        self.environment = environment
        self.activity = environment.activities.get(activity_id)
        self._members: dict[str, SessionMember] = {}

    @property
    def activity_id(self) -> str:
        """The bound activity's id."""
        return self.activity.activity_id

    def join(
        self,
        person_id: str,
        app_name: str,
        on_event: EventHandler | None = None,
        activity_role: str = "participant",
    ) -> SessionMember:
        """Join the session with an application.

        The member is added to the activity, and — activity transparency —
        subscribed only to this activity's topics.
        """
        if person_id in self._members:
            raise ModelError(f"{person_id!r} already in session {self.activity_id}")
        if not self.environment.applications.is_registered(app_name):
            raise ModelError(f"application {app_name!r} is not registered")
        self.activity.join(person_id, activity_role)
        member = SessionMember(person_id, app_name)
        if on_event is not None:
            token = self.environment.bus.subscribe(
                f"activity/{self.activity_id}", on_event, subscriber=person_id
            )
            member.subscriptions.append(token)
        self._members[person_id] = member
        return member

    def leave(self, person_id: str) -> None:
        """Leave the session, dropping subscriptions and membership."""
        member = self._members.pop(person_id, None)
        if member is None:
            raise ModelError(f"{person_id!r} is not in session {self.activity_id}")
        for token in member.subscriptions:
            self.environment.bus.unsubscribe(token)
        self.activity.leave(person_id)

    def members(self) -> list[str]:
        """Session members, sorted."""
        return sorted(self._members)

    def app_of(self, person_id: str) -> str:
        """Which application a member uses."""
        try:
            return self._members[person_id].app_name
        except KeyError:
            raise ModelError(f"{person_id!r} is not in session {self.activity_id}") from None

    def send(
        self,
        sender: str,
        receiver: str,
        document: dict[str, Any],
        profile: TransparencyProfile | None = None,
    ) -> ExchangeOutcome:
        """Exchange a document between two members' applications."""
        return self.environment.exchange(
            sender=sender,
            receiver=receiver,
            sender_app=self.app_of(sender),
            receiver_app=self.app_of(receiver),
            document=document,
            activity_id=self.activity_id,
            profile=profile,
        )

    def broadcast(
        self,
        sender: str,
        document: dict[str, Any],
        profile: TransparencyProfile | None = None,
    ) -> list[ExchangeOutcome]:
        """Send to every other member; returns per-receiver outcomes."""
        outcomes = []
        for receiver in self.members():
            if receiver == sender:
                continue
            outcomes.append(self.send(sender, receiver, document, profile=profile))
        return outcomes

    def announce(self, payload: dict[str, Any], source: str = "") -> int:
        """Publish an activity-scoped event (no document delivery)."""
        return self.environment.bus.publish(
            f"activity/{self.activity_id}/announce",
            payload,
            source=source,
            time=self.environment.world.now,
        )
