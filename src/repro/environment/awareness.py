"""Organisational awareness: who/what is relevant to my work right now.

Paper section 4 names "organisational (organisational awareness)" as the
first dimension transparency must serve, and section 3 paints the picture
of "many inter-related activities taking place within a world of shared
resources, people and information".  The :class:`AwarenessService`
answers the queries that make that world visible without the user having
to know how the models are wired:

* which activities are related to mine (through dependencies),
* which people share an activity with me and whether they are reachable
  right now,
* who is working with a given information object or resource.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.activity.model import ActivityStatus
from repro.environment.environment import CSCWEnvironment
from repro.util.errors import UnknownObjectError


@dataclass(frozen=True)
class ColleagueInfo:
    """One co-worker's awareness entry."""

    person_id: str
    shared_activities: tuple[str, ...]
    present: bool
    organisation: str


class AwarenessService:
    """Read-only awareness queries over one environment's models."""

    def __init__(self, environment: CSCWEnvironment) -> None:
        self._env = environment

    # -- activity awareness ------------------------------------------------
    def my_activities(self, person_id: str, active_only: bool = False) -> list[str]:
        """Activities the person participates in."""
        activities = self._env.activities.involving(person_id)
        if active_only:
            activities = [a for a in activities if a.status is ActivityStatus.ACTIVE]
        return sorted(a.activity_id for a in activities)

    def related_activities(self, person_id: str) -> list[str]:
        """Activities connected to mine by any dependency (not mine)."""
        mine = set(self.my_activities(person_id))
        related: set[str] = set()
        for activity_id in mine:
            related |= self._env.dependencies.related(activity_id)
        return sorted(related - mine)

    def activity_neighbourhood(self, activity_id: str) -> dict[str, list[str]]:
        """Everything one hop from an activity, grouped by link kind."""
        graph = self._env.dependencies
        self._env.activities.get(activity_id)
        return {
            "predecessors": graph.predecessors(activity_id),
            "successors": graph.successors(activity_id),
            "shares_resources_with": graph.resource_partners(activity_id),
            "shares_information_with": graph.information_partners(activity_id),
        }

    # -- people awareness -----------------------------------------------------
    def colleagues_of(self, person_id: str) -> list[ColleagueInfo]:
        """People sharing at least one activity, with reachability."""
        mine = set(self.my_activities(person_id))
        shared: dict[str, set[str]] = {}
        for activity_id in mine:
            activity = self._env.activities.get(activity_id)
            for member in activity.member_ids():
                if member != person_id:
                    shared.setdefault(member, set()).add(activity_id)
        result = []
        for colleague, activities in sorted(shared.items()):
            try:
                present = self._env.communicators.get(colleague).present
            except UnknownObjectError:
                present = False
            try:
                organisation = self._env.knowledge_base.organisation_of(colleague)
            except UnknownObjectError:
                organisation = ""
            result.append(
                ColleagueInfo(colleague, tuple(sorted(activities)), present, organisation)
            )
        return result

    def reachable_now(self, person_id: str) -> list[str]:
        """Colleagues present at their workstations right now."""
        return [c.person_id for c in self.colleagues_of(person_id) if c.present]

    # -- artifact awareness -------------------------------------------------------
    def who_works_with(self, object_id: str) -> list[str]:
        """People in activities that share the given information object.

        Uses the dependency annotations of SHARES_INFORMATION edges plus
        the information base's derivation links.
        """
        people: set[str] = set()
        from repro.activity.dependencies import SHARES_INFORMATION

        for dependency in self._env.dependencies.of_kind(SHARES_INFORMATION):
            if dependency.annotation == object_id:
                for activity_id in (dependency.source, dependency.target):
                    activity = self._env.activities.get(activity_id)
                    people.update(activity.member_ids())
        return sorted(people)

    def resource_contenders(self, resource_id: str) -> dict[str, list[str]]:
        """Current holders and waiting queue for a coordinated resource."""
        return {
            "holders": self._env.resources.holders_of(resource_id),
            "waiting": self._env.resources.queued_for(resource_id),
        }
